#!/usr/bin/env python
"""Validate a span-trace JSONL file (schema + lifecycle completeness).

Checks every row against the span schema and every trace for chain
completeness: exactly one ``issue`` span first, exactly one terminal
outcome span, no orphans. This is the acceptance gate CI applies to the
traced smoke run.

Usage::

    PYTHONPATH=src python scripts/validate_spans.py spans.jsonl
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="span JSONL file (from --trace)")
    args = parser.parse_args(argv)

    from repro.obs import SpanFormatError, import_spans, validate_span_chains

    with open(args.path, "r", encoding="utf-8") as stream:
        try:
            spans = import_spans(stream)
        except SpanFormatError as exc:
            print(f"validate_spans: {args.path}: {exc}", file=sys.stderr)
            return 1
    if not spans:
        print(f"validate_spans: {args.path}: no spans", file=sys.stderr)
        return 1
    try:
        chains = validate_span_chains(spans)
    except SpanFormatError as exc:
        print(f"validate_spans: {args.path}: {exc}", file=sys.stderr)
        return 1
    print(
        f"validate_spans: {args.path}: {len(spans)} spans, "
        f"{len(chains)} complete query lifecycles"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
