#!/usr/bin/env python
"""Validate a span-trace JSONL file (schema + lifecycle completeness).

Compatibility shim: span validation now lives in
``scripts/validate_telemetry.py``, which handles both telemetry export
formats (span traces and flight-recorder timelines) behind one schema
gate. This entry point remains so existing CI invocations and docs keep
working::

    PYTHONPATH=src python scripts/validate_spans.py spans.jsonl

is now exactly ``python scripts/validate_telemetry.py --kind spans``.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from validate_telemetry import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["--kind", "spans", *sys.argv[1:]]))
