#!/usr/bin/env python3
"""Build the optional compiled event-queue backend in place.

The simulation kernel works without it (the pure-Python backends in
``repro.simcore.events`` are the reference); when the shared object is
present next to ``_ckernel.c`` the ``native`` backend registers itself and
``queue_backend="auto"`` resolves to it. This script needs only a C
compiler and the CPython headers -- no third-party packages.

Usage::

    python scripts/build_native_kernel.py          # build if stale
    python scripts/build_native_kernel.py --force  # always rebuild
    python scripts/build_native_kernel.py --check  # 0 if importable
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE = REPO / "src" / "repro" / "simcore" / "_ckernel.c"


def target_path() -> Path:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return SOURCE.with_name("_ckernel" + suffix)


def importable() -> bool:
    code = "import repro.simcore._ckernel as m; assert m.EventHeap"
    proc = subprocess.run(
        [sys.executable, "-c", code],
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src")},
        capture_output=True,
    )
    return proc.returncode == 0


def build(force: bool) -> int:
    target = target_path()
    if not force and target.exists():
        if target.stat().st_mtime >= SOURCE.stat().st_mtime and importable():
            print(f"up to date: {target.name}")
            return 0
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        print("no C compiler found; the pure-Python backends remain in use")
        return 1
    include = sysconfig.get_paths()["include"]
    command = [
        compiler,
        "-O2",
        "-fPIC",
        "-shared",
        "-I",
        include,
        str(SOURCE),
        "-o",
        str(target),
    ]
    if sys.platform == "darwin":
        command.insert(1, "-undefined")
        command.insert(2, "dynamic_lookup")
    print(" ".join(command))
    proc = subprocess.run(command)
    if proc.returncode != 0:
        target.unlink(missing_ok=True)
        return proc.returncode
    if not importable():
        print("built module failed to import; removing it")
        target.unlink(missing_ok=True)
        return 1
    print(f"built {target.name}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--force", action="store_true", help="always rebuild")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 0 if the compiled backend imports, 1 otherwise",
    )
    options = parser.parse_args()
    if options.check:
        ok = importable()
        print("native kernel importable" if ok else "native kernel missing")
        return 0 if ok else 1
    return build(options.force)


if __name__ == "__main__":
    raise SystemExit(main())
