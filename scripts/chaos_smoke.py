#!/usr/bin/env python
"""CI chaos smoke: the acceptance scenario for the fault-tolerant runner.

Runs a batch of 8 chaos requests where run 5 (index 4) always raises in
the worker, with ``keep_going`` and a persistent cache. Asserts:

* the other 7 runs complete and are checkpointed incrementally,
* the failed run surfaces as a structured ledger entry with the full
  retry ladder spent,
* a warm rerun reads the 7 completions straight from the cache (7 hits,
  1 miss — the failed run is retried, never served stale).

Exits non-zero on any mismatch so CI fails loudly.
"""

import argparse
import sys
import tempfile

from repro.obs import MetricsRegistry
from repro.runner import DiskCache, RunFailure, chaos_request, run_many

BATCH = 8
BAD_INDEX = 4
EXPECTED_ATTEMPTS = 3  # RetryPolicy default: 2 pool rungs + 1 serial


def check(condition, label):
    if condition:
        print(f"ok: {label}")
        return 0
    print(f"FAIL: {label}", file=sys.stderr)
    return 1


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: a fresh temp dir)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="chaos-smoke-")
    requests = [
        chaos_request(mode="raise" if index == BAD_INDEX else "ok", seed=index)
        for index in range(BATCH)
    ]

    cold = DiskCache(cache_dir)
    cold.clear()  # make reruns of the smoke itself deterministic
    metrics = MetricsRegistry()
    results = run_many(
        requests, jobs=args.jobs, cache=cold, keep_going=True, metrics=metrics
    )

    failures = [r for r in results if isinstance(r, RunFailure)]
    bad = 0
    bad += check(len(results) == BATCH, f"{BATCH} result slots")
    bad += check(len(failures) == 1, "exactly one ledger entry")
    if failures:
        failure = failures[0]
        bad += check(failure.index == BAD_INDEX, "failure blames run 5")
        bad += check(
            failure.attempts == EXPECTED_ATTEMPTS,
            f"retry ladder spent ({failure.attempts} attempts)",
        )
        bad += check(
            failure.error_type == "ChaosFailure", "structured error type"
        )
        print(f"ledger: {failure.describe()}")
    completed = [
        r for r in results if not isinstance(r, RunFailure) and r is not None
    ]
    bad += check(len(completed) == BATCH - 1, "7 healthy runs completed")
    bad += check(
        metrics.value("runner.checkpointed") == BATCH - 1,
        "each completion checkpointed to the cache",
    )
    bad += check(metrics.value("runner.inflight") == 0, "in-flight gauge drained")

    warm = DiskCache(cache_dir)
    rerun = run_many(requests, jobs=args.jobs, cache=warm, keep_going=True)
    bad += check(
        warm.hits == BATCH - 1 and warm.misses == 1,
        f"warm rerun: {warm.hits} hits / {warm.misses} miss",
    )
    bad += check(
        sum(isinstance(r, RunFailure) for r in rerun) == 1,
        "warm rerun retries (and re-fails) only the broken run",
    )

    if bad:
        print(f"\nchaos smoke: {bad} check(s) failed", file=sys.stderr)
        return 1
    print("\nchaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
