#!/usr/bin/env python
"""Capture the FSM-port differential goldens.

The FSM refactor (DESIGN.md §14) re-represents the resolver lifecycle as
table-driven state machines without changing behavior. These goldens pin
the *pre-refactor* observable output of small-but-complete experiment
batteries; ``tests/test_fsm_differential.py`` replays the same runs and
requires digest-identical results, so any behavioral drift in the port
fails loudly.

Regenerate (only when an intentional behavior change lands)::

    PYTHONPATH=src python scripts/capture_fsm_goldens.py

writes ``tests/goldens/fsm_port.json``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sys


def _digest(rows) -> str:
    payload = "\n".join(rows).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def answers_digest(answers) -> str:
    """A canonical digest over every stub observation in a run."""
    rows = [
        "|".join(
            (
                str(answer.probe_id),
                str(answer.resolver),
                str(answer.round_index),
                f"{answer.sent_at:.9f}",
                "-" if answer.answered_at is None else f"{answer.answered_at:.9f}",
                str(answer.status),
                "-" if answer.rcode is None else str(int(answer.rcode)),
                "-" if answer.returned_ttl is None else str(answer.returned_ttl),
                "-" if answer.serial is None else str(answer.serial),
                "-" if answer.encoded_ttl is None else str(answer.encoded_ttl),
                str(answer.record_count),
            )
        )
        for answer in answers
    ]
    return _digest(rows)


def querylog_digest(log) -> str:
    """Canonical digest over an authoritative-side query log."""
    rows = [
        f"{entry.time:.9f}|{entry.src}|{entry.qname}|{entry.qtype.name}|{entry.server}"
        for entry in log.entries
    ]
    return _digest(rows)


def capture_ddos(key: str, probes: int, seed: int) -> dict:
    from repro.core.experiments import DDOS_EXPERIMENTS, run_ddos

    result = run_ddos(DDOS_EXPERIMENTS[key], probe_count=probes, seed=seed)
    testbed = result.testbed
    return {
        "answers": answers_digest(result.answers),
        "outcomes_by_round": result.outcomes_by_round(),
        "test_zone_queries": querylog_digest(testbed.query_log),
        "parent_zone_queries": querylog_digest(testbed.parent_query_log),
        "offered_queries": len(testbed.offered_query_log),
    }


def capture_baseline(key: str, probes: int, seed: int) -> dict:
    from repro.core.experiments import BASELINE_EXPERIMENTS, run_baseline

    result = run_baseline(BASELINE_EXPERIMENTS[key], probe_count=probes, seed=seed)
    return {
        "answers": answers_digest(result.answers),
        "miss_rate": f"{result.miss_rate:.9f}",
        "queries": result.dataset.queries,
    }


def capture_software() -> dict:
    from repro.core.experiments import run_software_study

    cells = {}
    for software in ("bind", "unbound"):
        for attack in (False, True):
            cell = run_software_study(software, attack)
            cells[f"{software}:{'attack' if attack else 'normal'}"] = {
                "row": cell.as_row(),
                "resolved": cell.resolved,
            }
    return cells


def capture_glue() -> dict:
    from repro.core.experiments import run_glue_experiment

    from dataclasses import asdict

    result = run_glue_experiment(probe_count=48, rounds=2)
    return {
        "ns_buckets": asdict(result.ns_buckets),
        "a_buckets": asdict(result.a_buckets),
    }


def capture() -> dict:
    return {
        "ddos_H_p24_s42": capture_ddos("H", probes=24, seed=42),
        "ddos_A_p16_s7": capture_ddos("A", probes=16, seed=7),
        "ddos_I_p16_s42": capture_ddos("I", probes=16, seed=42),
        "baseline_3600_p24_s42": capture_baseline("3600", probes=24, seed=42),
        "software": capture_software(),
        "glue": capture_glue(),
    }


def main() -> int:
    out = pathlib.Path(__file__).resolve().parent.parent / "tests" / "goldens"
    out.mkdir(parents=True, exist_ok=True)
    path = out / "fsm_port.json"
    payload = capture()
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
