#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-reported vs measured, every table/figure.

Thin wrapper around :func:`repro.analysis.report.build_report`.

Usage:  python scripts/generate_experiments_md.py [output-path]
"""

from __future__ import annotations

import sys
import time

from repro.analysis.report import build_report


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    started = time.time()
    # The committed artifact carries the beyond-the-paper defense grid.
    report = build_report(include_defense=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(f"wrote {output_path} in {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
