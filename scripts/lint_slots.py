#!/usr/bin/env python
"""Verify hot-path record classes declare ``__slots__``.

Compatibility shim: the hand-maintained registry this script used to
carry is gone. The check now lives in the ``repro lint`` static-analysis
suite as the ``hot-path-slots`` rule, which *discovers* classes
instantiated on simulator callback paths instead of pinning a list (see
``src/repro/lint/checkers/slots.py``). This entry point remains so
existing CI invocations and docs keep working::

    python scripts/lint_slots.py

is now exactly ``python -m repro lint --rules hot-path-slots``.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.lint.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["--rules", "hot-path-slots", *sys.argv[1:]]))
