#!/usr/bin/env python
"""Verify hot-path record classes declare ``__slots__``.

Record objects created per query/packet/event dominate the simulator's
allocation profile, so they all carry ``__slots__`` (smaller instances,
faster attribute access, and pickling stays natural at protocol >= 2).
This lint pins that invariant: it parses the source with :mod:`ast` (no
imports, so it is cheap and side-effect free) and fails if any class in
the registry below is missing or has lost its ``__slots__`` declaration.

Run from the repository root::

    python scripts/lint_slots.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

# module path (relative to src/) -> classes that must stay slotted.
HOT_RECORD_CLASSES = {
    "repro/simcore/events.py": ["Event"],
    "repro/netem/transport.py": ["Packet", "NetworkCounters"],
    "repro/servers/querylog.py": ["QueryLogEntry"],
    "repro/resolvers/stub.py": ["StubAnswer"],
    "repro/resolvers/recursive.py": ["Outcome", "_PendingQuery"],
    "repro/resolvers/forwarder.py": ["_Forwarded"],
    "repro/obs/records.py": ["SpanEvent", "MetricsSnapshot"],
    "repro/defense/rrl.py": ["TokenBucket"],
    "repro/defense/capacity.py": ["ServiceCapacity"],
    "repro/defense/pipeline.py": ["DefenseStats"],
    "repro/attackload/attackers.py": ["AttackLoadStats"],
}


def class_has_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent / "src"
    problems = []
    for relative, class_names in sorted(HOT_RECORD_CLASSES.items()):
        path = root / relative
        if not path.is_file():
            problems.append(f"{relative}: file not found")
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        found = {
            node.name: node
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }
        for name in class_names:
            if name not in found:
                problems.append(f"{relative}: class {name} not found")
            elif not class_has_slots(found[name]):
                problems.append(f"{relative}: class {name} has no __slots__")

    if problems:
        for problem in problems:
            print(f"lint_slots: {problem}", file=sys.stderr)
        return 1
    total = sum(len(names) for names in HOT_RECORD_CLASSES.values())
    print(f"lint_slots: {total} hot-path record classes all declare __slots__")
    return 0


if __name__ == "__main__":
    sys.exit(main())
