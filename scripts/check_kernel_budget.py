#!/usr/bin/env python
"""Assert the simulation kernel stays within budget of its recorded pace.

The observability layer promises to be zero-cost when disabled; this
script enforces that promise. It re-runs the kernel micro-benchmark
workloads from ``benchmarks/test_bench_kernel.py`` (tracing and
profiling off, best of ``--rounds``) and compares the throughput against
the committed numbers in ``benchmarks/output/kernel_burst.txt``,
``kernel_retry.txt``, and ``kernel_attack.txt`` (the attack-traffic
event path: attacker timer chains through the defense hot path),
failing if any workload is more than ``--tolerance`` slower.

Usage::

    PYTHONPATH=src python scripts/check_kernel_budget.py --tolerance 0.10
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import time

BASELINE_PATTERN = re.compile(r"\(([\d,]+) (?:events|timers)/s\)")


def read_baseline(path: pathlib.Path) -> float:
    text = path.read_text(encoding="utf-8")
    match = BASELINE_PATTERN.search(text)
    if match is None:
        raise SystemExit(
            f"check_kernel_budget: no throughput figure in {path}"
        )
    return float(match.group(1).replace(",", ""))


def best_rate(workload, operations: int, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return operations / best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown vs the committed numbers",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds (best is used)"
    )
    args = parser.parse_args(argv)

    # Reuse the exact benchmark workloads so the comparison is
    # apples-to-apples with the committed output files.
    bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    from test_bench_kernel import (
        ATTACK_EVENTS,
        BURST_EVENTS,
        RETRY_TIMERS,
        attack_flood,
        drain_burst,
        retry_storm,
    )

    checks = [
        ("burst", drain_burst, BURST_EVENTS, bench_dir / "output" / "kernel_burst.txt"),
        ("retry-storm", retry_storm, 2 * RETRY_TIMERS, bench_dir / "output" / "kernel_retry.txt"),
        ("attack-flood", attack_flood, ATTACK_EVENTS, bench_dir / "output" / "kernel_attack.txt"),
    ]
    failed = False
    for name, workload, operations, baseline_path in checks:
        baseline = read_baseline(baseline_path)
        measured = best_rate(workload, operations, args.rounds)
        floor = baseline * (1.0 - args.tolerance)
        verdict = "ok" if measured >= floor else "TOO SLOW"
        print(
            f"check_kernel_budget: {name}: {measured:,.0f}/s vs baseline "
            f"{baseline:,.0f}/s (floor {floor:,.0f}/s) {verdict}"
        )
        if measured < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
