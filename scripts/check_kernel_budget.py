#!/usr/bin/env python
"""Assert the simulation kernel stays within budget of its recorded pace.

The observability layer promises to be zero-cost when disabled; this
script enforces that promise twice over. First structurally: a testbed
built without an ``ObsSpec`` must hold no registry, recorder, or
per-source sketch and must record no telemetry after a short run
(:func:`assert_zero_cost_disabled`). Then by pace: it re-runs the kernel micro-benchmark
workloads from ``benchmarks/test_bench_kernel.py`` (tracing and
profiling off, best of ``--rounds``) and compares the throughput against
the committed numbers in ``benchmarks/output/kernel_burst.txt``,
``kernel_retry.txt``, and ``kernel_attack.txt`` (the attack-traffic
event path: attacker timer chains through the defense hot path),
failing if any workload is more than ``--tolerance`` slower.

The committed baselines record the *default* backend (``auto``, which
resolves to the native C kernel when its extension is built and to the
pure-Python timer wheel otherwise). Slower backends are still budgeted
— each carries a per-backend fraction of the committed pace it must
sustain (``BACKEND_BUDGETS``), so a regression in any backend trips the
check without requiring one baseline file per backend per machine.

Usage::

    PYTHONPATH=src python scripts/check_kernel_budget.py --tolerance 0.10
    PYTHONPATH=src python scripts/check_kernel_budget.py --all-backends
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import time

BASELINE_PATTERN = re.compile(r"\(([\d,]+) (?:events|timers)/s\)")

#: Fraction of the committed default-backend pace each backend must
#: sustain. The default backend is held near the baseline; the
#: pure-Python backends get floors derived from their measured ratios
#: (wheel ≈ 0.35–0.55×, heap ≈ 0.26–0.36×, calendar ≈ 0.15–0.39× of the
#: native pace, binding workload taken) with slack for machine noise.
BACKEND_BUDGETS = {
    "native": 0.70,
    "wheel": 0.22,
    "heap": 0.16,
    "calendar": 0.09,
}


def read_baseline(path: pathlib.Path) -> float:
    text = path.read_text(encoding="utf-8")
    match = BASELINE_PATTERN.search(text)
    if match is None:
        raise SystemExit(
            f"check_kernel_budget: no throughput figure in {path}"
        )
    return float(match.group(1).replace(",", ""))


def best_rate(workload, backend: str, operations: int, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        workload(backend)
        best = min(best, time.perf_counter() - start)
    return operations / best


def assert_zero_cost_disabled() -> None:
    """Structurally verify the zero-cost-when-disabled promise.

    The throughput floors below catch observability overhead only when
    it is large enough to show up as a slowdown. This check pins the
    mechanism itself: with no ``ObsSpec``, a testbed must hold *no*
    observability objects at all — no metrics registry, no flight
    recorder, no per-source sketch — so the hot paths capture ``None``
    sinks at construction and skip every telemetry branch.
    """
    from repro.clients.population import PopulationConfig
    from repro.core.testbed import Testbed, TestbedConfig

    testbed = Testbed(
        TestbedConfig(
            seed=1, population=PopulationConfig(probe_count=2)
        )
    )
    problems = []
    if testbed.obs.registry is not None:
        problems.append("metrics registry built without an ObsSpec")
    if testbed.obs.recorder is not None:
        problems.append("flight recorder built without a TimelineSpec")
    if testbed.source_sketch is not None:
        problems.append("source sketch built without a TimelineSpec")
    testbed.schedule_probing(0.0, 30.0, 2)
    testbed.run(60.0, grace=5.0)
    if testbed.timeline_points:
        problems.append(
            f"{len(testbed.timeline_points)} timeline points recorded "
            "with telemetry disabled"
        )
    if testbed.metric_snapshots:
        problems.append(
            f"{len(testbed.metric_snapshots)} metric snapshots recorded "
            "with telemetry disabled"
        )
    if problems:
        raise SystemExit(
            "check_kernel_budget: zero-cost-when-disabled violated: "
            + "; ".join(problems)
        )
    print("check_kernel_budget: zero-cost-when-disabled: ok")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown vs the budgeted floor",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds (best is used)"
    )
    parser.add_argument(
        "--backend",
        default="auto",
        help="event-queue backend to measure (default: auto)",
    )
    parser.add_argument(
        "--all-backends",
        action="store_true",
        help="measure every available backend against its budget",
    )
    args = parser.parse_args(argv)

    # Reuse the exact benchmark workloads so the comparison is
    # apples-to-apples with the committed output files.
    bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    from test_bench_kernel import (
        ATTACK_EVENTS,
        BURST_EVENTS,
        RETRY_TIMERS,
        attack_flood,
        drain_burst,
        retry_storm,
    )

    from repro.simcore.events import QUEUE_BACKENDS, resolve_queue_backend

    assert_zero_cost_disabled()

    if args.all_backends:
        backends = sorted(QUEUE_BACKENDS)
    else:
        backends = [resolve_queue_backend(args.backend)]

    checks = [
        ("burst", drain_burst, BURST_EVENTS, bench_dir / "output" / "kernel_burst.txt"),
        ("retry-storm", retry_storm, 2 * RETRY_TIMERS, bench_dir / "output" / "kernel_retry.txt"),
        ("attack-flood", attack_flood, ATTACK_EVENTS, bench_dir / "output" / "kernel_attack.txt"),
    ]
    failed = False
    for backend in backends:
        budget = BACKEND_BUDGETS.get(backend)
        if budget is None:
            raise SystemExit(
                f"check_kernel_budget: no budget for backend {backend!r}; "
                f"add it to BACKEND_BUDGETS"
            )
        for name, workload, operations, baseline_path in checks:
            baseline = read_baseline(baseline_path)
            measured = best_rate(workload, backend, operations, args.rounds)
            floor = baseline * budget * (1.0 - args.tolerance)
            verdict = "ok" if measured >= floor else "TOO SLOW"
            print(
                f"check_kernel_budget: {backend}/{name}: {measured:,.0f}/s "
                f"vs baseline {baseline:,.0f}/s x budget {budget:.2f} "
                f"(floor {floor:,.0f}/s) {verdict}"
            )
            if measured < floor:
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
