#!/usr/bin/env python
"""Validate an exported telemetry JSONL file (spans or timelines).

One acceptance gate for both observability export formats:

- ``spans`` — per-query lifecycle traces from ``--trace``. Every row is
  schema-checked and every trace is checked for chain completeness
  (exactly one ``issue`` span first, exactly one terminal outcome span,
  no orphans).
- ``timeline`` — flight-recorder samples from ``--timeline``. Every row
  is schema-checked and every run's series is checked for contiguous
  sample indexes, strictly increasing sim time, and monotone cumulative
  (``*_total``) series.

``--kind auto`` (the default) sniffs the first line: span rows carry a
``"kind"`` field, timeline rows carry ``"values"``. CI runs this against
both the traced smoke run and the timeline smoke run; the legacy
``validate_spans.py`` entry point delegates here.

Usage::

    PYTHONPATH=src python scripts/validate_telemetry.py spans.jsonl
    PYTHONPATH=src python scripts/validate_telemetry.py --kind timeline tl.jsonl
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)


def sniff_kind(path: str) -> str:
    """Guess the telemetry kind from the first non-empty JSONL row."""
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                return "spans"  # let the strict importer report the error
            if isinstance(row, dict) and "values" in row:
                return "timeline"
            return "spans"
    return "spans"


def check_spans(path: str) -> str:
    """Validate a span trace; returns a summary line or raises."""
    from repro.obs import import_spans, validate_span_chains

    with open(path, "r", encoding="utf-8") as stream:
        spans = import_spans(stream)
    if not spans:
        raise ValueError("no spans")
    chains = validate_span_chains(spans)
    return f"{len(spans)} spans, {len(chains)} complete query lifecycles"


def check_timeline(path: str) -> str:
    """Validate a timeline export; returns a summary line or raises."""
    from repro.obs import import_timeline, validate_timeline

    with open(path, "r", encoding="utf-8") as stream:
        runs = import_timeline(stream)
    if not runs:
        raise ValueError("no timeline points")
    for label, points in sorted(runs.items()):
        validate_timeline(points)
    total = sum(len(points) for points in runs.values())
    return f"{total} timeline points across {len(runs)} run(s)"


CHECKERS = {"spans": check_spans, "timeline": check_timeline}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="telemetry JSONL file")
    parser.add_argument(
        "--kind",
        choices=("auto", "spans", "timeline"),
        default="auto",
        help="telemetry format (default: sniff the first row)",
    )
    args = parser.parse_args(argv)

    from repro.obs import SpanFormatError

    kind = args.kind if args.kind != "auto" else sniff_kind(args.path)
    try:
        summary = CHECKERS[kind](args.path)
    except (SpanFormatError, ValueError, OSError) as exc:
        print(f"validate_telemetry: {args.path}: {exc}", file=sys.stderr)
        return 1
    print(f"validate_telemetry: {args.path}: {kind}: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
