"""Unit tests for the AA/CC/AC/CA classifier (paper §3.4)."""

from repro.clients.publicdns import ResolverRegistry
from repro.core.classification import (
    AnswerClass,
    RotationSchedule,
    classify_answers,
    classify_misses_by_resolver,
)
from repro.resolvers.stub import StubAnswer

ROTATION = RotationSchedule(initial_serial=1, interval=600.0)
ZONE_TTL = 1800


def make_answer(
    probe_id=1,
    resolver="r1",
    round_index=0,
    sent_at=0.0,
    serial=None,
    returned_ttl=None,
    status=StubAnswer.OK,
    latency=0.05,
):
    answer = StubAnswer(probe_id, resolver, round_index, sent_at)
    answer.status = status
    if status == StubAnswer.OK:
        answer.answered_at = sent_at + latency
        answer.serial = serial if serial is not None else ROTATION.serial_at(sent_at)
        answer.returned_ttl = (
            returned_ttl if returned_ttl is not None else ZONE_TTL
        )
        answer.encoded_ttl = ZONE_TTL
        answer.record_count = 1
    return answer


def test_rotation_schedule():
    assert ROTATION.serial_at(0.0) == 1
    assert ROTATION.serial_at(599.0) == 1
    assert ROTATION.serial_at(600.0) == 2
    assert ROTATION.serial_at(1800.0) == 4
    assert ROTATION.serial_at(-5.0) == 1


def test_first_answer_is_warmup():
    answers = [
        make_answer(sent_at=0.0),
        make_answer(sent_at=1200.0, serial=3),
    ]
    table, classified = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.warmup == 1
    assert classified[0].answer_class == AnswerClass.WARMUP


def test_cc_expected_and_cached():
    # Round 0 warmup (serial 1); round 1 at t=1200 returns serial 1 with
    # decremented TTL: cache hit (expected cached: 1200 < 0+1800).
    answers = [
        make_answer(sent_at=0.0, serial=1),
        make_answer(sent_at=1200.0, serial=1, returned_ttl=600),
    ]
    table, classified = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.cc == 1
    assert classified[1].answer_class == AnswerClass.CC


def test_ac_is_cache_miss():
    # Round 1 answer is fresh (serial 3 = current) though the cache
    # should still hold the warmup answer: AC.
    answers = [
        make_answer(sent_at=0.0, serial=1),
        make_answer(sent_at=1200.0, serial=3),
    ]
    table, classified = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.ac == 1
    assert table.miss_rate == 1.0
    assert classified[1].answer_class == AnswerClass.AC


def test_aa_when_cache_expired():
    # Second query after the previous answer's TTL ran out: fresh answer
    # expected and received.
    answers = [
        make_answer(sent_at=0.0, serial=1, returned_ttl=60),
        make_answer(sent_at=1200.0, serial=3),
    ]
    table, classified = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.aa == 1
    assert classified[1].answer_class == AnswerClass.AA


def test_ca_is_stale_answer():
    # Cache should be empty (previous TTL 60 long expired) but an old
    # serial arrives: extended/stale cache.
    answers = [
        make_answer(sent_at=0.0, serial=1, returned_ttl=60),
        make_answer(sent_at=1200.0, serial=1, returned_ttl=0),
    ]
    table, classified = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.ca == 1
    assert classified[1].answer_class == AnswerClass.CA


def test_ttl_altered_detection_on_warmup():
    answers = [
        make_answer(sent_at=0.0, serial=1, returned_ttl=60),  # capped
        make_answer(sent_at=1200.0, serial=3),
    ]
    table, _ = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.warmup_ttl_altered == 1
    assert table.warmup_ttl_as_zone == 0


def test_ttl_within_ten_percent_not_altered():
    answers = [
        make_answer(sent_at=0.0, serial=1, returned_ttl=int(ZONE_TTL * 0.95)),
        make_answer(sent_at=1200.0, serial=3),
    ]
    table, _ = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.warmup_ttl_altered == 0


def test_serial_decrease_marks_fragmentation():
    # Serials 1, 3, then 1 again (different backend cache): CCdec.
    answers = [
        make_answer(sent_at=0.0, serial=1),
        make_answer(sent_at=700.0, serial=2, returned_ttl=1800),
        make_answer(sent_at=1400.0, serial=1, returned_ttl=400),
    ]
    table, classified = classify_answers(answers, ZONE_TTL, ROTATION)
    assert classified[2].serial_decreased
    assert table.cc_decreasing == 1


def test_one_answer_vps_excluded():
    answers = [make_answer(probe_id=1), make_answer(probe_id=2)]
    table, classified = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.one_answer_vps == 2
    assert table.warmup == 0
    assert classified == []


def test_failed_answers_ignored():
    answers = [
        make_answer(sent_at=0.0),
        make_answer(sent_at=600.0, status=StubAnswer.NO_ANSWER),
        make_answer(sent_at=1200.0, serial=3),
    ]
    table, _ = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.answers_valid == 2


def test_vps_tracked_independently():
    answers = [
        make_answer(probe_id=1, resolver="a", sent_at=0.0, serial=1),
        make_answer(probe_id=1, resolver="b", sent_at=0.0, serial=1),
        make_answer(probe_id=1, resolver="a", sent_at=1200.0, serial=1, returned_ttl=600),
        make_answer(probe_id=1, resolver="b", sent_at=1200.0, serial=3),
    ]
    table, _ = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.warmup == 2
    assert table.cc == 1
    assert table.ac == 1


def test_miss_rate_denominator_excludes_warmup():
    answers = [
        make_answer(sent_at=0.0, serial=1),
        make_answer(sent_at=1200.0, serial=3),  # AC
        make_answer(sent_at=3600.0, serial=7),  # AA (previous TTL expired)
    ]
    table, _ = classify_answers(answers, ZONE_TTL, ROTATION)
    assert table.subsequent == 2
    assert table.miss_rate == 0.5


def test_miss_attribution_by_registry():
    registry = ResolverRegistry()
    registry.register_public_ingress("8.8.8.8", "google", google=True)
    registry.register_public_ingress("9.9.9.9", "quad9", google=False)
    registry.register_recursive("100.64.0.1", "isp")
    answers = []
    for resolver in ("8.8.8.8", "9.9.9.9", "100.64.0.1"):
        answers.append(make_answer(resolver=resolver, sent_at=0.0, serial=1))
        answers.append(make_answer(resolver=resolver, sent_at=1200.0, serial=3))
    _table, classified = classify_answers(answers, ZONE_TTL, ROTATION)
    attribution = classify_misses_by_resolver(classified, registry)
    assert attribution.ac_total == 3
    assert attribution.public_r1 == 2
    assert attribution.google_r1 == 1
    assert attribution.other_public_r1 == 1
    assert attribution.non_public_r1 == 1
