"""Tests for the parameter-sweep framework and CSV figure export."""

import io

import pytest

from repro.analysis.export import (
    write_ecdf_csv,
    write_latency_csv,
    write_load_csv,
    write_outcomes_csv,
    write_sweep_csv,
)
from repro.core.experiments.sweep import SweepPoint, SweepResult, run_sweep
from repro.core.metrics import LatencyQuantiles


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        losses=(0.5, 0.9),
        ttls=(60, 1800),
        probe_count=80,
        seed=3,
        attack_start_min=30.0,
        attack_duration_min=30.0,
    )


def test_sweep_covers_grid(sweep):
    assert len(sweep.points) == 4
    assert sweep.losses() == [0.5, 0.9]
    assert sweep.ttls() == [60, 1800]
    sweep.point(0.9, 1800)
    with pytest.raises(KeyError):
        sweep.point(0.42, 1800)


def test_sweep_failures_ordered_by_loss(sweep):
    """More loss hurts more at a fixed TTL."""
    for ttl in sweep.ttls():
        assert (
            sweep.point(0.9, ttl).failure_during
            >= sweep.point(0.5, ttl).failure_during - 0.03
        )


def test_sweep_ttl_protects_at_heavy_loss(sweep):
    """The paper's central claim as a surface property."""
    heavy = 0.9
    assert (
        sweep.point(heavy, 1800).failure_during
        < sweep.point(heavy, 60).failure_during
    )


def test_sweep_failure_matrix_shape(sweep):
    matrix = sweep.failure_matrix()
    assert len(matrix) == 2  # TTL rows
    assert all(len(row) == 2 for row in matrix)  # loss columns


def test_minimum_ttl_for_planning(sweep):
    generous = sweep.minimum_ttl_for(0.5, max_failure=0.5)
    assert generous == 60  # even no caching survives mild attacks
    strict = sweep.minimum_ttl_for(0.9, max_failure=0.45)
    assert strict in (1800, None) or strict == 60
    impossible = sweep.minimum_ttl_for(0.9, max_failure=0.0)
    assert impossible is None


def test_sweep_point_failure_added():
    point = SweepPoint(0.9, 60, failure_before=0.05, failure_during=0.6, amplification=5.0)
    assert point.failure_added == pytest.approx(0.55)
    healthy = SweepPoint(0.0, 60, 0.05, 0.03, 1.0)
    assert healthy.failure_added == 0.0


# ---------------------------------------------------------------------------
# CSV export
# ---------------------------------------------------------------------------
def test_write_outcomes_csv():
    series = {0: {"ok": 5, "servfail": 1, "no_answer": 2}, 2: {"ok": 3}}
    buffer = io.StringIO()
    assert write_outcomes_csv(series, buffer) == 2
    lines = buffer.getvalue().strip().splitlines()
    assert lines[0] == "minute,ok,servfail,no_answer,error"
    assert lines[1] == "0.0,5,1,2,0"
    assert lines[2] == "20.0,3,0,0,0"


def test_write_latency_csv():
    rows = [LatencyQuantiles(1, 10, 20.0, 25.0, 30.0, 40.0)]
    buffer = io.StringIO()
    assert write_latency_csv(rows, buffer) == 1
    lines = buffer.getvalue().strip().splitlines()
    assert lines[0].startswith("minute,count,median_ms")
    assert lines[1] == "10.0,10,20.0,25.0,30.0,40.0"


def test_write_load_csv():
    series = {0: {"NS": 1, "AAAA-for-PID": 9, "other": 2}}
    buffer = io.StringIO()
    assert write_load_csv(series, buffer) == 1
    lines = buffer.getvalue().strip().splitlines()
    assert lines[1].endswith(",12")  # total includes unlisted kinds


def test_write_sweep_csv(sweep):
    buffer = io.StringIO()
    assert write_sweep_csv(sweep, buffer) == 4
    lines = buffer.getvalue().strip().splitlines()
    assert lines[0] == "loss,ttl,failure_before,failure_during,amplification"
    assert len(lines) == 5


def test_write_ecdf_csv():
    buffer = io.StringIO()
    assert write_ecdf_csv([3.0, 1.0, 2.0], buffer) == 3
    lines = buffer.getvalue().strip().splitlines()
    assert lines[1] == "1.0,0.333333"
    assert lines[3] == "3.0,1.0"
