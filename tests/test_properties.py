"""Cross-cutting property tests on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import quantile
from repro.dnscore.name import Name
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.resolvers.retry import RetryPolicy

LABEL = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=12,
)
NAMES = st.lists(LABEL, min_size=0, max_size=4).map(Name)


@given(NAMES, NAMES, NAMES)
def test_name_ordering_transitive(a, b, c):
    sorted([a, b, c])  # consistent ordering or sorted() misbehaves
    if a < b and b < c:
        assert a < c
    # Irreflexivity and asymmetry of the strict ordering.
    assert not (a < a)
    if a < b:
        assert not (b < a)


@given(NAMES, NAMES)
def test_name_subdomain_consistent_with_ancestors(a, b):
    if a.is_subdomain_of(b):
        assert b in list(a.ancestors())
    if b in list(a.ancestors()):
        assert a.is_subdomain_of(b)


@given(
    windows=st.lists(
        st.tuples(
            st.floats(0, 1000, allow_nan=False),
            st.floats(1, 1000, allow_nan=False),
            st.floats(0, 1, allow_nan=False),
        ),
        min_size=0,
        max_size=5,
    ),
    when=st.floats(0, 2500, allow_nan=False),
)
def test_attack_loss_always_a_probability(windows, when):
    schedule = AttackSchedule(
        [
            AttackWindow(["t"], start, start + duration, loss)
            for start, duration, loss in windows
        ]
    )
    loss = schedule.inbound_loss("t", when)
    assert 0.0 <= loss <= 1.0
    # Combined loss never falls below the strongest active window.
    active = [
        loss_value
        for start, duration, loss_value in windows
        if start <= when < start + duration
    ]
    if active:
        assert loss >= max(active) - 1e-9
    else:
        assert loss == 0.0


@given(
    initial=st.floats(0.01, 5.0, allow_nan=False),
    backoff=st.floats(1.0, 3.0, allow_nan=False),
    cap=st.floats(0.01, 10.0, allow_nan=False),
    attempt=st.integers(0, 20),
)
def test_retry_timeouts_monotone_and_capped(initial, backoff, cap, attempt):
    policy = RetryPolicy(
        initial_timeout=initial, backoff=backoff, max_timeout=cap
    )
    current = policy.timeout_for_attempt(attempt)
    following = policy.timeout_for_attempt(attempt + 1)
    assert current <= cap + 1e-12
    assert following >= current - 1e-12  # non-decreasing


@given(
    values=st.lists(
        st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50
    ),
    fraction=st.floats(0, 1, allow_nan=False),
)
def test_quantile_bounded_and_monotone(values, fraction):
    ordered = sorted(values)
    result = quantile(ordered, fraction)
    assert ordered[0] <= result <= ordered[-1]
    if fraction <= 0.5:
        assert quantile(ordered, fraction) <= quantile(ordered, 0.5) + 1e-9


@given(
    serials=st.lists(st.integers(0, 0xFFF), min_size=1, max_size=10),
)
def test_zone_serial_updates_visible(serials):
    from repro.dnscore.records import SOA
    from repro.dnscore.zone import Zone

    origin = Name.from_text("z.test.")
    zone = Zone(origin, SOA(origin, origin, 1))
    for serial in serials:
        zone.set_serial(serial)
        assert zone.serial == serial


@settings(max_examples=25, deadline=None)
@given(
    ttls=st.lists(st.integers(1, 86400), min_size=1, max_size=4),
)
def test_zonefile_roundtrip_random_ttls(ttls):
    from repro.dnscore.zonefile import parse_zone_text, zone_to_text

    lines = ["$ORIGIN z.test.", "$TTL 300", "@ IN SOA ns hostmaster ( 1 2 3 4 5 )"]
    for index, ttl in enumerate(ttls):
        lines.append(f"h{index} {ttl} IN A 192.0.2.{(index % 250) + 1}")
    zone = parse_zone_text("\n".join(lines))
    reparsed = parse_zone_text(zone_to_text(zone))
    assert {
        (str(rrset.name), rrset.ttl) for rrset in reparsed.rrsets()
    } == {(str(rrset.name), rrset.ttl) for rrset in zone.rrsets()}


@given(
    delays=st.lists(
        st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=40
    )
)
def test_simulator_fires_in_nondecreasing_time_order(delays):
    from repro.simcore.simulator import Simulator

    sim = Simulator()
    fired = []
    for delay in delays:
        sim.call_later(delay, lambda: fired.append(sim.now))
    sim.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)
    assert sim.now == max(delays)


@given(
    delays=st.lists(
        st.floats(0.0, 50.0, allow_nan=False), min_size=2, max_size=20
    ),
    cancel_index=st.integers(0, 19),
)
def test_simulator_cancel_is_exact(delays, cancel_index):
    from repro.simcore.simulator import Simulator

    sim = Simulator()
    fired = []
    events = [
        sim.call_later(delay, fired.append, index)
        for index, delay in enumerate(delays)
    ]
    cancel_index %= len(events)
    events[cancel_index].cancel()
    sim.run()
    assert cancel_index not in fired
    assert sorted(fired) == [
        index for index in range(len(delays)) if index != cancel_index
    ]
