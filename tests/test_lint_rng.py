"""Fixture-snippet tests for the ``rng-streams`` lint rule."""

import textwrap

from repro.lint import all_checkers, run_checkers
from repro.lint.driver import parse_source


def lint(source, rel="repro/sample.py"):
    file = parse_source(textwrap.dedent(source), rel)
    return run_checkers([file], all_checkers(["rng-streams"])).findings


def test_unseeded_random_flagged():
    findings = lint(
        """
        import random

        rng = random.Random()
        """
    )
    assert len(findings) == 1
    assert "OS entropy" in findings[0].message


def test_constant_seed_flagged():
    findings = lint(
        """
        import random

        rng = random.Random(0)
        """
    )
    assert len(findings) == 1
    assert "constant-seeded" in findings[0].message


def test_from_import_resolved():
    findings = lint(
        """
        from random import Random

        rng = Random(42)
        """
    )
    assert len(findings) == 1


def test_variable_seed_allowed():
    # Deriving a child generator from a caller-supplied seed or an
    # existing stream keeps provenance in the named-stream graph.
    findings = lint(
        """
        import random

        def derive(seed, rng):
            a = random.Random(seed)
            b = random.Random(rng.getrandbits(64))
            return a, b
        """
    )
    assert findings == []


def test_named_streams_allowed():
    findings = lint(
        """
        from repro.simcore.rng import RandomStreams

        def build(master_seed):
            streams = RandomStreams(master_seed)
            return streams.stream("resolver:a")
        """
    )
    assert findings == []


def test_unrelated_random_class_not_flagged():
    # A locally-defined ``Random`` is not ``random.Random``.
    findings = lint(
        """
        class Random:
            pass

        rng = Random()
        """
    )
    assert findings == []
