"""Failure-path tests for the fault-tolerant executor.

Everything here uses ``chaos`` requests (:func:`repro.runner.chaos_request`)
so worker failures are injected deterministically — no real experiment
run ever fails on its own in CI.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.runner import (
    MISS,
    ChaosFailure,
    DiskCache,
    RetryPolicy,
    RunFailure,
    RunFailureError,
    cache_key,
    chaos_request,
    run_many,
)

POLICY = RetryPolicy(max_attempts=3, serial_fallback=True, max_pool_rebuilds=1)


def _battery(bad_index=4, size=8, mode="raise"):
    """A batch of ``size`` chaos runs with one persistent failure."""
    return [
        chaos_request(mode=mode if index == bad_index else "ok", seed=index)
        for index in range(size)
    ]


def test_keep_going_completes_the_rest_of_the_batch(tmp_path):
    cache = DiskCache(tmp_path)
    requests = _battery(bad_index=4)
    metrics = MetricsRegistry()
    results = run_many(
        requests, jobs=2, cache=cache, keep_going=True, metrics=metrics
    )
    assert len(results) == 8
    failure = results[4]
    assert isinstance(failure, RunFailure)
    assert failure.index == 4
    assert failure.error_type == "ChaosFailure"
    assert failure.attempts == POLICY.max_attempts
    for index, result in enumerate(results):
        if index == 4:
            continue
        assert result == {"chaos": "chaos", "seed": index}
    # Incremental write-back: every healthy run is on disk even though
    # one member of the batch failed.
    for index, request in enumerate(requests):
        cached = cache.get(cache_key(request))
        if index == 4:
            assert cached is MISS
        else:
            assert cached == results[index]
    assert metrics.value("runner.checkpointed") == 7
    assert metrics.value("runner.inflight") == 0


def test_fail_fast_raises_structured_error(tmp_path):
    cache = DiskCache(tmp_path)
    with pytest.raises(RunFailureError) as info:
        run_many(_battery(bad_index=2, size=4), jobs=1, cache=cache)
    [failure] = info.value.failures
    assert failure.index == 2
    assert failure.kind == "chaos"
    assert failure.error_type == "ChaosFailure"
    assert failure.attempts == POLICY.max_attempts
    assert "#2" in failure.describe()
    assert "chaos" in failure.describe()


def test_fail_fast_still_checkpoints_completed_runs(tmp_path):
    # An aborted batch must not waste the runs that already finished:
    # a rerun after the fix should hit the cache for all of them.
    cache = DiskCache(tmp_path)
    requests = _battery(bad_index=3, size=4)
    with pytest.raises(RunFailureError):
        run_many(requests, jobs=1, cache=cache)
    for index, request in enumerate(requests):
        hit = cache.get(cache_key(request)) is not MISS
        assert hit == (index != 3)


@pytest.mark.parametrize("jobs", [1, 2])
def test_flaky_run_retries_then_succeeds(tmp_path, jobs):
    state = tmp_path / "flaky-state"
    metrics = MetricsRegistry()
    requests = [
        chaos_request(mode="ok", seed=0),
        chaos_request(
            mode="raise", seed=1, state_file=str(state), fail_times=1
        ),
    ]
    results = run_many(requests, jobs=jobs, metrics=metrics)
    assert results[1] == {"chaos": "chaos", "seed": 1}
    assert metrics.value("runner.retries") >= 1


def test_worker_crash_recovers_and_blames_the_right_run(tmp_path):
    # SIGKILL takes down the whole pool (BrokenProcessPool); the ladder
    # must rebuild, quarantine, and pin the crash on run 1 while the
    # healthy runs still complete.
    cache = DiskCache(tmp_path)
    metrics = MetricsRegistry()
    requests = [
        chaos_request(mode="ok", seed=0),
        chaos_request(mode="kill", seed=1),
        chaos_request(mode="ok", seed=2),
    ]
    results = run_many(
        requests, jobs=2, cache=cache, keep_going=True, metrics=metrics
    )
    failure = results[1]
    assert isinstance(failure, RunFailure)
    assert failure.error_type == "BrokenProcessPool"
    assert results[0] == {"chaos": "chaos", "seed": 0}
    assert results[2] == {"chaos": "chaos", "seed": 2}
    assert metrics.value("runner.worker_crashes") >= 1
    assert metrics.value("runner.inflight") == 0


def test_serial_fallback_counter_increments(tmp_path):
    # Only the pool path descends to the in-process rung; a persistent
    # raiser spends the pool budget, then one serial final attempt.
    metrics = MetricsRegistry()
    results = run_many(
        [chaos_request(mode="ok", seed=0), chaos_request(mode="raise", seed=1)],
        jobs=2,
        keep_going=True,
        metrics=metrics,
    )
    assert isinstance(results[1], RunFailure)
    assert metrics.value("runner.serial_fallbacks") == 1


def test_interrupted_batch_resumes_with_exact_hit_count(tmp_path):
    # Simulate an interrupted battery: run a prefix, then the full batch.
    cache = DiskCache(tmp_path)
    requests = [chaos_request(mode="ok", seed=index) for index in range(8)]
    run_many(requests[:3], jobs=2, cache=cache)

    resumed = DiskCache(tmp_path)
    results = run_many(requests, jobs=2, cache=resumed)
    assert len(results) == 8
    assert resumed.hits == 3
    assert resumed.misses == 5


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_pool_rebuilds=-1)


def test_custom_policy_controls_attempt_count():
    metrics = MetricsRegistry()
    policy = RetryPolicy(max_attempts=2, serial_fallback=False)
    results = run_many(
        [chaos_request(mode="raise", seed=0)],
        jobs=1,
        keep_going=True,
        policy=policy,
        metrics=metrics,
    )
    failure = results[0]
    assert isinstance(failure, RunFailure)
    assert failure.attempts == 2
    assert metrics.value("runner.serial_fallbacks") == 0


def test_chaos_request_raise_mode_raises_chaos_failure():
    from repro.runner import execute_request

    with pytest.raises(ChaosFailure):
        execute_request(chaos_request(mode="raise", seed=9))
    assert execute_request(chaos_request(mode="ok", seed=9)) == {
        "chaos": "chaos",
        "seed": 9,
    }
