"""Unit tests for metric aggregations."""

import pytest

from repro.core.metrics import (
    amplification_factor,
    authoritative_load_by_round,
    failure_fraction,
    latency_by_round,
    per_probe_amplification,
    quantile,
    responses_by_round,
    round_index_of,
    unique_rn_by_round,
)
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.resolvers.stub import StubAnswer
from repro.servers.querylog import QueryLog

ZONE = Name.from_text("cachetest.nl.")


def make_answer(sent_at, status=StubAnswer.OK, latency=0.05):
    answer = StubAnswer(1, "r", int(sent_at // 600), sent_at)
    answer.status = status
    if status == StubAnswer.OK:
        answer.answered_at = sent_at + latency
    return answer


def test_round_index_of():
    assert round_index_of(0.0, 600.0) == 0
    assert round_index_of(599.9, 600.0) == 0
    assert round_index_of(600.0, 600.0) == 1


def test_quantile_interpolation():
    values = [0.0, 10.0, 20.0, 30.0]
    assert quantile(values, 0.0) == 0.0
    assert quantile(values, 1.0) == 30.0
    assert quantile(values, 0.5) == 15.0
    assert quantile([5.0], 0.9) == 5.0
    with pytest.raises(ValueError):
        quantile([], 0.5)


def test_responses_by_round_buckets():
    answers = [
        make_answer(10.0),
        make_answer(20.0, status=StubAnswer.NO_ANSWER),
        make_answer(610.0, status=StubAnswer.SERVFAIL),
        make_answer(620.0),
    ]
    series = responses_by_round(answers, 600.0)
    assert series[0] == {"ok": 1, "servfail": 0, "no_answer": 1, "error": 0}
    assert series[1] == {"ok": 1, "servfail": 1, "no_answer": 0, "error": 0}


def test_failure_fraction_with_window():
    answers = [
        make_answer(10.0),
        make_answer(20.0, status=StubAnswer.NO_ANSWER),
        make_answer(1000.0, status=StubAnswer.SERVFAIL),
    ]
    assert failure_fraction(answers) == pytest.approx(2 / 3)
    assert failure_fraction(answers, (0.0, 600.0)) == pytest.approx(0.5)
    assert failure_fraction([], None) == 0.0


def test_latency_by_round_quantiles():
    answers = [make_answer(10.0, latency=ms / 1000.0) for ms in (10, 20, 30, 40)]
    answers.append(make_answer(15.0, status=StubAnswer.NO_ANSWER))
    rounds = latency_by_round(answers, 600.0)
    assert len(rounds) == 1
    row = rounds[0]
    assert row.count == 4
    assert row.median_ms == pytest.approx(25.0)
    assert row.mean_ms == pytest.approx(25.0)
    assert row.p90_ms == pytest.approx(37.0)


def test_authoritative_load_by_round_kinds():
    log = QueryLog()
    ns1 = Name.from_text("ns1.cachetest.nl.")
    log.record(10.0, "r1", Name.from_text("7.cachetest.nl."), RRType.AAAA, "at1")
    log.record(20.0, "r1", ns1, RRType.AAAA, "at1")
    log.record(610.0, "r1", ZONE, RRType.NS, "at1")
    series = authoritative_load_by_round(log, ZONE, [ns1], 600.0)
    assert series[0] == {"AAAA-for-PID": 1, "AAAA-for-NS": 1}
    assert series[1] == {"NS": 1}


def test_amplification_factor():
    load = {
        0: {"AAAA-for-PID": 100},
        1: {"AAAA-for-PID": 100},
        2: {"AAAA-for-PID": 800},
        3: {"AAAA-for-PID": 800},
    }
    assert amplification_factor(load, [0, 1], [2, 3]) == pytest.approx(8.0)
    assert amplification_factor(load, [], [2]) in (0.0, float("inf"))


def test_per_probe_amplification():
    log = QueryLog()
    # Probe 1: three queries from two Rn; probe 2: one query.
    log.record(10.0, "rnA", Name.from_text("1.cachetest.nl."), RRType.AAAA, "at1")
    log.record(11.0, "rnB", Name.from_text("1.cachetest.nl."), RRType.AAAA, "at2")
    log.record(12.0, "rnA", Name.from_text("1.cachetest.nl."), RRType.AAAA, "at1")
    log.record(13.0, "rnA", Name.from_text("2.cachetest.nl."), RRType.AAAA, "at1")
    # Non-probe names ignored:
    log.record(14.0, "rnA", Name.from_text("ns1.cachetest.nl."), RRType.AAAA, "at1")
    log.record(15.0, "rnA", Name.from_text("1.cachetest.nl."), RRType.A, "at1")
    rows = per_probe_amplification(log, ZONE, 600.0)
    assert len(rows) == 1
    row = rows[0]
    assert row.queries_max == 3.0
    assert row.rn_max == 2.0
    assert row.queries_median == 2.0  # probes saw 3 and 1 queries


def test_unique_rn_by_round():
    log = QueryLog()
    log.record(10.0, "a", ZONE, RRType.NS, "at1")
    log.record(20.0, "b", ZONE, RRType.NS, "at1")
    log.record(30.0, "a", ZONE, RRType.NS, "at2")
    log.record(610.0, "c", ZONE, RRType.NS, "at1")
    assert unique_rn_by_round(log, 600.0) == {0: 2, 1: 1}
