"""Tests for the preserved Appendix C public-resolver list."""

import ipaddress

from repro.clients.paper_resolver_list import (
    PAPER_PUBLIC_RESOLVERS,
    is_google_address,
    is_on_paper_list,
    operator_of,
    operators,
)


def test_list_has_the_papers_96_entries():
    assert len(PAPER_PUBLIC_RESOLVERS) == 96


def test_all_addresses_parse():
    for address in PAPER_PUBLIC_RESOLVERS:
        ipaddress.ip_address(address)  # raises on malformed entries


def test_google_addresses():
    assert is_google_address("8.8.8.8")
    assert is_google_address("8.8.4.4")
    assert is_google_address("2001:4860:4860::8888")
    assert not is_google_address("9.9.9.9")
    assert sum(1 for a in PAPER_PUBLIC_RESOLVERS if is_google_address(a)) == 4


def test_membership_and_operator_lookup():
    assert is_on_paper_list("208.67.222.222")
    assert operator_of("208.67.222.222") == "OpenDNS"
    assert not is_on_paper_list("192.0.2.1")
    assert operator_of("192.0.2.1") is None


def test_well_known_operators_present():
    names = operators()
    for expected in ("Google Public DNS", "OpenDNS", "Quad9", "Verisign", "Dyn"):
        assert expected in names
    assert names["OpenNIC"] == 16  # the list's largest operator


def test_counts_sum_to_total():
    assert sum(operators().values()) == 96
