"""Error-bound and determinism guarantees of the per-source sketches."""

import math
import random

import pytest

from repro.obs import CountMinSketch, SourceSketch, SpaceSaving


def zipf_stream(distinct: int, total: int, seed: int):
    """A seeded Zipf-ish key stream: key rank r drawn with weight 1/r."""
    rng = random.Random(seed)
    keys = [f"100.64.{rank // 256}.{rank % 256}" for rank in range(distinct)]
    weights = [1.0 / (rank + 1) for rank in range(distinct)]
    return rng.choices(keys, weights=weights, k=total)


def exact_counts(stream):
    counts = {}
    for key in stream:
        counts[key] = counts.get(key, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Count-min
# ----------------------------------------------------------------------
def test_cms_parameter_validation():
    with pytest.raises(ValueError):
        CountMinSketch(epsilon=0.0)
    with pytest.raises(ValueError):
        CountMinSketch(delta=1.0)


def test_cms_never_undercounts_and_respects_epsilon_n():
    stream = zipf_stream(distinct=400, total=20_000, seed=7)
    truth = exact_counts(stream)
    cms = CountMinSketch(epsilon=0.01, delta=0.01)
    for key in stream:
        cms.update(key)

    assert cms.total == len(stream)
    bound = cms.error_bound()
    assert bound == pytest.approx(0.01 * len(stream))
    for key, true_count in truth.items():
        estimate = cms.estimate(key)
        assert estimate >= true_count  # one-sided: never undercounts
        assert estimate <= true_count + bound


def test_cms_weighted_updates():
    cms = CountMinSketch()
    cms.update("a", 5)
    cms.update("a", 2)
    assert cms.estimate("a") == 7
    assert cms.total == 7
    assert cms.estimate("never-seen") <= cms.error_bound()


# ----------------------------------------------------------------------
# Space-saving
# ----------------------------------------------------------------------
def test_space_saving_exact_when_under_capacity():
    stream = zipf_stream(distinct=12, total=5_000, seed=3)
    truth = exact_counts(stream)
    heavy = SpaceSaving(capacity=16)
    for key in stream:
        heavy.update(key)

    top = heavy.top(16)
    assert len(top) == len(truth)
    for key, count, error in top:
        assert error == 0
        assert count == truth[key]


def test_space_saving_guaranteed_containment():
    """Every key heavier than N/capacity must be monitored."""
    stream = zipf_stream(distinct=600, total=30_000, seed=11)
    truth = exact_counts(stream)
    heavy = SpaceSaving(capacity=24)
    for key in stream:
        heavy.update(key)

    monitored = {key for key, _count, _error in heavy.top(heavy.capacity)}
    threshold = heavy.total / heavy.capacity
    for key, true_count in truth.items():
        if true_count > threshold:
            assert key in monitored
    # Monitored counts always sum to the full stream (evictions inherit).
    assert sum(count for _k, count, _e in heavy.top(heavy.capacity)) == len(
        stream
    )


def test_space_saving_deterministic_eviction_order():
    """Ties break on (count, error, key), not dict insertion history."""
    a, b = SpaceSaving(capacity=2), SpaceSaving(capacity=2)
    for key in ("x", "y", "z"):
        a.update(key)
    for key in ("y", "x", "z"):  # same multiset, different arrival order
        b.update(key)
    assert a.top(2) == b.top(2)


# ----------------------------------------------------------------------
# Composite SourceSketch
# ----------------------------------------------------------------------
def test_heavy_hitters_within_epsilon_n_of_truth():
    """SS nominates, CMS bounds: reported counts inherit epsilon*N."""
    stream = zipf_stream(distinct=500, total=25_000, seed=42)
    truth = exact_counts(stream)
    sketch = SourceSketch(epsilon=0.01, delta=0.01, topk=16)
    for key in stream:
        sketch.update(key)

    bound = sketch.cms.error_bound()
    for key, count, _error in sketch.heavy_hitters(10):
        true_count = truth[key]
        assert count <= true_count + bound
        assert count + bound >= true_count


def test_distinct_linear_counting_tolerance():
    sketch = SourceSketch()
    distinct = 800
    for index in range(distinct):
        sketch.update(f"src-{index}")
    # 8192-bit register: ~2% standard error at this load; 10% gives
    # plenty of headroom while still catching a broken estimator.
    assert sketch.distinct() == pytest.approx(distinct, rel=0.10)


def test_entropy_edge_cases():
    empty = SourceSketch()
    assert empty.entropy_bits() == 0.0

    single = SourceSketch()
    for _ in range(1000):
        single.update("attacker")
    assert single.entropy_bits() == pytest.approx(0.0, abs=1e-9)

    uniform = SourceSketch(topk=64)
    for index in range(32):
        for _ in range(100):
            uniform.update(f"src-{index}")
    # All 32 keys monitored exactly: entropy is exactly log2(32) = 5.
    assert uniform.entropy_bits() == pytest.approx(math.log2(32), rel=0.01)


def test_summary_shares_bounded_and_deterministic():
    stream = zipf_stream(distinct=300, total=10_000, seed=9)
    first, second = SourceSketch(), SourceSketch()
    for key in stream:
        first.update(key)
        second.update(key)

    summary = first.summary()
    assert summary == second.summary()  # same stream -> same numbers
    assert summary["total"] == len(stream)
    assert 0.0 < summary["top1_share"] <= summary["topk_share"] <= 1.0
    # Zipf over 300 keys is neither degenerate nor uniform.
    assert 0.0 < summary["entropy_bits"] < math.log2(300) + 1

    empty = SourceSketch().summary()
    assert empty["total"] == 0
    assert empty["top1_share"] == 0.0 and empty["topk_share"] == 0.0
