"""Unit and property tests for the positive DNS cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnscore.name import Name
from repro.dnscore.records import A, ResourceRecord, RRset
from repro.dnscore.rrtypes import RRType
from repro.resolvers.cache import CacheConfig, DnsCache

OWNER = Name.from_text("www.cachetest.nl.")


def make_rrset(ttl=300, address="192.0.2.1", owner=OWNER) -> RRset:
    return RRset([ResourceRecord(owner, ttl, A(address))])


def test_hit_decrements_ttl():
    cache = DnsCache()
    cache.put(make_rrset(ttl=300), now=100.0)
    hit = cache.get(OWNER, RRType.A, now=150.0)
    assert hit is not None
    assert hit.ttl == 250


def test_expired_entry_misses():
    cache = DnsCache()
    cache.put(make_rrset(ttl=300), now=0.0)
    assert cache.get(OWNER, RRType.A, now=300.0) is None
    assert cache.misses == 1


def test_max_ttl_cap_applies():
    cache = DnsCache(CacheConfig(max_ttl=60))
    entry = cache.put(make_rrset(ttl=86400), now=0.0)
    assert entry.stored_ttl == 60
    hit = cache.get(OWNER, RRType.A, now=0.0)
    assert hit.ttl == 60
    assert cache.get(OWNER, RRType.A, now=61.0) is None


def test_min_ttl_override():
    cache = DnsCache(CacheConfig(min_ttl=120))
    entry = cache.put(make_rrset(ttl=10), now=0.0)
    assert entry.stored_ttl == 120


def test_lru_eviction_order():
    cache = DnsCache(CacheConfig(max_entries=2))
    first = Name.from_text("a.nl.")
    second = Name.from_text("b.nl.")
    third = Name.from_text("c.nl.")
    cache.put(make_rrset(owner=first), 0.0)
    cache.put(make_rrset(owner=second), 0.0)
    cache.get(first, RRType.A, 1.0)  # touch: first becomes most recent
    cache.put(make_rrset(owner=third), 2.0)
    assert cache.get(first, RRType.A, 3.0) is not None
    assert cache.get(second, RRType.A, 3.0) is None  # evicted
    assert cache.evictions == 1


def test_flush_clears_everything():
    cache = DnsCache()
    cache.put(make_rrset(), 0.0)
    cache.flush()
    assert len(cache) == 0
    assert cache.flushes == 1


def test_replacement_updates_entry():
    cache = DnsCache()
    cache.put(make_rrset(address="192.0.2.1"), 0.0)
    cache.put(make_rrset(address="192.0.2.2"), 10.0)
    hit = cache.get(OWNER, RRType.A, 10.0)
    assert hit.records[0].rdata.address == "192.0.2.2"
    assert len(cache) == 1


def test_glue_cannot_overwrite_fresh_authoritative():
    cache = DnsCache()
    cache.put(make_rrset(address="192.0.2.1", ttl=300), 0.0, authoritative=True)
    result = cache.put(
        make_rrset(address="192.0.2.9", ttl=300), 10.0, authoritative=False
    )
    assert result.authoritative
    hit = cache.get(OWNER, RRType.A, 20.0)
    assert hit.records[0].rdata.address == "192.0.2.1"


def test_glue_replaces_expired_authoritative():
    cache = DnsCache(CacheConfig(stale_window=3600))
    cache.put(make_rrset(address="192.0.2.1", ttl=10), 0.0, authoritative=True)
    cache.put(make_rrset(address="192.0.2.9", ttl=300), 20.0, authoritative=False)
    hit = cache.get(OWNER, RRType.A, 25.0)
    assert hit.records[0].rdata.address == "192.0.2.9"


def test_authoritative_overwrites_glue():
    cache = DnsCache()
    cache.put(make_rrset(address="192.0.2.9", ttl=3600), 0.0, authoritative=False)
    cache.put(make_rrset(address="192.0.2.1", ttl=60), 1.0, authoritative=True)
    hit = cache.get(OWNER, RRType.A, 2.0, require_authoritative=True)
    assert hit.records[0].rdata.address == "192.0.2.1"
    assert hit.ttl == 59


def test_require_authoritative_hides_glue():
    cache = DnsCache()
    cache.put(make_rrset(), 0.0, authoritative=False)
    assert cache.get(OWNER, RRType.A, 1.0, require_authoritative=True) is None
    assert cache.get(OWNER, RRType.A, 1.0) is not None


def test_serve_stale_within_window_returns_ttl_zero():
    cache = DnsCache(CacheConfig(stale_window=3600))
    cache.put(make_rrset(ttl=60), 0.0)
    assert cache.get(OWNER, RRType.A, 100.0) is None  # expired
    stale = cache.get_stale(OWNER, RRType.A, 100.0)
    assert stale is not None
    assert stale.ttl == 0
    assert cache.stale_hits == 1


def test_serve_stale_outside_window_fails():
    cache = DnsCache(CacheConfig(stale_window=100))
    cache.put(make_rrset(ttl=60), 0.0)
    assert cache.get_stale(OWNER, RRType.A, 161.0) is None


def test_stale_not_served_while_fresh():
    cache = DnsCache(CacheConfig(stale_window=100))
    cache.put(make_rrset(ttl=60), 0.0)
    assert cache.get_stale(OWNER, RRType.A, 30.0) is None


def test_expired_entry_dropped_without_stale_window():
    cache = DnsCache(CacheConfig(stale_window=0.0))
    cache.put(make_rrset(ttl=10), 0.0)
    cache.get(OWNER, RRType.A, 20.0)
    assert len(cache) == 0


def test_contains_fresh():
    cache = DnsCache()
    cache.put(make_rrset(ttl=10), 0.0)
    assert cache.contains_fresh(OWNER, RRType.A, 5.0)
    assert not cache.contains_fresh(OWNER, RRType.A, 15.0)


def test_dump_lists_fresh_entries():
    cache = DnsCache()
    cache.put(make_rrset(ttl=100), 0.0)
    rows = cache.dump(now=40.0)
    assert rows == [(OWNER, RRType.A, 60, True)]


def test_stats_shape():
    cache = DnsCache()
    cache.put(make_rrset(), 0.0)
    cache.get(OWNER, RRType.A, 1.0)
    cache.get(Name.from_text("other.nl."), RRType.A, 1.0)
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1


@given(
    ttl=st.integers(min_value=0, max_value=86400),
    cap=st.integers(min_value=0, max_value=86400),
    elapsed=st.floats(min_value=0, max_value=90000, allow_nan=False),
)
def test_property_remaining_ttl_never_exceeds_cap(ttl, cap, elapsed):
    cache = DnsCache(CacheConfig(max_ttl=cap))
    cache.put(make_rrset(ttl=ttl), 0.0)
    hit = cache.get(OWNER, RRType.A, elapsed)
    if hit is not None:
        assert 0 <= hit.ttl <= min(ttl, cap)
        assert hit.ttl <= ttl - int(elapsed) + 1


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60))
def test_property_size_never_exceeds_limit(name_indices):
    cache = DnsCache(CacheConfig(max_entries=10))
    for step, index in enumerate(name_indices):
        owner = Name.from_text(f"n{index}.nl.")
        cache.put(make_rrset(owner=owner), float(step))
        assert len(cache) <= 10
