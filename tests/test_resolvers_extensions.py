"""Tests for the extension features: prefetch and attack queueing delay.

Both extend the paper: prefetch models Unbound/BIND cache refreshing
("hammer time"), and queueing delay is the future-work item the paper
names in §5.1. Both default off so the baseline reproduction matches
the paper's emulation.
"""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.resolvers.recursive import RecursiveResolver, ResolverConfig

QNAME = Name.from_text("1414.cachetest.nl.")


# ---------------------------------------------------------------------------
# Prefetch
# ---------------------------------------------------------------------------
def make_resolver(world, prefetch=True):
    config = ResolverConfig()
    config.prefetch = prefetch
    return RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, config=config
    )


def resolve_at(world, resolver, time, sink):
    world.sim.at(time, resolver.resolve, QNAME, RRType.AAAA, sink.append)


def test_prefetch_triggers_near_expiry(short_ttl_world):
    world = short_ttl_world  # TTL 60
    resolver = make_resolver(world)
    outcomes = []
    resolve_at(world, resolver, 0.0, outcomes)  # warm
    resolve_at(world, resolver, 55.0, outcomes)  # hit at 92% age -> prefetch
    world.sim.run(until=70.0)
    assert len(outcomes) == 2
    assert outcomes[1].from_cache
    assert resolver.prefetches == 1


def test_prefetch_not_triggered_when_fresh(short_ttl_world):
    world = short_ttl_world
    resolver = make_resolver(world)
    outcomes = []
    resolve_at(world, resolver, 0.0, outcomes)
    resolve_at(world, resolver, 10.0, outcomes)  # 17% age: no prefetch
    world.sim.run(until=30.0)
    assert resolver.prefetches == 0


def test_prefetch_disabled_by_default(short_ttl_world):
    world = short_ttl_world
    resolver = make_resolver(world, prefetch=False)
    outcomes = []
    resolve_at(world, resolver, 0.0, outcomes)
    resolve_at(world, resolver, 55.0, outcomes)
    world.sim.run(until=70.0)
    assert resolver.prefetches == 0


def test_prefetch_extends_cache_lifetime(short_ttl_world):
    world = short_ttl_world
    resolver = make_resolver(world)
    outcomes = []
    resolve_at(world, resolver, 0.0, outcomes)
    resolve_at(world, resolver, 55.0, outcomes)  # triggers refresh
    # Without prefetch this third query (t=100 > 60+55) would go
    # upstream; with the refresh at ~55 the entry now expires at ~115.
    resolve_at(world, resolver, 100.0, outcomes)
    world.sim.run(until=120.0)
    assert outcomes[2].from_cache
    # Serial advanced? No rotation here, but the refresh hit the wire:
    pid_queries = [
        entry for entry in world.query_log.entries if entry.qname == QNAME
    ]
    assert len(pid_queries) == 2  # initial fetch + prefetch refresh


def test_prefetch_deduplicates(short_ttl_world):
    world = short_ttl_world
    resolver = make_resolver(world)
    outcomes = []
    resolve_at(world, resolver, 0.0, outcomes)
    # Two hits inside the trigger window, microseconds apart.
    resolve_at(world, resolver, 55.0, outcomes)
    resolve_at(world, resolver, 55.0001, outcomes)
    world.sim.run(until=70.0)
    pid_queries = [
        entry for entry in world.query_log.entries if entry.qname == QNAME
    ]
    assert len(pid_queries) == 2  # one fetch + exactly one refresh


# ---------------------------------------------------------------------------
# Queueing delay
# ---------------------------------------------------------------------------
def test_queue_delay_validation():
    with pytest.raises(ValueError):
        AttackWindow(["t"], 0.0, 10.0, 0.5, queue_delay=-1.0)


def test_queue_delay_schedule_sums_active_windows():
    schedule = AttackSchedule(
        [
            AttackWindow(["t"], 0.0, 100.0, 0.0, queue_delay=0.05),
            AttackWindow(["t"], 0.0, 100.0, 0.0, queue_delay=0.03),
        ]
    )
    assert schedule.inbound_queue_delay("t", 10.0) == pytest.approx(0.08)
    assert schedule.inbound_queue_delay("t", 200.0) == 0.0
    assert schedule.inbound_queue_delay("other", 10.0) == 0.0


def test_queueing_slows_surviving_packets(world):
    from repro.dnscore.message import make_query

    world.attacks.add(
        AttackWindow([world.AT1], 0.0, 1e6, 0.0, queue_delay=0.5)
    )
    arrivals = []
    # Tap delivery times via a fresh endpoint next to the server.
    original_handler = world.network._handlers[world.AT1]

    def timing_handler(packet):
        arrivals.append(world.sim.now)
        original_handler(packet)

    world.network._handlers[world.AT1] = timing_handler
    for _ in range(50):
        world.network.send("10.9.9.9", world.AT1, make_query(QNAME, RRType.AAAA))
    world.sim.run(until=60.0)
    assert len(arrivals) == 50
    mean_delay = sum(arrivals) / len(arrivals) - 0.01  # minus base latency
    # Exponential with mean 0.5 s: the sample mean should be nearby.
    assert 0.25 < mean_delay < 0.9


def test_queueing_increases_client_latency(world):
    outcomes = []
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    # Baseline resolution time.
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=30.0)
    baseline_done = world.sim.now if outcomes else None

    # Same query against a queueing-delayed zone, fresh resolver/cache.
    world.attacks.add(
        AttackWindow(
            world.target_addresses, world.sim.now, 1e6, 0.0, queue_delay=0.4
        )
    )
    slow = []
    other = Name.from_text("1500.cachetest.nl.")
    start = world.sim.now
    world.sim.call_later(0.0, resolver.resolve, other, RRType.AAAA, slow.append)
    world.sim.run(until=start + 30.0)
    assert slow and slow[0].is_success


# ---------------------------------------------------------------------------
# SERVFAIL caching
# ---------------------------------------------------------------------------
def test_servfail_cached_within_window(world):
    from repro.resolvers.recursive import Outcome

    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 1e6, 1.0))
    config = ResolverConfig()
    config.servfail_cache_ttl = 30.0
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, config=config
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=20.0)  # resolution fails by ~18 s (hard deadline)
    assert outcomes[0].status == Outcome.SERVFAIL
    queries_after_first = resolver.upstream_queries
    # A second query inside the 30 s window answers instantly from the
    # servfail cache without touching upstream.
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=world.sim.now + 5.0)
    assert outcomes[1].status == Outcome.SERVFAIL
    assert outcomes[1].from_cache
    assert resolver.upstream_queries == queries_after_first


def test_servfail_cache_expires(world):
    from repro.resolvers.recursive import Outcome

    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 1e6, 1.0))
    config = ResolverConfig()
    config.servfail_cache_ttl = 5.0
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, config=config
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=60.0)
    queries_after_first = resolver.upstream_queries
    world.sim.call_later(10.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=world.sim.now + 60.0)
    assert outcomes[1].status == Outcome.SERVFAIL
    assert resolver.upstream_queries > queries_after_first  # retried


def test_servfail_cache_disabled(world):
    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 1e6, 1.0))
    config = ResolverConfig()
    config.servfail_cache_ttl = 0.0
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, config=config
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=60.0)
    queries_after_first = resolver.upstream_queries
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=world.sim.now + 60.0)
    assert resolver.upstream_queries > queries_after_first


def test_success_not_poisoned_by_servfail_cache(world):
    # Failure window passes, zone recovers, resolution succeeds.
    from repro.resolvers.recursive import Outcome

    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 100.0, 1.0))
    config = ResolverConfig()
    config.servfail_cache_ttl = 5.0
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, config=config
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.at(200.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=300.0)
    assert outcomes[0].status == Outcome.SERVFAIL
    assert outcomes[1].status == Outcome.OK
