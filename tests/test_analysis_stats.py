"""Unit tests for multi-seed statistics."""

import pytest

from repro.analysis.stats import (
    SeedSweep,
    confidence_interval_95,
    mean,
    run_over_seeds,
    sample_std,
)


def test_mean_and_std():
    assert mean([2.0, 4.0, 6.0]) == 4.0
    assert sample_std([2.0, 4.0, 6.0]) == pytest.approx(2.0)
    assert sample_std([5.0]) == 0.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        sample_std([])


def test_ci_single_value_degenerate():
    assert confidence_interval_95([3.0]) == (3.0, 3.0)


def test_ci_contains_mean_and_widens_with_variance():
    tight = confidence_interval_95([10.0, 10.1, 9.9, 10.0])
    loose = confidence_interval_95([10.0, 14.0, 6.0, 10.0])
    assert tight[0] <= 10.0 <= tight[1]
    assert loose[1] - loose[0] > tight[1] - tight[0]


def test_ci_known_value():
    # n=4, mean 10, std 1: margin = 3.182 * 1 / 2 = 1.591.
    values = [9.0, 9.5, 10.5, 11.0]
    low, high = confidence_interval_95(values)
    assert low == pytest.approx(10.0 - 3.182 * sample_std(values) / 2)
    assert high == pytest.approx(10.0 + 3.182 * sample_std(values) / 2)


def test_seed_sweep_summary():
    sweep = SeedSweep("metric", [1, 2, 3], [0.4, 0.42, 0.38])
    assert sweep.mean == pytest.approx(0.4)
    assert sweep.contains(0.4)
    assert not sweep.contains(0.9)
    assert "±" in repr(sweep)


def test_run_over_seeds_runs_once_per_seed():
    calls = []

    def run(seed):
        calls.append(seed)
        return {"value": seed * 10}

    sweeps = run_over_seeds(
        run,
        {"tens": lambda result: result["value"], "ones": lambda result: 1},
        seeds=[1, 2, 3],
    )
    assert calls == [1, 2, 3]
    assert sweeps["tens"].values == [10.0, 20.0, 30.0]
    assert sweeps["ones"].mean == 1.0


def test_run_over_seeds_requires_seeds():
    with pytest.raises(ValueError):
        run_over_seeds(lambda seed: seed, {"x": float}, seeds=[])


def test_run_over_seeds_with_real_experiment():
    """Replicated Experiment E at tiny scale: failure fraction is stable
    across seeds, and caching keeps it low."""
    from repro.core.experiments import DDOS_EXPERIMENTS, run_ddos

    def run(seed):
        return run_ddos(DDOS_EXPERIMENTS["E"], probe_count=80, seed=seed)

    sweeps = run_over_seeds(
        run,
        {
            "fail_during": lambda result: result.failure_fraction_during_attack(),
        },
        seeds=[1, 2, 3],
    )
    sweep = sweeps["fail_during"]
    assert 0.0 <= sweep.mean < 0.25
    assert sweep.std < 0.1
