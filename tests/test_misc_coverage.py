"""Small-surface tests: validation branches and display helpers."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import Rcode, RRClass, RRType


def test_enum_str_forms():
    assert str(RRType.AAAA) == "AAAA"
    assert str(RRClass.IN) == "IN"
    assert str(Rcode.NXDOMAIN) == "NXDOMAIN"


def test_probe_requires_matching_kind_list(world):
    from repro.clients.probe import Probe
    from repro.resolvers.stub import StubResolver

    stub = StubResolver(
        world.sim, world.network, "10.0.0.7", 5, ["100.64.0.1", "100.64.0.2"]
    )
    with pytest.raises(ValueError):
        Probe(5, stub, Name.from_text("5.cachetest.nl."), ["isp"])
    probe = Probe(5, stub, Name.from_text("5.cachetest.nl."), ["isp", "public"])
    assert probe.vp_count == 2


def test_refusing_resolver_answers_refused(world):
    from repro.clients.population import RefusingResolver
    from repro.dnscore.message import make_query

    RefusingResolver(world.sim, world.network, "100.64.5.5")
    received = []
    world.network.register("10.0.0.8", received.append)
    world.network.send(
        "10.0.0.8",
        "100.64.5.5",
        make_query(Name.from_text("x.cachetest.nl."), RRType.A),
    )
    world.sim.run(until=1.0)
    assert received[0].message.rcode == Rcode.REFUSED


def test_registry_rejects_unknown_kind():
    from repro.clients.publicdns import ResolverRegistry

    registry = ResolverRegistry()
    with pytest.raises(ValueError):
        registry.register_recursive("1.2.3.4", "mystery")


def test_default_public_services_shares_sane():
    from repro.clients.publicdns import default_public_services

    services = default_public_services()
    total_share = sum(service.vp_share for service in services)
    assert 0.2 < total_share < 0.4
    google = [service for service in services if service.google_like]
    assert len(google) == 1
    assert google[0].vp_share > max(
        service.vp_share for service in services if not service.google_like
    )


def test_render_timeseries_without_attack_column():
    from repro.analysis.figures import render_timeseries_table

    text = render_timeseries_table("T", {0: {"ok": 1}}, ["ok"])
    assert "attack" not in text


def test_outcome_reprs():
    from repro.resolvers.recursive import Outcome

    ok = Outcome(Outcome.OK, from_cache=True)
    assert "cache" in repr(ok)
    stale = Outcome(Outcome.OK, stale=True)
    assert "stale" in repr(stale)
    assert Outcome(Outcome.NODATA).rcode == Rcode.NOERROR
    assert Outcome(Outcome.SERVFAIL).rcode == Rcode.SERVFAIL


def test_dataset_counts_with_no_answers(world):
    from repro.core.experiments.baseline import dataset_counts
    from repro.core.testbed import Testbed, TestbedConfig
    from repro.clients.population import PopulationConfig

    testbed = Testbed(
        TestbedConfig(population=PopulationConfig(probe_count=5))
    )
    counts = dataset_counts(testbed, [])
    assert counts.queries == 0
    assert counts.probes == 5
    assert counts.probes_discarded == 5


def test_pool_internal_delay_applies(world):
    import random

    from repro.dnscore.message import make_query
    from repro.resolvers.pool import PoolConfig, PublicResolverPool
    from repro.resolvers.stub import StubResolver

    pool = PublicResolverPool(
        world.sim,
        world.network,
        "198.18.0.7",
        ["8.0.3.1"],
        world.root_hints,
        config=PoolConfig(backend_count=1, internal_delay=0.25),
        rng=random.Random(0),
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.9", 3, ["198.18.0.7"], results
    )
    world.sim.call_later(
        0.0, stub.query_round, Name.from_text("3.cachetest.nl."), RRType.AAAA, 0
    )
    world.sim.run(until=30.0)
    assert results[0].latency is not None
    assert results[0].latency > 0.25  # the LB hop is on the path


def test_spec_describe_strings():
    from repro.core.experiments import DDOS_EXPERIMENTS

    text = DDOS_EXPERIMENTS["D"].describe()
    assert "one NS" in text
    assert "50%" in text
