"""FSM port differential: replay vs pre-refactor goldens.

``tests/goldens/fsm_port.json`` was captured immediately *before* the
resolver lifecycle moved onto the table-driven machines (DESIGN.md
§14). These tests replay the identical experiment batteries on the
ported code and require digest-identical output — answer streams and
authoritative query logs are compared as sha256 digests over every
timestamped observation, so even a one-packet or one-microsecond drift
fails. Regenerate the goldens (``scripts/capture_fsm_goldens.py``) only
when a behavior change is intentional.
"""

import json
import pathlib
import sys

import pytest

SCRIPTS = pathlib.Path(__file__).resolve().parents[1] / "scripts"
GOLDENS = (
    pathlib.Path(__file__).resolve().parent / "goldens" / "fsm_port.json"
)


@pytest.fixture(scope="module")
def capture_module():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import capture_fsm_goldens

        yield capture_fsm_goldens
    finally:
        sys.path.remove(str(SCRIPTS))


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDENS.read_text())


def canonical(value):
    """JSON round-trip so int dict keys compare equal to the stored
    (string-keyed) golden."""
    return json.loads(json.dumps(value, sort_keys=True))


def test_ddos_batteries_byte_identical(capture_module, golden):
    for key, probes, seed in (
        ("H", 24, 42),
        ("A", 16, 7),
        ("I", 16, 42),
    ):
        name = f"ddos_{key}_p{probes}_s{seed}"
        replay = canonical(capture_module.capture_ddos(key, probes, seed))
        assert replay == golden[name], f"{name} diverged from golden"


def test_baseline_battery_byte_identical(capture_module, golden):
    replay = canonical(capture_module.capture_baseline("3600", 24, 42))
    assert replay == golden["baseline_3600_p24_s42"]


def test_software_study_byte_identical(capture_module, golden):
    """BIND/Unbound query counts — the §6 calibration surface itself."""
    replay = canonical(capture_module.capture_software())
    assert replay == golden["software"]


def test_glue_experiment_byte_identical(capture_module, golden):
    replay = canonical(capture_module.capture_glue())
    assert replay == golden["glue"]
