"""Integration-grade unit tests for the iterative recursive resolver."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import Rcode, RRType
from repro.netem.attack import AttackWindow
from repro.resolvers.cache import CacheConfig
from repro.resolvers.recursive import Outcome, RecursiveResolver, ResolverConfig
from repro.resolvers.retry import bind_profile, unbound_profile

QNAME = Name.from_text("1414.cachetest.nl.")
ZONE = Name.from_text("cachetest.nl.")


def make_resolver(world, config=None, address="100.64.0.1"):
    return RecursiveResolver(
        world.sim,
        world.network,
        address,
        world.root_hints,
        config=config,
        name="test-resolver",
    )


def resolve(world, resolver, qname=QNAME, qtype=RRType.AAAA, run_for=60.0):
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, qname, qtype, outcomes.append)
    world.sim.run(until=world.sim.now + run_for)
    assert outcomes, "resolution never completed"
    return outcomes[0]


def test_full_iteration_from_root(world):
    resolver = make_resolver(world)
    outcome = resolve(world, resolver)
    assert outcome.is_success
    serial, probe_id, ttl = outcome.records[0].rdata.fields()
    assert probe_id == 1414
    assert ttl == world.zone_ttl
    # The walk hit root, TLD, and one target server.
    assert len(world.parent_log) >= 2
    assert len(world.query_log) >= 1


def test_second_query_served_from_cache(world):
    resolver = make_resolver(world)
    resolve(world, resolver)
    upstream_before = resolver.upstream_queries
    outcome = resolve(world, resolver)
    assert outcome.is_success
    assert outcome.from_cache
    assert resolver.upstream_queries == upstream_before


def test_cached_answer_ttl_decrements(world):
    resolver = make_resolver(world)
    first = resolve(world, resolver)
    world.sim.run(until=world.sim.now + 100.0)
    second = resolve(world, resolver)
    assert second.from_cache
    assert second.records[0].ttl <= first.records[0].ttl - 100


def test_nodata_negative_cached(world):
    resolver = make_resolver(world)
    # Probe names exist but have no A records (AAAA-only instrumentation).
    outcome = resolve(world, resolver, qtype=RRType.A)
    assert outcome.status == Outcome.NODATA
    upstream_before = resolver.upstream_queries
    again = resolve(world, resolver, qtype=RRType.A)
    assert again.status == Outcome.NODATA
    assert again.from_cache
    assert resolver.upstream_queries == upstream_before


def test_nxdomain(world):
    resolver = make_resolver(world)
    outcome = resolve(world, resolver, qname=Name.from_text("bogus.cachetest.nl."))
    assert outcome.status == Outcome.NXDOMAIN
    assert outcome.rcode == Rcode.NXDOMAIN


def test_inflight_queries_coalesce(world):
    resolver = make_resolver(world)
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.call_later(0.001, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=30.0)
    assert len(outcomes) == 2
    # Only one AAAA-for-PID query reached the authoritatives.
    pid_queries = [
        entry for entry in world.query_log.entries if entry.qname == QNAME
    ]
    assert len(pid_queries) == 1


def test_servfail_when_target_zone_dead(world):
    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 1e6, 1.0))
    resolver = make_resolver(world)
    outcome = resolve(world, resolver, run_for=120.0)
    assert outcome.status == Outcome.SERVFAIL
    assert resolver.upstream_timeouts > 0


def test_retries_spread_across_both_servers(world):
    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 1e6, 1.0))
    resolver = make_resolver(world, config=ResolverConfig(retry=bind_profile()))
    resolve(world, resolver, run_for=120.0)
    offered_servers = set()
    # Delivered log is empty (100% drop): check the resolver's counters.
    assert resolver.upstream_timeouts >= 4


def test_requery_parent_on_failure_hits_parents_again(world):
    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 1e6, 1.0))
    config = ResolverConfig(retry=bind_profile())
    assert config.retry.requery_parent_on_failure
    resolver = make_resolver(world, config=config)
    resolve(world, resolver, run_for=120.0)
    # Parents see the initial walk plus the post-failure re-query.
    tld_queries = [
        entry
        for entry in world.parent_log.entries
        if entry.server == "tld" and entry.qname == QNAME
    ]
    assert len(tld_queries) >= 2


def test_unbound_chases_aaaa_for_ns(world):
    config = ResolverConfig(retry=unbound_profile())
    config.chase_ns_aaaa = True
    resolver = make_resolver(world, config=config)
    resolve(world, resolver)
    world.sim.run(until=world.sim.now + 10.0)
    aaaa_ns = [
        entry
        for entry in world.query_log.entries
        if entry.qtype == RRType.AAAA
        and entry.qname in (
            Name.from_text("ns1.cachetest.nl."),
            Name.from_text("ns2.cachetest.nl."),
        )
    ]
    assert len(aaaa_ns) == 2


def test_requery_delegation_validates_glue(world):
    config = ResolverConfig(retry=unbound_profile())
    config.requery_delegation = True
    resolver = make_resolver(world, config=config)
    resolve(world, resolver)
    world.sim.run(until=world.sim.now + 10.0)
    ns_queries = [
        entry
        for entry in world.query_log.entries
        if entry.qtype == RRType.NS and entry.qname == ZONE
    ]
    assert len(ns_queries) == 1
    # The cached NS entry is now authoritative (child's answer).
    entry = resolver.cache.peek(ZONE, RRType.NS)
    assert entry is not None and entry.authoritative


def test_ns_query_answered_with_child_ttl_by_default(world):
    resolver = make_resolver(world)
    outcome = resolve(world, resolver, qname=ZONE, qtype=RRType.NS)
    assert outcome.is_success
    # Answer credibility requires the child's value (same TTL here, but
    # must be flagged authoritative in cache).
    entry = resolver.cache.peek(ZONE, RRType.NS)
    assert entry.authoritative


def test_serve_glue_answers_config(world):
    config = ResolverConfig()
    config.serve_glue_answers = True
    resolver = make_resolver(world, config=config)
    # Warm the delegation via a probe-name query.
    resolve(world, resolver)
    queries_before = resolver.upstream_queries
    outcome = resolve(world, resolver, qname=ZONE, qtype=RRType.NS)
    assert outcome.is_success
    assert outcome.from_cache  # straight from the referral-cached NS
    assert resolver.upstream_queries == queries_before


def test_serve_stale_after_expiry_during_outage(world):
    config = ResolverConfig(cache=CacheConfig(stale_window=3600.0))
    config.serve_stale = True
    resolver = make_resolver(world, config=config)
    first = resolve(world, resolver)
    assert first.is_success
    # Zone dies; cache expires.
    world.attacks.add(
        AttackWindow(world.target_addresses, world.sim.now, 1e6, 1.0)
    )
    world.sim.run(until=world.sim.now + world.zone_ttl + 10.0)
    stale = resolve(world, resolver, run_for=60.0)
    assert stale.is_success
    assert stale.stale
    assert stale.records[0].ttl == 0


def test_no_stale_without_config(world):
    resolver = make_resolver(world)
    resolve(world, resolver)
    world.attacks.add(
        AttackWindow(world.target_addresses, world.sim.now, 1e6, 1.0)
    )
    world.sim.run(until=world.sim.now + world.zone_ttl + 10.0)
    outcome = resolve(world, resolver, run_for=60.0)
    assert outcome.status == Outcome.SERVFAIL


def test_negative_ttl_respected(short_ttl_world):
    world = short_ttl_world
    resolver = make_resolver(world)
    resolve(world, resolver, qtype=RRType.A)  # NODATA, negative TTL 60
    upstream_before = resolver.upstream_queries
    world.sim.run(until=world.sim.now + 61.0)
    outcome = resolve(world, resolver, qtype=RRType.A)
    assert outcome.status == Outcome.NODATA
    assert not outcome.from_cache  # re-fetched after negative TTL expired
    assert resolver.upstream_queries > upstream_before


def test_expired_ns_triggers_new_referral_walk(short_ttl_world):
    world = short_ttl_world  # zone TTL 60 everywhere
    resolver = make_resolver(world)
    resolve(world, resolver)
    parent_before = len(world.parent_log)
    world.sim.run(until=world.sim.now + 120.0)
    resolve(world, resolver)
    assert len(world.parent_log) > parent_before


def test_client_query_via_network(world):
    from repro.resolvers.stub import StubAnswer, StubResolver

    resolver = make_resolver(world)
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1414, [resolver.address], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert results[0].status == StubAnswer.OK
    assert results[0].serial == 1


def test_resolver_requires_root_hints(world):
    with pytest.raises(ValueError):
        RecursiveResolver(world.sim, world.network, "100.64.0.9", [])


def test_stats_accounting(world):
    resolver = make_resolver(world)
    resolve(world, resolver)
    stats = resolver.stats()
    assert stats["upstream_queries"] == stats["upstream_responses"]
    assert stats["upstream_timeouts"] == 0
    assert stats["cache"]["entries"] > 0
