"""Unit tests for the table-driven state-machine substrate."""

import pytest

from repro.fsm import (
    CompiledMachine,
    Machine,
    MachineError,
    State,
    StuckMachineError,
    Transition,
)


class Ctx:
    """A minimal driven context: state slot, payload slot, a log."""

    def __init__(self):
        self.fsm_state = None
        self.event_payload = None
        self.log = []
        self.armed = False


def toy_machine(**overrides):
    """A small machine exercising guards, ordering, and terminals.

    IDLE --go [armed]--> RUN   (first row: guarded)
    IDLE --go----------> DONE  (fallback: unguarded)
    RUN  --go----------> RUN   (self-loop, emits a query)
    RUN  --stop--------> DONE
    """
    spec = dict(
        name="toy",
        start="IDLE",
        states=(State("IDLE"), State("RUN"), State("DONE", terminal=True)),
        events=("go", "stop"),
        transitions=(
            Transition("IDLE", "go", "RUN", guard="armed", action="note"),
            Transition("IDLE", "go", "DONE", action="note"),
            Transition("RUN", "go", "RUN", action="note", sends=1, bound="b"),
            Transition("RUN", "stop", "DONE", action="note"),
        ),
        guards={"armed": lambda ctx: ctx.armed},
        actions={
            "note": lambda ctx: ctx.log.append(
                (ctx.fsm_state, ctx.event_payload)
            )
        },
    )
    spec.update(overrides)
    return Machine(**spec)


def test_begin_places_context_in_start_state():
    ctx = Ctx()
    toy_machine().compile().begin(ctx)
    assert ctx.fsm_state == "IDLE"


def test_first_matching_row_fires_in_table_order():
    compiled = toy_machine().compile()

    armed = Ctx()
    compiled.begin(armed)
    armed.armed = True
    row = compiled.dispatch(armed, "go")
    assert armed.fsm_state == "RUN"
    assert row.guard == "armed"

    unarmed = Ctx()
    compiled.begin(unarmed)
    row = compiled.dispatch(unarmed, "go")
    assert unarmed.fsm_state == "DONE"
    assert row.guard is None


def test_target_committed_before_action_runs():
    # Actions observe the *new* state, so they may re-dispatch.
    ctx = Ctx()
    compiled = toy_machine().compile()
    compiled.begin(ctx)
    compiled.dispatch(ctx, "go")
    assert ctx.log == [("DONE", None)]


def test_terminal_dispatch_is_a_noop():
    ctx = Ctx()
    compiled = toy_machine().compile()
    compiled.begin(ctx)
    compiled.dispatch(ctx, "go")  # IDLE -> DONE
    assert compiled.dispatch(ctx, "go") is None
    assert compiled.dispatch(ctx, "stop") is None
    assert ctx.log == [("DONE", None)]


def test_unmodeled_event_raises_stuck():
    ctx = Ctx()
    compiled = toy_machine().compile()
    compiled.begin(ctx)
    with pytest.raises(StuckMachineError) as err:
        compiled.dispatch(ctx, "stop")  # no (IDLE, stop) row
    assert "IDLE" in str(err.value) and "stop" in str(err.value)


def test_ignores_entry_makes_dispatch_a_noop():
    machine = toy_machine(ignores=frozenset({("IDLE", "stop")}))
    ctx = Ctx()
    compiled = machine.compile()
    compiled.begin(ctx)
    assert compiled.dispatch(ctx, "stop") is None
    assert ctx.fsm_state == "IDLE"


def test_all_guards_failing_falls_through_to_ignores():
    machine = toy_machine(
        transitions=(
            Transition("IDLE", "go", "RUN", guard="armed"),
            Transition("RUN", "go", "RUN"),
            Transition("RUN", "stop", "DONE"),
        ),
        ignores=frozenset({("IDLE", "go"), ("IDLE", "stop")}),
    )
    ctx = Ctx()
    compiled = machine.compile()
    compiled.begin(ctx)
    assert compiled.dispatch(ctx, "go") is None  # guard fails, ignored
    assert ctx.fsm_state == "IDLE"


def test_payload_visible_to_action_and_restored_after():
    ctx = Ctx()
    compiled = toy_machine().compile()
    compiled.begin(ctx)
    ctx.armed = True
    compiled.dispatch(ctx, "go", payload="outer")
    assert ctx.log == [("RUN", "outer")]
    assert ctx.event_payload is None


def test_nested_dispatch_restores_outer_payload():
    holder = {}

    def chain(ctx):
        ctx.log.append(("outer-sees", ctx.event_payload))
        holder["compiled"].dispatch(ctx, "stop", payload="inner")
        ctx.log.append(("outer-restored", ctx.event_payload))

    machine = toy_machine(
        actions={
            "note": lambda ctx: ctx.log.append((ctx.fsm_state, ctx.event_payload)),
            "chain": chain,
        },
        transitions=(
            Transition("IDLE", "go", "RUN", action="chain"),
            Transition("RUN", "go", "RUN"),
            Transition("RUN", "stop", "DONE", action="note"),
        ),
    )
    compiled = holder["compiled"] = machine.compile()
    ctx = Ctx()
    compiled.begin(ctx)
    compiled.dispatch(ctx, "go", payload="outer")
    assert ctx.log == [
        ("outer-sees", "outer"),
        ("DONE", "inner"),
        ("outer-restored", "outer"),
    ]
    assert ctx.fsm_state == "DONE"


def test_structural_errors_reported_and_compile_refuses():
    machine = toy_machine(
        transitions=(
            Transition("IDLE", "go", "NOWHERE"),
            Transition("IDLE", "boom", "DONE"),
            Transition("IDLE", "stop", "DONE", guard="ghost", action="gone"),
        )
    )
    errors = machine.structural_errors()
    assert any("unknown target state" in e for e in errors)
    assert any("unknown event" in e for e in errors)
    assert any("unbound guard `ghost`" in e for e in errors)
    assert any("unbound action `gone`" in e for e in errors)
    with pytest.raises(MachineError):
        machine.compile()


def test_row_label_and_rows_lookup():
    machine = toy_machine()
    row = machine.rows("IDLE", "go")[0]
    assert row.label() == "go [armed] / note"
    assert len(machine.rows("IDLE", "go")) == 2
    assert machine.rows("DONE", "go") == ()


def test_shipped_machines_compile():
    from repro.fsm.forwarding import COMPILED_FORWARDING, FORWARDING_MACHINE
    from repro.fsm.resolution import COMPILED_RESOLUTION, RESOLUTION_MACHINE

    assert RESOLUTION_MACHINE.structural_errors() == []
    assert FORWARDING_MACHINE.structural_errors() == []
    assert isinstance(COMPILED_RESOLUTION, CompiledMachine)
    assert isinstance(COMPILED_FORWARDING, CompiledMachine)
