"""Tests for secondary zone replication (SOA refresh/retry/expire)."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.records import SOA, A
from repro.dnscore.rrtypes import RRType
from repro.dnscore.zone import LookupStatus, Zone
from repro.servers.secondary import ZoneReplica
from repro.simcore.simulator import Simulator

ORIGIN = Name.from_text("example.nl.")


def make_primary(refresh=100, retry=20, expire=1000) -> Zone:
    soa = SOA(
        Name.from_text("ns1.example.nl."),
        Name.from_text("hostmaster.example.nl."),
        1,
        refresh=refresh,
        retry=retry,
        expire=expire,
        minimum=60,
    )
    zone = Zone(ORIGIN, soa)
    zone.add(Name.from_text("www.example.nl."), 300, A("192.0.2.1"))
    return zone


def test_initial_snapshot_serves_primary_content():
    sim = Simulator()
    primary = make_primary()
    replica = ZoneReplica(sim, primary)
    result = replica.lookup(Name.from_text("www.example.nl."), RRType.A)
    assert result is not None
    assert result.status == LookupStatus.ANSWER
    assert replica.serial == 1


def test_refresh_copies_new_serial():
    sim = Simulator()
    primary = make_primary(refresh=100)
    replica = ZoneReplica(sim, primary)
    replica.start(duration=500.0)
    # Primary changes at t=50: new record + serial bump.
    def update():
        primary.add(Name.from_text("new.example.nl."), 300, A("192.0.2.9"))
        primary.set_serial(2)

    sim.at(50.0, update)
    sim.run(until=120.0)  # one refresh at t=100
    assert replica.serial == 2
    assert replica.transfers == 1
    result = replica.lookup(Name.from_text("new.example.nl."), RRType.A)
    assert result.status == LookupStatus.ANSWER


def test_replica_lags_behind_primary_until_refresh():
    sim = Simulator()
    primary = make_primary(refresh=100)
    replica = ZoneReplica(sim, primary)
    replica.start(duration=500.0)
    sim.at(10.0, primary.set_serial, 5)
    sim.run(until=50.0)  # before the first refresh
    assert replica.serial == 1  # still the old snapshot
    sim.run(until=120.0)
    assert replica.serial == 5


def test_unreachable_primary_serves_stale_until_expire():
    sim = Simulator()
    primary = make_primary(refresh=100, retry=20, expire=300)
    reachable = {"up": False}
    replica = ZoneReplica(sim, primary, reachable=lambda: reachable["up"])
    replica.start(duration=1000.0)
    sim.run(until=250.0)
    # Within expire: still serving the old data.
    assert not replica.expired
    assert replica.lookup(Name.from_text("www.example.nl."), RRType.A) is not None
    assert replica.failed_checks > 0
    sim.run(until=400.0)
    # Past expire: the zone is discarded.
    assert replica.expired
    assert replica.lookup(Name.from_text("www.example.nl."), RRType.A) is None


def test_recovered_primary_revives_replica():
    sim = Simulator()
    primary = make_primary(refresh=100, retry=20, expire=300)
    reachable = {"up": False}
    replica = ZoneReplica(sim, primary, reachable=lambda: reachable["up"])
    replica.start(duration=2000.0)
    sim.at(350.0, primary.set_serial, 7)
    sim.run(until=340.0)
    assert replica.expired
    reachable["up"] = True
    sim.run(until=500.0)  # retry cadence picks it back up
    assert not replica.expired
    assert replica.serial == 7


def test_retry_cadence_faster_than_refresh():
    sim = Simulator()
    primary = make_primary(refresh=500, retry=50, expire=10_000)
    reachable = {"up": False}
    replica = ZoneReplica(sim, primary, reachable=lambda: reachable["up"])
    replica.start(duration=2000.0)
    sim.run(until=1200.0)
    # First check at refresh (500), then retries every 50: many failures.
    assert replica.failed_checks >= 10


def test_double_start_rejected():
    sim = Simulator()
    replica = ZoneReplica(sim, make_primary())
    replica.start(100.0)
    with pytest.raises(RuntimeError):
        replica.start(100.0)


def test_secondary_server_wrapper(world):
    from repro.dnscore.message import make_query
    from repro.dnscore.rrtypes import Rcode
    from repro.servers.authoritative import AuthoritativeServer
    from repro.servers.secondary import SecondaryAuthoritativeServer

    primary = make_primary(refresh=100, retry=20, expire=200)
    server = AuthoritativeServer(
        world.sim, world.network, "192.0.3.1", [primary], name="secondary"
    )
    reachable = {"up": True}
    replica = ZoneReplica(world.sim, primary, reachable=lambda: reachable["up"])
    SecondaryAuthoritativeServer(server, replica)
    replica.start(duration=2000.0)

    received = []
    world.network.register("10.0.0.70", received.append)
    qname = Name.from_text("www.example.nl.")
    world.network.send("10.0.0.70", "192.0.3.1", make_query(qname, RRType.A))
    world.sim.run(until=5.0)
    assert received[0].message.rcode == Rcode.NOERROR
    assert received[0].message.answers

    # Primary dies; after expire the secondary refuses.
    reachable["up"] = False
    world.sim.run(until=400.0)
    world.network.send("10.0.0.70", "192.0.3.1", make_query(qname, RRType.A))
    world.sim.run(until=world.sim.now + 5.0)
    assert received[1].message.rcode == Rcode.REFUSED
    assert not received[1].message.answers


def test_replica_wired_to_attack_schedule(world):
    """The reachability hook composed with the attack schedule: a DDoS on
    the primary blocks transfers; the secondary bridges the outage until
    expire (RFC 2182's resilience contribution)."""
    from repro.netem.attack import AttackWindow

    primary = make_primary(refresh=60, retry=15, expire=240)

    def primary_reachable() -> bool:
        return world.attacks.inbound_loss(world.AT1, world.sim.now) < 1.0

    replica = ZoneReplica(world.sim, primary, reachable=primary_reachable)
    replica.start(duration=1000.0)
    # Attack the primary's address from t=100 to t=500.
    world.attacks.add(AttackWindow([world.AT1], 100.0, 500.0, 1.0))
    world.sim.at(50.0, primary.set_serial, 2)

    world.sim.run(until=90.0)
    assert replica.serial == 2  # synced before the attack

    world.sim.run(until=300.0)  # mid-attack, within expire
    assert not replica.expired
    assert replica.lookup(Name.from_text("www.example.nl."), RRType.A) is not None

    world.sim.run(until=360.0)  # attack ongoing, expire exceeded
    assert replica.expired

    world.sim.run(until=600.0)  # attack over: replica revives
    assert not replica.expired
