"""Integration tests for the Appendix F single-probe case study."""

import pytest

from repro.core.experiments.probe_case import run_probe_case


@pytest.fixture(scope="module")
def result():
    return run_probe_case(seed=11, rounds=10, attack_rounds=(4, 8))


def test_topology_is_figure_17(result):
    assert len(result.r1_addresses) == 3
    assert len(result.rn_addresses) == 8
    assert len(result.at_addresses) == 2


def test_normal_rounds_three_for_three(result):
    normal = [row for row in result.rows if not row.during_attack]
    assert normal, "no normal rounds"
    for row in normal:
        assert row.client_queries == 3
        # Paper Table 7: normal operation answers everything via 3 R1s,
        # with 3-6 queries at the authoritatives.
        assert row.client_answers == 3
        assert row.client_r1_count == 3
        assert 3 <= row.auth_queries <= 8


def test_attack_rounds_amplify_auth_queries(result):
    attack = [row for row in result.rows if row.during_attack]
    normal = [row for row in result.rows if not row.during_attack]
    mean_attack = sum(row.auth_queries for row in attack) / len(attack)
    mean_normal = sum(row.auth_queries for row in normal) / len(normal)
    # Paper: 3–6 queries normal vs 11–29 during the attack.
    assert mean_attack > mean_normal * 3


def test_client_still_mostly_served_during_attack(result):
    attack = [row for row in result.rows if row.during_attack]
    served = sum(row.client_answers for row in attack)
    offered = sum(row.client_queries for row in attack)
    # Paper: 2 of 3 queries still answered at 90% loss.
    assert served / offered > 0.4


def test_more_rn_used_during_attack(result):
    attack = [row for row in result.rows if row.during_attack]
    normal = [row for row in result.rows if not row.during_attack]
    mean_attack_rn = sum(row.rn_count for row in attack) / len(attack)
    mean_normal_rn = sum(row.rn_count for row in normal) / len(normal)
    assert mean_attack_rn > mean_normal_rn


def test_top2_dominate_during_attack(result):
    for row in result.rows:
        if row.during_attack and row.auth_queries > 6:
            top_share = sum(row.top2_queries) / row.auth_queries
            assert top_share > 0.3
            break
    else:
        pytest.skip("no heavy attack round in this small run")


def test_amplification_summary(result):
    summary = result.amplification_summary()
    assert summary["attack_queries_per_client_query"] > (
        summary["normal_queries_per_client_query"] * 3
    )


def test_rn_at_pairs_bounded(result):
    for row in result.rows:
        assert row.rn_at_pairs <= row.rn_count * row.at_count
        assert row.at_count <= 2
        assert row.rn_count <= 8
