"""Unit tests for the RFC 1035 master-file parser/serializer."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.records import AAAA, CNAME, DS, NS, TXT, A
from repro.dnscore.rrtypes import RRType
from repro.dnscore.zone import LookupStatus
from repro.dnscore.zonefile import (
    ZoneFileError,
    parse_zone_text,
    zone_to_text,
)

SAMPLE = """
$ORIGIN cachetest.nl.
$TTL 3600
@       IN SOA ns1 hostmaster ( 2018052201 7200 3600 1209600 60 )
        IN NS  ns1
        IN NS  ns2
ns1     IN A   192.0.2.1
ns2     IN A   192.0.2.2
www 300 IN CNAME web
web     IN AAAA 2001:db8::80
text    IN TXT "hello world" "second"
sub     IN NS  ns1.sub
ns1.sub IN A   192.0.2.53
"""


@pytest.fixture
def zone():
    return parse_zone_text(SAMPLE)


def test_origin_and_soa(zone):
    assert zone.origin == Name.from_text("cachetest.nl.")
    assert zone.serial == 2018052201
    assert zone.soa_record.rdata.minimum == 60


def test_apex_ns_records(zone):
    result = zone.lookup(zone.origin, RRType.NS)
    assert result.status == LookupStatus.ANSWER
    targets = {str(record.rdata.target) for record in result.answers}
    assert targets == {"ns1.cachetest.nl.", "ns2.cachetest.nl."}
    assert all(record.ttl == 3600 for record in result.answers)


def test_relative_and_absolute_names(zone):
    result = zone.lookup(Name.from_text("ns1.cachetest.nl."), RRType.A)
    assert result.answers[0].rdata.address == "192.0.2.1"


def test_per_record_ttl_override(zone):
    result = zone.lookup(Name.from_text("www.cachetest.nl."), RRType.CNAME)
    assert result.answers[0].ttl == 300
    assert isinstance(result.answers[0].rdata, CNAME)


def test_aaaa_record(zone):
    result = zone.lookup(Name.from_text("web.cachetest.nl."), RRType.AAAA)
    assert result.answers[0].rdata.address == "2001:db8::80"


def test_txt_quoted_strings(zone):
    result = zone.lookup(Name.from_text("text.cachetest.nl."), RRType.TXT)
    assert result.answers[0].rdata.strings == ("hello world", "second")


def test_delegation_parsed(zone):
    result = zone.lookup(Name.from_text("x.sub.cachetest.nl."), RRType.A)
    assert result.status == LookupStatus.REFERRAL


def test_owner_inheritance_for_blank_fields(zone):
    # The two NS lines inherit "@".
    assert Name.from_text("cachetest.nl.") == zone.origin


def test_ttl_unit_suffixes():
    zone = parse_zone_text(
        """
$ORIGIN t.
@ 1d IN SOA ns hostmaster ( 1 2h 30m 1w 60s )
ns 1h IN A 192.0.2.1
"""
    )
    assert zone.soa_record.ttl == 86400
    assert zone.soa_record.rdata.refresh == 7200
    assert zone.soa_record.rdata.retry == 1800
    assert zone.soa_record.rdata.expire == 604800
    record = zone.get(Name.from_text("ns.t."), RRType.A)[0]
    assert record.ttl == 3600


def test_ds_record_hex():
    zone = parse_zone_text(
        """
$ORIGIN t.
$TTL 60
@ IN SOA ns hostmaster ( 1 2 3 4 5 )
child IN NS ns.child
child IN DS 12345 8 2 0123456789abcdef
"""
    )
    result = zone.lookup(Name.from_text("child.t."), RRType.DS)
    ds = result.answers[0].rdata
    assert isinstance(ds, DS)
    assert ds.key_tag == 12345
    assert ds.digest == bytes.fromhex("0123456789abcdef")


def test_comments_ignored():
    zone = parse_zone_text(
        """
; leading comment
$ORIGIN t.   ; trailing comment
$TTL 60
@ IN SOA ns hostmaster ( 1 2 3 4 5 ) ; comment inside
ns IN A 192.0.2.1 ; another
"""
    )
    assert zone.get(Name.from_text("ns.t."), RRType.A)


def test_errors_carry_line_numbers():
    with pytest.raises(ZoneFileError) as error:
        parse_zone_text("$ORIGIN t.\n$TTL 60\nbad IN A not-an-ip\n")
    assert error.value.line_number == 3


def test_missing_soa_rejected():
    with pytest.raises(ZoneFileError, match="no SOA"):
        parse_zone_text("$ORIGIN t.\n$TTL 60\nns IN A 192.0.2.1\n")


def test_duplicate_soa_rejected():
    with pytest.raises(ZoneFileError, match="duplicate SOA"):
        parse_zone_text(
            "$ORIGIN t.\n$TTL 60\n"
            "@ IN SOA ns h ( 1 2 3 4 5 )\n"
            "@ IN SOA ns h ( 2 2 3 4 5 )\n"
        )


def test_relative_name_without_origin_rejected():
    with pytest.raises(ZoneFileError, match="without \\$ORIGIN"):
        parse_zone_text("www IN A 192.0.2.1\n")


def test_missing_ttl_rejected():
    with pytest.raises(ZoneFileError, match="no TTL"):
        parse_zone_text("$ORIGIN t.\n@ IN SOA ns h ( 1 2 3 4 5 )\nns IN A 192.0.2.1\n")


def test_unterminated_quote_rejected():
    with pytest.raises(ZoneFileError, match="unterminated"):
        parse_zone_text('$ORIGIN t.\n$TTL 60\n@ IN TXT "oops\n')


def test_unbalanced_parens_rejected():
    with pytest.raises(ZoneFileError, match="unbalanced"):
        parse_zone_text("$ORIGIN t.\n$TTL 60\n@ IN SOA ns h ( 1 2 3 4 5\n")


def test_unsupported_type_rejected():
    with pytest.raises(ZoneFileError, match="unsupported record type"):
        parse_zone_text("$ORIGIN t.\n$TTL 60\n@ IN SOA ns h (1 2 3 4 5)\nx IN MX 10 m\n")


def test_roundtrip_through_text(zone):
    text = zone_to_text(zone)
    reparsed = parse_zone_text(text)
    assert reparsed.origin == zone.origin
    assert reparsed.serial == zone.serial
    assert {
        (str(rrset.name), str(rrset.rtype), rrset.ttl)
        for rrset in reparsed.rrsets()
    } == {
        (str(rrset.name), str(rrset.rtype), rrset.ttl)
        for rrset in zone.rrsets()
    }


def test_parsed_zone_servable(zone, world):
    """A parsed zone drops straight into an authoritative server."""
    from repro.dnscore.message import make_query
    from repro.servers.authoritative import AuthoritativeServer

    server = AuthoritativeServer(
        world.sim, world.network, "193.0.9.9", [zone], name="from-file"
    )
    received = []
    world.network.register("10.0.0.99", received.append)
    world.network.send(
        "10.0.0.99",
        "193.0.9.9",
        make_query(Name.from_text("web.cachetest.nl."), RRType.AAAA),
    )
    world.sim.run(until=1.0)
    assert received[0].message.answers[0].rdata.address == "2001:db8::80"
