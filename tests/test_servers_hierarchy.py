"""Unit tests for zone-tree construction and the probe synthesizer."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.dnscore.zone import LookupStatus
from repro.servers.hierarchy import (
    PROBE_ANSWER_PREFIX,
    ZoneSpec,
    attach_probe_synthesizer,
    build_hierarchy,
)


def build_tree():
    return build_hierarchy(
        [
            ZoneSpec(".", {"a.root-servers.test.": "193.0.0.1"}),
            ZoneSpec("nl.", {"ns1.dns.nl.": "193.0.1.1"}),
            ZoneSpec(
                "cachetest.nl.",
                {"ns1.cachetest.nl.": "192.0.2.1"},
                ns_ttl=60,
                a_ttl=60,
                delegation_ttl=3600,
                negative_ttl=60,
            ),
        ]
    )


def test_all_zones_built():
    zones = build_tree()
    assert set(zones) == {
        Name(()),
        Name.from_text("nl."),
        Name.from_text("cachetest.nl."),
    }


def test_parent_delegates_child_with_glue():
    zones = build_tree()
    nl = zones[Name.from_text("nl.")]
    result = nl.lookup(Name.from_text("x.cachetest.nl."), RRType.A)
    assert result.status == LookupStatus.REFERRAL
    assert result.authority[0].rtype == RRType.NS
    assert result.authority[0].ttl == 3600  # delegation TTL, not child's
    glue = [record for record in result.additional if record.rtype == RRType.A]
    assert glue and glue[0].ttl == 3600


def test_child_publishes_its_own_ttl():
    zones = build_tree()
    child = zones[Name.from_text("cachetest.nl.")]
    result = child.lookup(Name.from_text("cachetest.nl."), RRType.NS)
    assert result.status == LookupStatus.ANSWER
    assert result.answers[0].ttl == 60


def test_root_zone_has_no_parent_delegation_for_itself():
    zones = build_tree()
    root = zones[Name(())]
    result = root.lookup(Name.from_text("nl."), RRType.NS)
    assert result.status == LookupStatus.REFERRAL


def test_grandparent_fallback_when_intermediate_missing():
    zones = build_hierarchy(
        [
            ZoneSpec(".", {"a.root-servers.test.": "193.0.0.1"}),
            # No nl. zone: cachetest.nl delegated directly from the root.
            ZoneSpec("cachetest.nl.", {"ns1.cachetest.nl.": "192.0.2.1"}),
        ]
    )
    root = zones[Name(())]
    result = root.lookup(Name.from_text("x.cachetest.nl."), RRType.A)
    assert result.status == LookupStatus.REFERRAL


def test_duplicate_zone_rejected():
    with pytest.raises(ValueError):
        build_hierarchy([ZoneSpec("nl.", {}), ZoneSpec("nl.", {})])


def test_negative_ttl_flows_into_soa_minimum():
    zones = build_tree()
    child = zones[Name.from_text("cachetest.nl.")]
    assert child.soa_record.rdata.minimum == 60


def test_probe_synthesizer_encodes_serial_probe_ttl():
    zones = build_tree()
    child = zones[Name.from_text("cachetest.nl.")]
    attach_probe_synthesizer(child, PROBE_ANSWER_PREFIX, 3600)
    child.set_serial(5)
    result = child.lookup(Name.from_text("1414.cachetest.nl."), RRType.AAAA)
    assert result.status == LookupStatus.ANSWER
    serial, probe_id, ttl = result.answers[0].rdata.fields()
    assert (serial, probe_id, ttl) == (5, 1414, 3600)
    assert result.answers[0].ttl == 3600


def test_probe_synthesizer_negative_cases():
    zones = build_tree()
    child = zones[Name.from_text("cachetest.nl.")]
    attach_probe_synthesizer(child, PROBE_ANSWER_PREFIX, 3600)
    # Existing probe name, wrong type: NODATA.
    nodata = child.lookup(Name.from_text("1414.cachetest.nl."), RRType.A)
    assert nodata.status == LookupStatus.NODATA
    # Non-numeric label: NXDOMAIN.
    nxdomain = child.lookup(Name.from_text("bogus.cachetest.nl."), RRType.AAAA)
    assert nxdomain.status == LookupStatus.NXDOMAIN
    # Two labels deep: NXDOMAIN.
    deep = child.lookup(Name.from_text("a.1414.cachetest.nl."), RRType.AAAA)
    assert deep.status == LookupStatus.NXDOMAIN
