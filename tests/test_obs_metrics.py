"""Metrics registry units, snapshot reconciliation, and cache transport."""

import io

import pytest

from repro.core.experiments.ddos import DDOS_EXPERIMENTS
from repro.core.metrics import responses_by_round
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    ObsSpec,
    export_metrics,
    import_metrics,
)
from repro.runner import DiskCache, ddos_request, run_many


# ----------------------------------------------------------------------
# Instrument units
# ----------------------------------------------------------------------
def test_counter_and_gauge():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    assert registry.counter("c") is counter  # get-or-create

    gauge = registry.gauge("g")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    assert gauge.value == 1
    assert gauge.max_value == 2  # high-water mark survives the dec


def test_histogram_buckets():
    registry = MetricsRegistry()
    histogram = registry.histogram("h", bounds=(1, 4, 16))
    for value in (0, 1, 3, 5, 100):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.total == 109
    # bisect_left: bucket[i] counts values <= bounds[i] (0,1 -> le.1).
    assert histogram.buckets == [2, 1, 1, 1]


def test_histogram_quantiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency", bounds=(0.1, 0.5, 1.0, 5.0))
    for _ in range(90):
        histogram.observe(0.05)  # first bucket: (0, 0.1]
    for _ in range(10):
        histogram.observe(3.0)  # fourth bucket: (1.0, 5.0]

    # Empty histogram quantile is defined as 0.
    assert registry.histogram("empty", bounds=(1,)).quantile(0.5) == 0.0
    # p50 interpolates inside the first bucket (lower edge 0).
    assert 0.0 < histogram.quantile(0.50) <= 0.1
    # p95 lands mid-tail bucket; p99 approaches its upper bound.
    assert 1.0 < histogram.quantile(0.95) <= 5.0
    assert histogram.quantile(0.95) < histogram.quantile(0.99) <= 5.0
    # Overflow: mass beyond the last bound reports the last bound.
    histogram.observe(100.0)
    assert histogram.quantile(1.0) == 5.0

    # Snapshots surface the standard percentiles as flat series.
    snap = registry.snapshot(60.0, 0)
    for name in ("latency.p50", "latency.p95", "latency.p99"):
        assert name in snap.values
    assert snap.values["latency.p50"] == pytest.approx(
        histogram.quantile(0.50), abs=1e-9
    )


def test_family_and_snapshot_flattening():
    registry = MetricsRegistry()
    registry.counter("stub.queries").inc(7)
    registry.gauge("inflight").set(3)
    registry.histogram("sends", bounds=(2,)).observe(1)
    registry.family("outcome").inc(("ok", 0), 5)
    registry.register_collector("pull", lambda: {"a": 1, "b": 2})
    registry.register_collector("scalar", lambda: 9)

    snap = registry.snapshot(600.0, 0)
    assert snap.values["stub.queries"] == 7
    assert snap.values["inflight"] == 3
    assert snap.values["inflight.max"] == 3
    assert snap.values["sends.count"] == 1
    assert snap.values["sends.le.2"] == 1
    assert snap.values["sends.le.inf"] == 0
    assert snap.values["outcome.ok.0"] == 5
    assert snap.values["pull.a"] == 1 and snap.values["pull.b"] == 2
    assert snap.values["scalar"] == 9
    assert registry.snapshots == [snap]


def test_metrics_jsonl_round_trip():
    snaps = [MetricsSnapshot(600.0, 0, {"a": 1, "b.c": 2.5})]
    stream = io.StringIO()
    assert export_metrics(snaps, stream, run="ddos-H") == 1
    stream.seek(0)
    assert import_metrics(stream) == snaps


# ----------------------------------------------------------------------
# Per-round snapshots reconcile with the client-side outcome series
# ----------------------------------------------------------------------
def test_stub_outcome_metrics_match_responses_by_round():
    [result] = run_many(
        [
            ddos_request(
                DDOS_EXPERIMENTS["H"],
                probe_count=24,
                seed=5,
                obs=ObsSpec(metrics=True),
            )
        ],
        jobs=1,
    )
    snapshots = result.testbed.metric_snapshots
    rounds = int(
        DDOS_EXPERIMENTS["H"].total_duration_min
        / DDOS_EXPERIMENTS["H"].probe_interval_min
    )
    # One snapshot per round boundary plus the final post-run reading.
    assert [snap.round_index for snap in snapshots] == list(range(rounds + 1))

    final = snapshots[-1].values
    measured = {}
    for key, value in final.items():
        if key.startswith("stub.outcome."):
            _, _, outcome, round_index = key.split(".")
            measured[(int(round_index), outcome)] = value
    expected = {
        (round_index, outcome): count
        for round_index, bucket in responses_by_round(
            result.answers, DDOS_EXPERIMENTS["H"].round_seconds
        ).items()
        for outcome, count in bucket.items()
        if count
    }
    assert measured == expected

    # Total queries issued must match the per-outcome total.
    assert final["stub.queries"] == sum(measured.values())


# ----------------------------------------------------------------------
# Telemetry survives the worker boundary and the disk cache
# ----------------------------------------------------------------------
def test_metrics_survive_disk_cache_round_trip(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    request = ddos_request(
        DDOS_EXPERIMENTS["G"],
        probe_count=16,
        seed=9,
        obs=ObsSpec(trace=True, metrics=True),
    )
    [cold] = run_many([request], jobs=1, cache=cache)
    assert cache.misses == 1
    [warm] = run_many([request], jobs=1, cache=cache)
    assert cache.hits == 1

    assert warm.testbed.metric_snapshots == cold.testbed.metric_snapshots
    assert warm.testbed.spans == cold.testbed.spans
    assert len(warm.testbed.spans) > 0
    assert len(warm.testbed.metric_snapshots) > 0


def test_obs_spec_changes_the_cache_key(tmp_path):
    from repro.runner import cache_key

    plain = ddos_request(DDOS_EXPERIMENTS["G"], probe_count=16, seed=9)
    traced = ddos_request(
        DDOS_EXPERIMENTS["G"], probe_count=16, seed=9, obs=ObsSpec(trace=True)
    )
    assert cache_key(plain) != cache_key(traced)
