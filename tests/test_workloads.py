"""Unit tests for the synthetic passive-trace generators (§4)."""

import pytest

from repro.workloads.ditl import (
    DitlConfig,
    fraction_at_least,
    generate_ditl_counts,
    per_letter_cdf,
)
from repro.workloads.nl_trace import (
    NlTraceConfig,
    close_query_fraction,
    generate_nl_trace,
    interarrival_medians,
)


@pytest.fixture(scope="module")
def trace():
    return generate_nl_trace(NlTraceConfig(recursive_count=1200, seed=7))


@pytest.fixture(scope="module")
def ditl_counts():
    return generate_ditl_counts(DitlConfig(recursive_count=8000, seed=7))


def test_trace_sorted_and_bounded(trace):
    config = NlTraceConfig()
    assert all(
        earlier.time <= later.time for earlier, later in zip(trace, trace[1:])
    )
    assert all(0 <= query.time < config.duration for query in trace)
    assert all(query.qname.endswith("dns.nl.") for query in trace)


def test_close_query_fraction_near_paper(trace):
    # Paper §4.1: ~28% of queries arrive within 10 s of the previous one.
    fraction = close_query_fraction(trace)
    assert 0.15 < fraction < 0.45


def test_median_interarrival_peaks_at_ttl(trace):
    medians = interarrival_medians(trace)
    assert medians, "no qualifying recursives"
    near_ttl = sum(1 for value in medians.values() if 3400 <= value <= 3900)
    assert near_ttl / len(medians) > 0.4  # the paper's biggest peak


def test_early_refreshers_visible(trace):
    # Paper: ~22% of recursives re-ask faster than the TTL.
    medians = interarrival_medians(trace)
    early = sum(1 for value in medians.values() if value < 3400)
    assert 0.10 < early / len(medians) < 0.45


def test_min_queries_filter():
    tiny = generate_nl_trace(NlTraceConfig(recursive_count=50, seed=1))
    strict = interarrival_medians(tiny, min_queries=10**6)
    assert strict == {}


def test_ditl_majority_single_query(ditl_counts):
    totals = [sum(counts.values()) for counts in ditl_counts.values()]
    singles = sum(1 for total in totals if total == 1)
    # Paper §4.2: ~87% of recursives send exactly one query per day.
    assert 0.80 < singles / len(totals) < 0.93


def test_ditl_long_tail_exists(ditl_counts):
    totals = [sum(counts.values()) for counts in ditl_counts.values()]
    assert max(totals) > 100  # heavy tail


def test_ditl_tail_capped(ditl_counts):
    totals = [sum(counts.values()) for counts in ditl_counts.values()]
    assert max(totals) <= DitlConfig().max_count


def test_h_root_worse_than_f_root(ditl_counts):
    # Paper Figure 5: H-Root sees the most re-asking, F-Root the least.
    f_heavy = fraction_at_least(ditl_counts, "F", 5)
    h_heavy = fraction_at_least(ditl_counts, "H", 5)
    assert h_heavy > f_heavy


def test_per_letter_cdf_monotone(ditl_counts):
    cdfs = per_letter_cdf(ditl_counts)
    assert "ALL" in cdfs and "F" in cdfs and "H" in cdfs
    for series in cdfs.values():
        assert all(
            earlier <= later + 1e-12
            for earlier, later in zip(series, series[1:])
        )
        assert 0.0 <= series[0] <= 1.0


def test_cdf_all_majority_at_one(ditl_counts):
    cdfs = per_letter_cdf(ditl_counts)
    assert cdfs["ALL"][0] > 0.8  # ≥80% of recursives sent ≤1 query


def test_generators_deterministic():
    a = generate_nl_trace(NlTraceConfig(recursive_count=100, seed=3))
    b = generate_nl_trace(NlTraceConfig(recursive_count=100, seed=3))
    assert [(q.time, q.src, q.qname) for q in a] == [
        (q.time, q.src, q.qname) for q in b
    ]
    assert generate_ditl_counts(DitlConfig(recursive_count=100, seed=3)) == (
        generate_ditl_counts(DitlConfig(recursive_count=100, seed=3))
    )
