"""repro.defense: RRL invariants, capacity model, filter, pipeline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defense import (
    DefenseSpec,
    ResponseRateLimiter,
    ServiceCapacity,
    SourceFilter,
    build_defense,
)
from repro.defense.pipeline import (
    ACTION_DROP_CAPACITY,
    ACTION_DROP_FILTERED,
    ACTION_DROP_RRL,
    ACTION_SERVE,
    ACTION_SLIP,
)
from repro.defense.rrl import DROP, SEND, SLIP
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.resolvers.recursive import RecursiveResolver


# ----------------------------------------------------------------------
# RRL: the never-limits-below-the-floor invariant (property-based)
# ----------------------------------------------------------------------
@st.composite
def compliant_traffic(draw):
    """A source that never exceeds the configured rate: every gap is at
    least one refill interval (plus an epsilon against float rounding)."""
    rate = draw(st.floats(0.5, 50.0, allow_nan=False))
    burst = draw(st.floats(1.0, 100.0, allow_nan=False))
    slack = draw(
        st.lists(st.floats(0.0, 5.0, allow_nan=False), min_size=1, max_size=60)
    )
    gaps = [1.0 / rate + 1e-9 + extra for extra in slack]
    return rate, burst, gaps


@given(compliant_traffic())
@settings(max_examples=200)
def test_rrl_never_limits_a_source_below_the_floor(case):
    rate, burst, gaps = case
    rrl = ResponseRateLimiter(rate, burst=burst, slip=2)
    now = 0.0
    assert rrl.check("10.0.0.1", now) == SEND  # burst >= 1: first always
    for gap in gaps:
        now += gap
        assert rrl.check("10.0.0.1", now) == SEND


def test_rrl_limits_above_the_floor_and_slips_on_cadence():
    rrl = ResponseRateLimiter(rate=10.0, burst=2, slip=2)
    # Same instant: burst of 2 sends, then suppression with every 2nd
    # suppressed response slipped (TC) instead of dropped.
    verdicts = [rrl.check("10.0.0.1", 0.0) for _ in range(6)]
    assert verdicts == [SEND, SEND, DROP, SLIP, DROP, SLIP]


def test_rrl_slip_zero_means_pure_drop():
    rrl = ResponseRateLimiter(rate=10.0, burst=1, slip=0)
    assert rrl.check("10.0.0.1", 0.0) == SEND
    assert all(rrl.check("10.0.0.1", 0.0) == DROP for _ in range(5))


def test_rrl_aggregates_by_prefix():
    rrl = ResponseRateLimiter(rate=10.0, burst=1, slip=0, prefix_len=24)
    assert rrl.check("203.0.0.1", 0.0) == SEND
    # Different host, same /24: shares the (now empty) bucket.
    assert rrl.check("203.0.0.99", 0.0) == DROP
    # Different /24: fresh bucket.
    assert rrl.check("203.0.1.1", 0.0) == SEND
    assert rrl.tracked_prefixes() == 2


def test_rrl_prefix_len_32_tracks_exact_sources():
    rrl = ResponseRateLimiter(rate=10.0, burst=1, slip=0, prefix_len=32)
    assert rrl.check("203.0.0.1", 0.0) == SEND
    assert rrl.check("203.0.0.2", 0.0) == SEND
    assert rrl.tracked_prefixes() == 2


def test_rrl_compliant_source_recovers_after_a_burst():
    rrl = ResponseRateLimiter(rate=10.0, burst=2, slip=0)
    for _ in range(10):
        rrl.check("10.0.0.1", 0.0)  # drain well past the burst
    # One refill interval later the bucket holds a token again.
    assert rrl.check("10.0.0.1", 0.2) == SEND


# ----------------------------------------------------------------------
# Finite capacity: the emergent-loss service model
# ----------------------------------------------------------------------
def test_capacity_idle_server_serves_in_one_service_time():
    capacity = ServiceCapacity(rate=100.0, queue_limit=4)
    assert capacity.admit(0.0) == pytest.approx(0.01)
    # Second arrival at the same instant waits one service time.
    assert capacity.admit(0.0) == pytest.approx(0.02)
    assert capacity.depth(0.0) == pytest.approx(2.0)


def test_capacity_tail_drops_when_queue_full():
    capacity = ServiceCapacity(rate=100.0, queue_limit=2)
    assert capacity.admit(0.0) is not None
    assert capacity.admit(0.0) is not None
    assert capacity.admit(0.0) is None  # backlog of 2 jobs = full
    assert capacity.dropped == 1 and capacity.admitted == 2


def test_capacity_backlog_drains_with_time():
    capacity = ServiceCapacity(rate=10.0, queue_limit=8)
    for _ in range(5):
        capacity.admit(0.0)
    assert capacity.depth(0.0) == pytest.approx(5.0)
    assert capacity.depth(0.3) == pytest.approx(2.0)
    assert capacity.depth(10.0) == 0.0


@pytest.mark.parametrize("ratio,expected", [(2.0, 0.5), (4.0, 0.75), (10.0, 0.9)])
def test_capacity_emergent_loss_tracks_one_minus_c_over_r(ratio, expected):
    """Poisson flood at R = ratio x C: loss converges to ~1 - C/R."""
    rng = random.Random(7)
    capacity = ServiceCapacity(rate=100.0, queue_limit=10)
    now, total = 0.0, 20000
    served = 0
    for _ in range(total):
        now += rng.expovariate(ratio * 100.0)
        if capacity.admit(now) is not None:
            served += 1
    loss = 1.0 - served / total
    assert abs(loss - expected) < 0.03


# ----------------------------------------------------------------------
# Source filter
# ----------------------------------------------------------------------
def test_filter_perfect_detection_blocks_only_attackers():
    flt = SourceFilter(detection=1.0, fp_rate=0.0, rng=random.Random(1))
    flt.mark_attackers(["203.0.0.1", "203.0.0.2"])
    assert flt.blocked("203.0.0.1") and flt.blocked("203.0.0.2")
    assert not flt.blocked("100.64.0.1")
    assert flt.classified_count() == 3


def test_filter_verdicts_are_sticky():
    flt = SourceFilter(detection=0.5, fp_rate=0.5, rng=random.Random(3))
    flt.mark_attackers(["203.0.0.1"])
    first = [flt.blocked("203.0.0.1"), flt.blocked("100.64.0.9")]
    for _ in range(20):
        assert flt.blocked("203.0.0.1") == first[0]
        assert flt.blocked("100.64.0.9") == first[1]


def test_filter_false_positives_hit_legit_sources():
    flt = SourceFilter(detection=1.0, fp_rate=1.0, rng=random.Random(1))
    assert flt.blocked("100.64.0.1")  # fp_rate 1: every legit source


# ----------------------------------------------------------------------
# DefenseSpec validation and the pipeline
# ----------------------------------------------------------------------
def test_default_spec_is_disabled():
    spec = DefenseSpec()
    assert not spec.enabled
    assert spec.layers() == ()
    assert spec.describe() == "no defenses"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rrl_rate": 0.0},
        {"rrl_burst": 0.5},
        {"rrl_slip": -1},
        {"rrl_prefix_len": 20},
        {"filter_detection": 1.5},
        {"filter_fp": -0.1},
        {"qps_capacity": -1.0},
        {"queue_limit": 0},
    ],
)
def test_spec_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        DefenseSpec(**kwargs)


def _stack(spec):
    stack = build_defense(spec, random.Random(5))
    stack.mark_attackers(["203.0.0.1"])
    return stack


def test_pipeline_filter_runs_first():
    stack = _stack(DefenseSpec(filtering=True, filter_detection=1.0, rrl=True))
    pipeline = stack.make_pipeline()
    action, delay = pipeline.admit("203.0.0.1", "udp", 0.0)
    assert action == ACTION_DROP_FILTERED and delay == 0.0
    assert stack.stats.filtered_attack == 1 and stack.stats.filtered_legit == 0


def test_pipeline_rrl_drop_and_slip_actions():
    stack = _stack(DefenseSpec(rrl=True, rrl_rate=1.0, rrl_burst=1, rrl_slip=2))
    pipeline = stack.make_pipeline()
    assert pipeline.admit("100.64.0.1", "udp", 0.0)[0] == ACTION_SERVE
    assert pipeline.admit("100.64.0.1", "udp", 0.0)[0] == ACTION_DROP_RRL
    assert pipeline.admit("100.64.0.1", "udp", 0.0)[0] == ACTION_SLIP
    assert stack.stats.rate_limited_legit == 1
    assert stack.stats.slipped_legit == 1


def test_pipeline_tcp_is_exempt_from_rrl():
    stack = _stack(DefenseSpec(rrl=True, rrl_rate=1.0, rrl_burst=1))
    pipeline = stack.make_pipeline()
    pipeline.admit("100.64.0.1", "udp", 0.0)  # drain the bucket
    for _ in range(5):
        assert pipeline.admit("100.64.0.1", "tcp", 0.0)[0] == ACTION_SERVE


def test_pipeline_capacity_drop_action_and_stat_split():
    stack = _stack(DefenseSpec(qps_capacity=10.0, queue_limit=1))
    pipeline = stack.make_pipeline()
    assert pipeline.admit("203.0.0.1", "udp", 0.0)[0] == ACTION_SERVE
    assert pipeline.admit("100.64.0.1", "udp", 0.0)[0] == ACTION_DROP_CAPACITY
    assert stack.stats.served_attack == 1
    assert stack.stats.dropped_capacity_legit == 1


def test_pipelines_share_stats_but_not_state():
    stack = _stack(DefenseSpec(rrl=True, rrl_rate=1.0, rrl_burst=1))
    first, second = stack.make_pipeline(), stack.make_pipeline()
    assert first.admit("100.64.0.1", "udp", 0.0)[0] == ACTION_SERVE
    # Separate per-server RRL table: the other replica's bucket is full.
    assert second.admit("100.64.0.1", "udp", 0.0)[0] == ACTION_SERVE
    assert stack.stats.served_legit == 2


# ----------------------------------------------------------------------
# Defense decisions appear as spans without breaking chain completeness
# ----------------------------------------------------------------------
def test_defense_span_kinds_are_intermediate_not_terminal():
    from repro.obs.records import SPAN_KINDS, TERMINAL_KINDS

    defense_kinds = {
        "filtered",
        "rate_limited",
        "slip",
        "queued",
        "drop_capacity",
    }
    assert defense_kinds <= SPAN_KINDS
    assert not defense_kinds & TERMINAL_KINDS


def test_traced_defended_run_has_complete_span_chains():
    from repro.attackload import AttackLoadSpec
    from repro.core.experiments.ddos import DDoSSpec, run_ddos
    from repro.obs import ObsSpec, validate_span_chains

    spec = DDoSSpec(
        key="trace-def",
        ttl=60,
        ddos_start_min=5,
        ddos_duration_min=5,
        queries_before=1,
        total_duration_min=15,
        probe_interval_min=5,
        loss_fraction=0.0,
        servers="both",
    )
    result = run_ddos(
        spec,
        probe_count=8,
        seed=7,
        obs=ObsSpec(trace=True),
        attack_load=AttackLoadSpec(
            mode="direct-flood",
            attackers=2,
            qps=20.0,
            start=300.0,
            duration=300.0,
        ),
        defense=DefenseSpec(
            rrl=True,
            rrl_rate=5.0,
            rrl_slip=2,
            filtering=True,
            qps_capacity=20.0,
            queue_limit=10,
        ),
    )
    spans = result.testbed.spans
    kinds = {span.kind for span in spans}
    # The saturated window leaves defense decisions in the trace...
    assert kinds & {"queued", "drop_capacity", "rate_limited", "slip"}
    # ...and every traced query still has a complete lifecycle chain.
    chains = validate_span_chains(spans)
    assert chains


# ----------------------------------------------------------------------
# SLIP end to end: a limited legit client recovers over TCP
# ----------------------------------------------------------------------
def test_slipped_client_recovers_over_tcp(world):
    spec = DefenseSpec(rrl=True, rrl_rate=0.01, rrl_burst=1, rrl_slip=1)
    stack = build_defense(spec, random.Random(9))
    world.at1.defense = stack.make_pipeline()
    world.at2.defense = stack.make_pipeline()
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    outcomes = []
    first = Name.from_text("1414.cachetest.nl.")
    world.sim.call_later(0.0, resolver.resolve, first, RRType.AAAA, outcomes.append)
    world.sim.run(until=30.0)
    assert outcomes and outcomes[0].is_success

    # Exhaust the resolver prefix's bucket at both replicas; with the
    # tiny refill rate every subsequent UDP query is SLIP'd (slip=1).
    for server in (world.at1, world.at2):
        while server.defense.rrl.check(resolver.address, world.sim.now) == SEND:
            pass

    second = Name.from_text("1515.cachetest.nl.")
    world.sim.call_later(0.0, resolver.resolve, second, RRType.AAAA, outcomes.append)
    world.sim.run(until=60.0)
    assert len(outcomes) == 2 and outcomes[1].is_success
    # The UDP attempt was answered with a truncated SLIP and the
    # resolver completed the lookup over TCP, which RRL never limits.
    assert resolver.tcp_fallbacks >= 1
    assert world.at1.slipped_responses + world.at2.slipped_responses >= 1
    assert stack.stats.slipped_legit >= 1
    assert stack.stats.rate_limited_legit == 0  # slip=1: nothing silently dropped
