"""Query-lifecycle tracing: tracer units, span IO, and completeness."""

import io

import pytest

from repro.core.experiments.ddos import DDOS_EXPERIMENTS, run_ddos
from repro.obs import (
    ObsSpec,
    SpanEvent,
    SpanFormatError,
    export_spans,
    import_spans,
    summarize_spans,
    validate_span_chains,
)
from repro.obs.records import SPAN_ISSUE, TERMINAL_KINDS
from repro.obs.trace import Tracer
from repro.simcore.simulator import Simulator


# ----------------------------------------------------------------------
# Tracer units
# ----------------------------------------------------------------------
def test_tracer_allocates_distinct_trace_ids():
    tracer = Tracer(Simulator())
    ids = [tracer.new_trace() for _ in range(5)]
    assert len(set(ids)) == 5


def test_tracer_stamps_sim_time():
    sim = Simulator()
    tracer = Tracer(sim)
    trace_id = tracer.new_trace()
    sim.at(12.5, tracer.emit, trace_id, "issue", "stub", "p0:r0")
    sim.run()
    [span] = tracer.events
    assert span.time == 12.5
    assert span.kind == "issue"
    assert span.vp == "p0:r0"


def test_span_event_repr_and_dict():
    span = SpanEvent(7, 1.25, "answer", "stub", vp="p1:r1", detail="x")
    assert "7" in repr(span) and "answer" in repr(span)
    row = span.as_dict()
    assert row["trace_id"] == 7 and row["kind"] == "answer"
    # Empty optional fields are omitted from the JSONL row.
    assert "vp" not in SpanEvent(7, 0.0, "answer", "stub").as_dict()


# ----------------------------------------------------------------------
# Event.cancel() / trace interaction (regression: cancel-after-trace)
# ----------------------------------------------------------------------
def test_cancel_before_fire_emits_cancelled_span():
    sim = Simulator()
    tracer = Tracer(sim)
    trace_id = tracer.new_trace()
    timer = sim.call_later(10.0, lambda: None)
    timer.span = (tracer, trace_id, "resolver")
    sim.at(4.0, timer.cancel)
    sim.run()
    [span] = tracer.events
    assert span.kind == "cancelled"
    assert span.site == "resolver"
    assert span.time == 4.0


def test_cancel_after_fire_emits_nothing():
    sim = Simulator()
    tracer = Tracer(sim)
    timer = sim.call_later(1.0, lambda: None)
    timer.span = (tracer, tracer.new_trace(), "resolver")
    sim.run()
    timer.cancel()  # already fired: must stay silent
    assert tracer.events == []


def test_double_cancel_emits_one_span():
    sim = Simulator()
    tracer = Tracer(sim)
    timer = sim.call_later(1.0, lambda: None)
    timer.span = (tracer, tracer.new_trace(), "resolver")
    timer.cancel()
    timer.cancel()
    assert len(tracer.events) == 1


# ----------------------------------------------------------------------
# JSONL round-trip and schema validation
# ----------------------------------------------------------------------
def test_span_jsonl_round_trip():
    spans = [
        SpanEvent(0, 0.0, "issue", "stub", vp="p0:r0", detail="q0 AAAA"),
        SpanEvent(0, 0.2, "send", "rec0", detail="ns1"),
        SpanEvent(0, 0.4, "answer", "stub", vp="p0:r0"),
    ]
    stream = io.StringIO()
    assert export_spans(spans, stream, run="ddos-H") == 3
    stream.seek(0)
    assert import_spans(stream) == spans


def test_import_rejects_bad_rows():
    for line in (
        '{"time": 1.0, "kind": "issue", "site": "s"}',  # missing trace_id
        '{"trace_id": true, "time": 1.0, "kind": "issue", "site": "s"}',
        '{"trace_id": 1, "time": 1.0, "kind": "warp", "site": "s"}',
        "not json",
    ):
        with pytest.raises(SpanFormatError):
            import_spans(io.StringIO(line + "\n"))


def test_validate_rejects_incomplete_chains():
    issue = SpanEvent(1, 0.0, "issue", "stub")
    answer = SpanEvent(1, 1.0, "answer", "stub")
    with pytest.raises(SpanFormatError, match="orphan"):
        validate_span_chains([SpanEvent(2, 1.0, "send", "rec0")])
    with pytest.raises(SpanFormatError, match="no terminal"):
        validate_span_chains([issue])
    with pytest.raises(SpanFormatError, match="terminal"):
        validate_span_chains([issue, answer, SpanEvent(1, 2.0, "servfail", "stub")])
    assert validate_span_chains([issue, answer]) == {1: [issue, answer]}


# ----------------------------------------------------------------------
# Traced experiment: every stub query has a complete span chain
# ----------------------------------------------------------------------
def test_traced_ddos_run_has_complete_chains():
    result = run_ddos(
        DDOS_EXPERIMENTS["H"],
        probe_count=24,
        seed=5,
        obs=ObsSpec(trace=True),
    )
    spans = result.testbed.spans
    assert spans, "traced run emitted no spans"
    chains = validate_span_chains(spans)
    # One lifecycle per stub query issued.
    assert len(chains) == len(result.answers)
    for chain in chains.values():
        assert chain[0].kind == SPAN_ISSUE
        assert sum(1 for span in chain if span.kind in TERMINAL_KINDS) == 1
    # The summary renders for real traces too.
    summary = summarize_spans(spans, top_n=5)
    assert "slowest" in summary and "outcome" in summary


def test_untraced_run_emits_no_spans():
    result = run_ddos(DDOS_EXPERIMENTS["H"], probe_count=12, seed=5)
    assert result.testbed.spans == []
    assert result.testbed.metric_snapshots == []
    assert result.testbed.profile_summary() is None
