"""Unit, roundtrip, and fuzz tests for the RFC 1035 wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnscore.message import Message, Question, make_query, make_response
from repro.dnscore.name import Name
from repro.dnscore.records import (
    AAAA,
    CNAME,
    DS,
    NS,
    SOA,
    TXT,
    A,
    ResourceRecord,
)
from repro.dnscore.rrtypes import Rcode, RRType
from repro.dnscore.wire import WireError, from_wire, to_wire

ZONE = Name.from_text("cachetest.nl.")
QNAME = Name.from_text("1414.cachetest.nl.")


def roundtrip(message: Message) -> Message:
    return from_wire(to_wire(message))


def assert_messages_equal(a: Message, b: Message) -> None:
    assert a.msg_id == b.msg_id
    assert (a.qr, a.aa, a.tc, a.rd, a.ra) == (b.qr, b.aa, b.tc, b.rd, b.ra)
    assert a.rcode == b.rcode
    assert a.opcode == b.opcode
    assert a.question == b.question
    for section in ("answers", "authority", "additional"):
        assert getattr(a, section) == getattr(b, section)


def test_query_roundtrip():
    query = make_query(QNAME, RRType.AAAA)
    assert_messages_equal(query, roundtrip(query))


def test_response_with_all_rdata_types_roundtrips():
    query = make_query(QNAME, RRType.AAAA)
    response = make_response(
        query,
        aa=True,
        ra=True,
        answers=[
            ResourceRecord(QNAME, 3600, AAAA("fd0f:3897:faf7:a375::1")),
            ResourceRecord(QNAME, 60, A("192.0.2.7")),
            ResourceRecord(QNAME, 60, TXT(["hello", "world"])),
        ],
        authority=[
            ResourceRecord(ZONE, 3600, NS(Name.from_text("ns1.cachetest.nl."))),
            ResourceRecord(
                ZONE,
                86400,
                SOA(
                    Name.from_text("ns1.cachetest.nl."),
                    Name.from_text("hostmaster.cachetest.nl."),
                    2018052201,
                    7200,
                    3600,
                    1209600,
                    60,
                ),
            ),
        ],
        additional=[
            ResourceRecord(
                Name.from_text("www.cachetest.nl."),
                300,
                CNAME(Name.from_text("target.cachetest.nl.")),
            ),
            ResourceRecord(Name.from_text("nl."), 86400, DS(1, 8, 2, b"\x00" * 32)),
        ],
    )
    assert_messages_equal(response, roundtrip(response))


def test_compression_shrinks_repeated_names():
    query = make_query(QNAME, RRType.NS)
    many_ns = [
        ResourceRecord(ZONE, 3600, NS(Name.from_text(f"ns{i}.cachetest.nl.")))
        for i in range(1, 6)
    ]
    response = make_response(query, aa=True, answers=many_ns)
    wire = to_wire(response)
    # Without compression each cachetest.nl suffix costs 14 bytes; with
    # compression all but the first are 2-byte pointers.
    uncompressed_estimate = sum(
        len(str(record.name)) + len(str(record.rdata.target)) for record in many_ns
    )
    assert len(wire) < uncompressed_estimate + 40
    assert_messages_equal(response, roundtrip(response))


def test_root_name_encodes_as_single_zero():
    query = make_query(Name(()), RRType.NS)
    decoded = roundtrip(query)
    assert decoded.question.qname.is_root


def test_header_flags_roundtrip_all_combinations():
    for qr in (False, True):
        for aa in (False, True):
            for rd in (False, True):
                for ra in (False, True):
                    message = Message(
                        99,
                        Question(QNAME, RRType.A),
                        qr=qr,
                        aa=aa,
                        rd=rd,
                        ra=ra,
                        rcode=Rcode.NOERROR,
                    )
                    decoded = roundtrip(message)
                    assert (decoded.qr, decoded.aa, decoded.rd, decoded.ra) == (
                        qr,
                        aa,
                        rd,
                        ra,
                    )


def test_rcodes_roundtrip():
    query = make_query(QNAME, RRType.A)
    for rcode in Rcode:
        response = make_response(query, rcode=rcode)
        assert roundtrip(response).rcode == rcode


def test_truncated_header_rejected():
    with pytest.raises(WireError):
        from_wire(b"\x00\x01\x00")


def test_truncated_question_rejected():
    wire = to_wire(make_query(QNAME, RRType.A))
    with pytest.raises(WireError):
        from_wire(wire[:-3])


def test_forward_pointer_rejected():
    # Header + a name that points forward to itself.
    header = bytes.fromhex("000100000001000000000000")
    bogus = header + b"\xc0\x0c" + b"\x00\x01\x00\x01"
    with pytest.raises(WireError):
        from_wire(bogus)


def test_fuzz_decoder_never_hangs_or_crashes_uncontrolled():
    import random

    rng = random.Random(7)
    for _ in range(500):
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 80)))
        try:
            from_wire(blob)
        except (WireError, ValueError):
            pass  # controlled rejection is the contract


@st.composite
def messages(draw):
    label = st.text(
        alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
        min_size=1,
        max_size=10,
    )
    name = draw(st.lists(label, min_size=0, max_size=4).map(Name))
    qtype = draw(st.sampled_from([RRType.A, RRType.AAAA, RRType.NS, RRType.TXT]))
    message = make_query(name, qtype, msg_id=draw(st.integers(0, 0xFFFF)))
    if draw(st.booleans()):
        owner = name if len(name) else Name.from_text("x.test.")
        rdatas = draw(
            st.lists(
                st.one_of(
                    st.integers(0, 0xFFFFFFFF).map(
                        lambda v: A(f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}")
                    ),
                    st.text(
                        alphabet=st.sampled_from("abc "), max_size=20
                    ).map(lambda text: TXT([text])),
                ),
                min_size=1,
                max_size=3,
            )
        )
        message = make_response(
            message,
            aa=draw(st.booleans()),
            answers=[ResourceRecord(owner, draw(st.integers(0, 3600)), r) for r in rdatas],
        )
    return message


@given(messages())
@settings(max_examples=100)
def test_property_roundtrip_random_messages(message):
    assert_messages_equal(message, roundtrip(message))


@given(messages())
@settings(max_examples=100)
def test_property_upper_bound_dominates_actual_size(message):
    from repro.dnscore.wire import upper_bound_size

    assert upper_bound_size(message) >= len(to_wire(message))
