"""Unit and property tests for rdata, resource records, and RRsets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnscore.name import Name
from repro.dnscore.records import (
    AAAA,
    CNAME,
    DS,
    NS,
    SOA,
    TXT,
    A,
    ResourceRecord,
    RRset,
    first_address,
)
from repro.dnscore.rrtypes import RRType

OWNER = Name.from_text("example.nl.")


def test_a_record_accepts_valid_address():
    assert A("192.0.2.1").address == "192.0.2.1"


def test_a_record_rejects_garbage():
    with pytest.raises(ValueError):
        A("not-an-address")


def test_aaaa_normalizes():
    assert AAAA("2001:DB8::1").address == "2001:db8::1"


def test_rdata_equality_and_hash():
    assert A("192.0.2.1") == A("192.0.2.1")
    assert A("192.0.2.1") != A("192.0.2.2")
    assert hash(NS(OWNER)) == hash(NS(Name.from_text("EXAMPLE.nl.")))
    assert A("192.0.2.1") != AAAA("2001:db8::1")


def test_instrumented_aaaa_roundtrip():
    rdata = AAAA.from_fields("fd0f:3897:faf7:a375::", 7, 28477, 3600)
    assert rdata.fields() == (7, 28477, 3600)


def test_instrumented_aaaa_range_checks():
    prefix = "fd0f:3897:faf7:a375::"
    with pytest.raises(ValueError):
        AAAA.from_fields(prefix, -1, 1, 60)
    with pytest.raises(ValueError):
        AAAA.from_fields(prefix, 1, 2**20, 60)
    with pytest.raises(ValueError):
        AAAA.from_fields(prefix, 1, 1, 2**32)


@given(
    serial=st.integers(min_value=0, max_value=0xFFF),
    probe_id=st.integers(min_value=0, max_value=0xFFFFF),
    ttl=st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_property_instrumented_aaaa_roundtrip(serial, probe_id, ttl):
    rdata = AAAA.from_fields("fd0f:3897:faf7:a375::", serial, probe_id, ttl)
    assert rdata.fields() == (serial, probe_id, ttl)


def test_soa_key_includes_all_fields():
    base = SOA(OWNER, OWNER, 1)
    bumped = SOA(OWNER, OWNER, 2)
    assert base != bumped


def test_txt_chunk_length_limit():
    TXT(["x" * 255])
    with pytest.raises(ValueError):
        TXT(["x" * 256])


def test_ds_equality():
    assert DS(1, 8, 2, b"\x01\x02") == DS(1, 8, 2, b"\x01\x02")
    assert DS(1, 8, 2, b"\x01\x02") != DS(1, 8, 2, b"\x01\x03")


def test_resource_record_ttl_validation():
    with pytest.raises(ValueError):
        ResourceRecord(OWNER, -1, A("192.0.2.1"))
    with pytest.raises(ValueError):
        ResourceRecord(OWNER, 2**31, A("192.0.2.1"))


def test_with_ttl_copies():
    record = ResourceRecord(OWNER, 300, A("192.0.2.1"))
    copy = record.with_ttl(60)
    assert copy.ttl == 60
    assert record.ttl == 300
    assert copy.rdata is record.rdata


def test_record_rtype_derived_from_rdata():
    assert ResourceRecord(OWNER, 60, NS(OWNER)).rtype == RRType.NS
    assert ResourceRecord(OWNER, 60, CNAME(OWNER)).rtype == RRType.CNAME


def test_rrset_requires_uniform_key():
    a1 = ResourceRecord(OWNER, 60, A("192.0.2.1"))
    a2 = ResourceRecord(OWNER, 60, A("192.0.2.2"))
    RRset([a1, a2])
    other_name = ResourceRecord(Name.from_text("x.nl."), 60, A("192.0.2.3"))
    with pytest.raises(ValueError):
        RRset([a1, other_name])
    other_type = ResourceRecord(OWNER, 60, AAAA("2001:db8::1"))
    with pytest.raises(ValueError):
        RRset([a1, other_type])


def test_rrset_rejects_empty():
    with pytest.raises(ValueError):
        RRset([])


def test_rrset_ttl_is_minimum():
    records = [
        ResourceRecord(OWNER, 300, A("192.0.2.1")),
        ResourceRecord(OWNER, 60, A("192.0.2.2")),
    ]
    assert RRset(records).ttl == 60


def test_rrset_with_ttl_rewrites_all():
    records = [
        ResourceRecord(OWNER, 300, A("192.0.2.1")),
        ResourceRecord(OWNER, 60, A("192.0.2.2")),
    ]
    rewritten = RRset(records).with_ttl(10)
    assert all(record.ttl == 10 for record in rewritten)


def test_first_address_finds_a_and_aaaa():
    records = [
        ResourceRecord(OWNER, 60, NS(OWNER)),
        ResourceRecord(OWNER, 60, A("192.0.2.9")),
    ]
    assert first_address(records) == "192.0.2.9"
    assert first_address([records[0]]) is None
