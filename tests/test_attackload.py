"""repro.attackload: name generators, spec validation, wired floods."""

import random

import pytest

from repro.attackload import (
    MODE_DIRECT,
    MODE_NXNS,
    MODE_SUBDOMAIN,
    SPOOF_RANDOM,
    AttackLoadSpec,
)
from repro.clients.population import PopulationConfig
from repro.core.experiments.ddos import DDoSSpec, run_ddos
from repro.core.testbed import Testbed, TestbedConfig
from repro.defense import DefenseSpec
from repro.dnscore.name import Name
from repro.workloads.attacknames import (
    nxns_target_names,
    random_label,
    water_torture_name,
)

ORIGIN = Name.from_text("cachetest.nl.")


# ----------------------------------------------------------------------
# Adversarial name generators
# ----------------------------------------------------------------------
def test_random_label_is_letters_only():
    rng = random.Random(1)
    for _ in range(50):
        label = random_label(rng)
        assert label.isalpha() and label.islower()


def test_water_torture_names_are_unique_nonexistent_children():
    rng = random.Random(2)
    names = [water_torture_name(rng, ORIGIN) for _ in range(100)]
    assert len(set(names)) == 100  # cache-busting by construction
    for name in names:
        assert name.is_subdomain_of(ORIGIN) and name != ORIGIN
        assert len(name.labels) == len(ORIGIN.labels) + 1
        # Letters-only: never parses as a probe id, so the instrumented
        # zone takes the NXDOMAIN path for every one of these.
        assert name.labels[0].isalpha()


def test_nxns_targets_share_a_stem_within_one_referral():
    rng = random.Random(3)
    targets = nxns_target_names(rng, ORIGIN, fanout=5)
    assert len(targets) == 5 and len(set(targets)) == 5
    stems = {target.labels[0].rsplit("-ns", 1)[0] for target in targets}
    assert len(stems) == 1  # one stem per referral...
    for target in targets:
        assert target.is_subdomain_of(ORIGIN)
    again = nxns_target_names(rng, ORIGIN, fanout=5)
    assert not set(targets) & set(again)  # ...but none across referrals


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"mode": "teardrop"},
        {"spoof": "sometimes"},
        {"attackers": -1},
        {"qps": 0.0},
        {"duration": 0.0},
        {"start": -1.0},
        {"spoof_pool": 0},
        {"nxns_fanout": 0},
    ],
)
def test_spec_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        AttackLoadSpec(**kwargs)


def test_spec_totals_and_description():
    spec = AttackLoadSpec(attackers=4, qps=25.0, start=60.0, duration=120.0)
    assert spec.total_qps == 100.0
    assert spec.end == 180.0
    assert "direct-flood" in spec.describe()


# ----------------------------------------------------------------------
# Wired floods (small testbeds, short windows)
# ----------------------------------------------------------------------
def _attack_testbed(attack, probe_count=6):
    return Testbed(
        TestbedConfig(
            population=PopulationConfig(probe_count=probe_count),
            attack_load=attack,
        )
    )


def test_direct_flood_reaches_the_victims_from_attacker_sources():
    testbed = _attack_testbed(
        AttackLoadSpec(
            mode=MODE_DIRECT, attackers=2, qps=10.0, start=0.0, duration=30.0
        )
    )
    testbed.run(30.0)
    assert testbed.attack_stats["queries_sent"] > 0
    sources = set(testbed.attack_load.attacker_sources)
    assert len(sources) == 2
    seen = {
        entry.src
        for entry in testbed.offered_query_log.entries
        if entry.src in sources
    }
    assert seen == sources  # both attackers landed queries at the zone


def test_spoofed_flood_rotates_sources_and_blackholes_responses():
    testbed = _attack_testbed(
        AttackLoadSpec(
            mode=MODE_DIRECT,
            attackers=2,
            qps=20.0,
            start=0.0,
            duration=30.0,
            spoof=SPOOF_RANDOM,
            spoof_pool=8,
        )
    )
    testbed.run(30.0)  # responses to spoofed sources must not crash
    sources = set(testbed.attack_load.attacker_sources)
    assert len(sources) == 2 + 2 * 8
    seen = {
        entry.src
        for entry in testbed.offered_query_log.entries
        if entry.src in sources
    }
    # Rotation through the pool: far more distinct sources than attackers.
    assert len(seen) > 2


def test_subdomain_flood_arrives_via_recursives_as_cache_misses():
    testbed = _attack_testbed(
        AttackLoadSpec(
            mode=MODE_SUBDOMAIN, attackers=2, qps=5.0, start=0.0, duration=30.0
        )
    )
    testbed.run(30.0)
    assert testbed.attack_stats["queries_sent"] > 0
    torture = [
        entry
        for entry in testbed.offered_query_log.entries
        if entry.qname.is_subdomain_of(testbed.origin)
        and entry.qname != testbed.origin
        and entry.qname.labels[0].isalpha()
    ]
    assert torture  # the recursives carried the junk names to the zone
    attacker_sources = set(testbed.attack_load.attacker_sources)
    for entry in torture:
        # Hard to filter by design: the victim sees legit infrastructure.
        assert entry.src not in attacker_sources


def test_nxns_referrals_amplify_into_victim_bound_queries():
    testbed = _attack_testbed(
        AttackLoadSpec(
            mode=MODE_NXNS,
            attackers=2,
            qps=2.0,
            start=0.0,
            duration=30.0,
            nxns_fanout=4,
        )
    )
    testbed.run(30.0)
    assert testbed.attack_stats["referrals_served"] > 0
    chased = [
        entry
        for entry in testbed.offered_query_log.entries
        if "-ns" in entry.qname.labels[0]
    ]
    # One attacker query fans out into several no-glue NS resolutions.
    assert len(chased) > testbed.attack_stats["referrals_served"]


# ----------------------------------------------------------------------
# The disabled path changes nothing
# ----------------------------------------------------------------------
def test_disabled_defense_spec_wires_nothing():
    testbed = Testbed(
        TestbedConfig(
            population=PopulationConfig(probe_count=2),
            defense=DefenseSpec(),  # all layers off
        )
    )
    assert testbed.defense_stack is None
    assert testbed.attack_load is None
    assert testbed.defense_stats is None and testbed.attack_stats is None


def test_all_off_spec_is_byte_identical_to_no_spec():
    """`defense=DefenseSpec()` (nothing enabled) must leave an existing
    experiment's outputs exactly as they were — same answers, same
    offered load, same timings."""
    spec = DDoSSpec(
        key="ident",
        ttl=60,
        ddos_start_min=10,
        ddos_duration_min=10,
        queries_before=1,
        total_duration_min=30,
        probe_interval_min=10,
        loss_fraction=0.5,
        servers="both",
    )
    runs = [
        run_ddos(spec, probe_count=10, seed=11, defense=defense)
        for defense in (None, DefenseSpec())
    ]
    fingerprints = [
        [
            (a.probe_id, a.resolver, a.sent_at, a.answered_at, a.status, a.rcode)
            for a in result.answers
        ]
        for result in runs
    ]
    assert fingerprints[0] == fingerprints[1]
    logs = [
        [
            (entry.time, entry.src, entry.qname, entry.qtype, entry.server)
            for entry in result.testbed.offered_query_log.entries
        ]
        for result in runs
    ]
    assert logs[0] == logs[1]
