"""Unit tests for the stub resolver and StubAnswer accounting."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import Rcode, RRType
from repro.resolvers.recursive import RecursiveResolver
from repro.resolvers.stub import ATLAS_TIMEOUT, StubAnswer, StubResolver

QNAME = Name.from_text("1414.cachetest.nl.")


def test_stub_requires_recursives(world):
    with pytest.raises(ValueError):
        StubResolver(world.sim, world.network, "10.0.0.9", 1, [])


def test_successful_answer_parsed(world):
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1414, [resolver.address], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    answer = results[0]
    assert answer.status == StubAnswer.OK
    assert answer.probe_id == 1414
    assert answer.serial == 1
    assert answer.encoded_ttl == world.zone_ttl
    assert answer.returned_ttl == world.zone_ttl
    assert answer.latency is not None and answer.latency > 0
    assert answer.rcode == Rcode.NOERROR


def test_timeout_yields_no_answer(world):
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1, ["100.64.0.250"], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert results[0].status == StubAnswer.NO_ANSWER
    assert results[0].latency is None


def test_late_response_after_timeout_ignored(world):
    # A recursive that answers after the stub's (short) timeout.
    class SlowHost:
        def __init__(self, sim, network, address):
            self.sim = sim
            self.network = network
            self.address = address
            network.register(address, self.on_packet)

        def on_packet(self, packet):
            from repro.dnscore.message import make_response

            if packet.message.is_response:
                return
            response = make_response(packet.message, ra=True)
            self.sim.call_later(
                2.0, self.network.send, self.address, packet.src, response
            )

    SlowHost(world.sim, world.network, "100.64.0.50")
    results = []
    stub = StubResolver(
        world.sim,
        world.network,
        "10.0.0.1",
        1,
        ["100.64.0.50"],
        results,
        timeout=1.0,
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=10.0)
    assert results[0].status == StubAnswer.NO_ANSWER


def test_query_round_fans_out_to_all_recursives(world):
    resolvers = [
        RecursiveResolver(
            world.sim, world.network, f"100.64.0.{index}", world.root_hints
        )
        for index in (1, 2, 3)
    ]
    results = []
    stub = StubResolver(
        world.sim,
        world.network,
        "10.0.0.1",
        1414,
        [resolver.address for resolver in resolvers],
        results,
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert len(results) == 3
    assert {answer.resolver for answer in results} == {
        "100.64.0.1",
        "100.64.0.2",
        "100.64.0.3",
    }
    assert all(answer.status == StubAnswer.OK for answer in results)


def test_servfail_recorded(world):
    from repro.dnscore.message import make_response

    class ServfailHost:
        def __init__(self, sim, network, address):
            self.network = network
            self.address = address
            network.register(address, self.on_packet)

        def on_packet(self, packet):
            if packet.message.is_response:
                return
            self.network.send(
                self.address,
                packet.src,
                make_response(packet.message, rcode=Rcode.SERVFAIL, ra=True),
            )

    ServfailHost(world.sim, world.network, "100.64.0.66")
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1, ["100.64.0.66"], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=10.0)
    assert results[0].status == StubAnswer.SERVFAIL


def test_nxdomain_recorded(world):
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1, [resolver.address], results
    )
    bogus = Name.from_text("bogus.cachetest.nl.")
    world.sim.call_later(0.0, stub.query_round, bogus, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert results[0].status == StubAnswer.NXDOMAIN


def test_default_timeout_is_atlas_5s(world):
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1, ["100.64.0.250"]
    )
    assert stub.timeout == ATLAS_TIMEOUT == 5.0


def test_round_index_tracked(world):
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1414, [resolver.address], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.call_later(600.0, stub.query_round, QNAME, RRType.AAAA, 1)
    world.sim.run(until=700.0)
    assert [answer.round_index for answer in results] == [0, 1]
