"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["ddos", "Z"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_cli_software(capsys):
    assert main(["software"]) == 0
    output = capsys.readouterr().out
    assert "bind" in output and "unbound" in output
    assert "resolved=True" in output


def test_cli_software_attack(capsys):
    assert main(["software", "--attack"]) == 0
    output = capsys.readouterr().out
    assert "resolved=False" in output


def test_cli_ddos_small(capsys):
    assert main(["ddos", "E", "--probes", "60"]) == 0
    output = capsys.readouterr().out
    assert "failures during attack" in output
    assert "amplification" in output


def test_cli_baseline_small(capsys):
    assert main(["baseline", "60", "--probes", "60"]) == 0
    output = capsys.readouterr().out
    assert "cache-miss rate" in output
    assert "Table 3" in output


def test_cli_probe_case(capsys):
    assert main(["probe-case"]) == 0
    output = capsys.readouterr().out
    assert "queries per client query" in output


def test_cli_glue_small(capsys):
    assert main(["glue", "--probes", "80"]) == 0
    output = capsys.readouterr().out
    assert "child-TTL fraction" in output
    assert "bind cache" in output


def test_cli_export_and_analyze_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    assert main(["ddos", "E", "--probes", "50", "--export-trace", str(trace_path)]) == 0
    assert trace_path.exists()
    capsys.readouterr()
    assert main(["analyze-trace", str(trace_path), "--ttl", "1800"]) == 0
    output = capsys.readouterr().out
    assert "Trace analysis" in output
    assert "Total queries" in output


def test_cli_report_tiny(tmp_path, capsys):
    output = tmp_path / "report.md"
    assert main(
        [
            "report",
            "--baseline-probes", "60",
            "--ddos-probes", "60",
            "--output", str(output),
        ]
    ) == 0
    text = output.read_text()
    assert "# EXPERIMENTS — paper vs measured" in text
    assert "Table 3 miss attribution" in text
    assert "Figure 16" in text


def test_cli_sweep_tiny(tmp_path, capsys):
    csv_path = tmp_path / "surface.csv"
    assert main(
        [
            "sweep",
            "--losses", "0.9",
            "--ttls", "60,1800",
            "--probes", "60",
            "--csv", str(csv_path),
        ]
    ) == 0
    output = capsys.readouterr().out
    assert "failure fraction during attack" in output
    assert csv_path.read_text().startswith("loss,ttl,")


def test_parser_accepts_runner_flags():
    parser = build_parser()
    for argv in (
        ["report", "--jobs", "4", "--cache-dir", "/tmp/x"],
        ["sweep", "--jobs", "2", "--cache-dir", "/tmp/x"],
        ["ddos", "E", "--jobs", "1", "--cache-dir", "/tmp/x"],
        ["baseline", "60", "--jobs", "1", "--cache-dir", "/tmp/x"],
    ):
        args = parser.parse_args(argv)
        assert args.jobs is not None
        assert args.cache_dir == "/tmp/x"
        assert args.keep_going is False


def test_parser_accepts_keep_going_everywhere():
    parser = build_parser()
    for argv in (
        ["report", "--keep-going"],
        ["sweep", "--keep-going"],
        ["defense-study", "--keep-going"],
        ["ddos", "E", "--keep-going"],
        ["baseline", "60", "--keep-going"],
    ):
        assert parser.parse_args(argv).keep_going is True


def test_cli_baseline_with_cache_dir(tmp_path, capsys):
    cache_dir = str(tmp_path / "runcache")
    argv = ["baseline", "60", "--probes", "40", "--cache-dir", cache_dir]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert list((tmp_path / "runcache").glob("*.pkl"))
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert warm == cold


def test_cli_ddos_with_jobs_and_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "runcache")
    argv = [
        "ddos", "G", "--probes", "30", "--jobs", "2", "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    assert "failures during attack" in warm
