"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["ddos", "Z"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_cli_software(capsys):
    assert main(["software"]) == 0
    output = capsys.readouterr().out
    assert "bind" in output and "unbound" in output
    assert "resolved=True" in output


def test_cli_software_attack(capsys):
    assert main(["software", "--attack"]) == 0
    output = capsys.readouterr().out
    assert "resolved=False" in output


def test_cli_ddos_small(capsys):
    assert main(["ddos", "E", "--probes", "60"]) == 0
    output = capsys.readouterr().out
    assert "failures during attack" in output
    assert "amplification" in output


def test_cli_baseline_small(capsys):
    assert main(["baseline", "60", "--probes", "60"]) == 0
    output = capsys.readouterr().out
    assert "cache-miss rate" in output
    assert "Table 3" in output


def test_cli_probe_case(capsys):
    assert main(["probe-case"]) == 0
    output = capsys.readouterr().out
    assert "queries per client query" in output


def test_cli_glue_small(capsys):
    assert main(["glue", "--probes", "80"]) == 0
    output = capsys.readouterr().out
    assert "child-TTL fraction" in output
    assert "bind cache" in output


def test_cli_export_and_analyze_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    assert main(["ddos", "E", "--probes", "50", "--export-trace", str(trace_path)]) == 0
    assert trace_path.exists()
    capsys.readouterr()
    assert main(["analyze-trace", str(trace_path), "--ttl", "1800"]) == 0
    output = capsys.readouterr().out
    assert "Trace analysis" in output
    assert "Total queries" in output


def test_cli_report_tiny(tmp_path, capsys):
    output = tmp_path / "report.md"
    assert main(
        [
            "report",
            "--baseline-probes", "60",
            "--ddos-probes", "60",
            "--output", str(output),
        ]
    ) == 0
    text = output.read_text()
    assert "# EXPERIMENTS — paper vs measured" in text
    assert "Table 3 miss attribution" in text
    assert "Figure 16" in text


def test_cli_sweep_tiny(tmp_path, capsys):
    csv_path = tmp_path / "surface.csv"
    assert main(
        [
            "sweep",
            "--losses", "0.9",
            "--ttls", "60,1800",
            "--probes", "60",
            "--csv", str(csv_path),
        ]
    ) == 0
    output = capsys.readouterr().out
    assert "failure fraction during attack" in output
    assert csv_path.read_text().startswith("loss,ttl,")
