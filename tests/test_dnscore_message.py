"""Unit tests for DNS messages."""

from repro.dnscore.message import Message, Question, make_query, make_response
from repro.dnscore.name import Name
from repro.dnscore.records import NS, SOA, A, ResourceRecord
from repro.dnscore.rrtypes import Rcode, RRType

ZONE = Name.from_text("cachetest.nl.")
QNAME = Name.from_text("1414.cachetest.nl.")


def test_make_query_sets_rd_and_question():
    query = make_query(QNAME, RRType.AAAA)
    assert query.rd
    assert not query.qr
    assert query.question == Question(QNAME, RRType.AAAA)


def test_message_ids_unique_within_flight():
    ids = {make_query(QNAME, RRType.A).msg_id for _ in range(100)}
    assert len(ids) == 100


def test_make_response_echoes_id_question_rd():
    query = make_query(QNAME, RRType.AAAA)
    response = make_response(query, rcode=Rcode.NXDOMAIN)
    assert response.msg_id == query.msg_id
    assert response.qr
    assert response.rd == query.rd
    assert response.question == query.question
    assert response.rcode == Rcode.NXDOMAIN


def test_referral_detection():
    query = make_query(QNAME, RRType.AAAA)
    ns = ResourceRecord(ZONE, 3600, NS(Name.from_text("ns1.cachetest.nl.")))
    referral = make_response(query, authority=[ns])
    assert referral.is_referral()

    authoritative = make_response(query, aa=True, authority=[ns])
    assert not authoritative.is_referral()

    answer_record = ResourceRecord(QNAME, 60, A("192.0.2.1"))
    with_answer = make_response(query, answers=[answer_record], authority=[ns])
    assert not with_answer.is_referral()


def test_referral_requires_ns_in_authority():
    query = make_query(QNAME, RRType.AAAA)
    soa = ResourceRecord(ZONE, 60, SOA(ZONE, ZONE, 1, minimum=60))
    negative = make_response(query, authority=[soa])
    assert not negative.is_referral()


def test_answer_rrset_filters_matching_records():
    query = make_query(QNAME, RRType.A)
    matching = ResourceRecord(QNAME, 60, A("192.0.2.1"))
    unrelated = ResourceRecord(ZONE, 60, A("192.0.2.2"))
    response = make_response(query, answers=[matching, unrelated])
    rrset = response.answer_rrset()
    assert rrset is not None
    assert len(rrset) == 1
    assert rrset.records[0] == matching


def test_answer_rrset_none_when_empty():
    query = make_query(QNAME, RRType.A)
    assert make_response(query).answer_rrset() is None


def test_soa_minimum_ttl_is_min_of_ttl_and_minimum():
    query = make_query(QNAME, RRType.AAAA)
    soa_low_minimum = ResourceRecord(ZONE, 3600, SOA(ZONE, ZONE, 1, minimum=60))
    assert make_response(query, authority=[soa_low_minimum]).soa_minimum_ttl() == 60
    soa_low_ttl = ResourceRecord(ZONE, 30, SOA(ZONE, ZONE, 1, minimum=600))
    assert make_response(query, authority=[soa_low_ttl]).soa_minimum_ttl() == 30
    assert make_response(query).soa_minimum_ttl() is None


def test_message_id_masked_to_16_bits():
    message = Message(0x12345, Question(QNAME, RRType.A))
    assert message.msg_id == 0x2345
