"""Unit tests for the vantage-point population builder."""

import pytest

from repro.clients.population import (
    PopulationConfig,
    ProfileShares,
    build_population,
)
from repro.clients.publicdns import default_public_services
from repro.dnscore.name import Name
from repro.netem.link import PerHostLatency
from repro.netem.transport import Network
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


def build(probe_count=200, seed=5, **config_kwargs):
    sim = Simulator()
    streams = RandomStreams(seed)
    latency = PerHostLatency()
    network = Network(sim, streams, latency=latency)
    config = PopulationConfig(probe_count=probe_count, **config_kwargs)
    population = build_population(
        sim,
        network,
        streams,
        root_hints=["193.0.0.1"],
        config=config,
        latency=latency,
        zone_origin=Name.from_text("cachetest.nl."),
    )
    return population


def test_probe_count_and_vp_ratio():
    population = build(probe_count=300)
    assert len(population.probes) == 300
    # Mean recursives/probe ~1.65: total VPs within a loose band.
    assert 300 * 1.3 < population.vp_count < 300 * 2.1


def test_unique_query_names_per_probe():
    population = build(probe_count=100)
    names = {str(probe.qname) for probe in population.probes}
    assert len(names) == 100
    assert "1.cachetest.nl." in names


def test_profile_mix_present():
    population = build(probe_count=400)
    kinds = [kind for probe in population.probes for kind in probe.r1_kinds]
    present = set(kinds)
    for expected in ("isp", "cluster", "forwarder", "public"):
        assert expected in present, f"no {expected} VPs in population"


def test_public_share_calibrated():
    population = build(probe_count=600)
    kinds = [kind for probe in population.probes for kind in probe.r1_kinds]
    public_fraction = kinds.count("public") / len(kinds)
    # Configured service shares sum to 0.30 of the ~1.06 total weight.
    assert 0.18 < public_fraction < 0.40


def test_broken_probes_fraction():
    population = build(probe_count=600)
    broken = [
        probe
        for probe in population.probes
        if "broken" in probe.r1_kinds
    ]
    fraction = len(broken) / len(population.probes)
    assert 0.005 < fraction < 0.08


def test_registry_knows_public_services():
    population = build(probe_count=100)
    registry = population.registry
    google_pool = next(
        pool for pool in population.pools if pool.name == "google"
    )
    assert registry.is_public(google_pool.address)
    assert registry.is_google(google_pool.address)
    for backend in google_pool.backends:
        assert registry.is_public_egress(backend.address)
        assert registry.is_google(backend.address)
    # ISP clusters are NOT public.
    cluster = next(
        (pool for pool in population.pools if pool.name.startswith("cluster")),
        None,
    )
    if cluster is not None:
        assert not registry.is_public(cluster.address)


def test_no_duplicate_r1_within_probe():
    population = build(probe_count=400)
    for probe in population.probes:
        if "broken" in probe.r1_kinds:
            continue
        assert len(set(probe.stub.recursives)) == len(probe.stub.recursives)


def test_deterministic_given_seed():
    first = build(probe_count=100, seed=9)
    second = build(probe_count=100, seed=9)
    assert [probe.stub.recursives for probe in first.probes] == [
        probe.stub.recursives for probe in second.probes
    ]


def test_different_seed_differs():
    first = build(probe_count=100, seed=9)
    second = build(probe_count=100, seed=10)
    assert [probe.stub.recursives for probe in first.probes] != [
        probe.stub.recursives for probe in second.probes
    ]


def test_schedule_rounds_spreads_queries():
    population = build(probe_count=50)
    rng = RandomStreams(1).stream("probing")
    population.schedule_rounds(0.0, 600.0, 2, 300.0, rng)
    # 2 rounds x 50 probes scheduled.
    assert population.sim.pending() == 100


def test_cache_churn_scheduling():
    population = build(probe_count=100, flush_rate_per_hour=10.0)
    rng = RandomStreams(2).stream("churn")
    scheduled = population.schedule_cache_churn(3600.0, rng)
    assert scheduled > 0


def test_zero_churn_rate():
    population = build(probe_count=50, flush_rate_per_hour=0.0)
    rng = RandomStreams(2).stream("churn")
    assert population.schedule_cache_churn(3600.0, rng) == 0


def test_custom_shares_respected():
    shares = ProfileShares(isp_direct=1.0, isp_cluster=0.0, forwarder=0.0)
    services = default_public_services()
    for service in services:
        service.vp_share = 0.0
    population = build(
        probe_count=200,
        shares=shares,
        public_services=services,
        broken_probe_fraction=0.0,
        refusing_r1_fraction=0.0,
    )
    kinds = {kind for probe in population.probes for kind in probe.r1_kinds}
    assert kinds == {"isp"}
