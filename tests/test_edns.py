"""Tests for EDNS0 (RFC 6891): OPT pseudo-record and payload negotiation."""

import pytest

from repro.dnscore.message import make_query, make_response
from repro.dnscore.name import Name
from repro.dnscore.records import TXT
from repro.dnscore.rrtypes import RRType
from repro.dnscore.wire import from_wire, to_wire, upper_bound_size
from repro.resolvers.recursive import RecursiveResolver, ResolverConfig

BIG_NAME = Name.from_text("big.cachetest.nl.")
QNAME = Name.from_text("1414.cachetest.nl.")


def add_big_rrset(world, chunks=8):
    for index in range(chunks):
        world.test_zone.add(BIG_NAME, 300, TXT([f"chunk-{index:02d}-" + "x" * 90]))


def test_opt_record_roundtrips_on_wire():
    query = make_query(QNAME, RRType.AAAA, edns_payload=1232)
    decoded = from_wire(to_wire(query))
    assert decoded.edns_payload == 1232
    assert decoded.additional == []  # OPT is a pseudo-record, not data


def test_no_opt_without_edns():
    query = make_query(QNAME, RRType.AAAA)
    decoded = from_wire(to_wire(query))
    assert decoded.edns_payload is None


def test_upper_bound_accounts_for_opt():
    plain = make_query(QNAME, RRType.AAAA)
    edns = make_query(QNAME, RRType.AAAA, msg_id=plain.msg_id, edns_payload=1232)
    assert upper_bound_size(edns) >= upper_bound_size(plain) + 11
    assert upper_bound_size(edns) >= len(to_wire(edns))


def test_edns_response_echoes_server_limit(world):
    received = []
    world.network.register("10.0.0.60", received.append)
    world.network.send(
        "10.0.0.60",
        world.AT1,
        make_query(QNAME, RRType.AAAA, edns_payload=4096),
    )
    world.sim.run(until=1.0)
    response = received[0].message
    assert response.edns_payload == world.at1.edns_payload_limit


def test_edns_avoids_truncation_for_midsize_answers(world):
    add_big_rrset(world)  # ~900 bytes on the wire: over 512, under 1232
    received = []
    world.network.register("10.0.0.60", received.append)
    # Plain DNS: truncated.
    world.network.send(
        "10.0.0.60", world.AT1, make_query(BIG_NAME, RRType.TXT)
    )
    # EDNS 1232: served whole over UDP.
    world.network.send(
        "10.0.0.60",
        world.AT1,
        make_query(BIG_NAME, RRType.TXT, edns_payload=1232),
    )
    world.sim.run(until=1.0)
    plain_response = received[0].message
    edns_response = received[1].message
    assert plain_response.tc
    assert not edns_response.tc
    assert len(edns_response.answers) == 8


def test_edns_capped_by_server_limit(world):
    # A response larger than the server's 1232-byte cap still truncates
    # even when the client advertises more.
    add_big_rrset(world, chunks=16)  # ~1.7 KB
    received = []
    world.network.register("10.0.0.60", received.append)
    world.network.send(
        "10.0.0.60",
        world.AT1,
        make_query(BIG_NAME, RRType.TXT, edns_payload=65000),
    )
    world.sim.run(until=1.0)
    assert received[0].message.tc


def test_edns_resolver_skips_tcp_fallback(world):
    add_big_rrset(world)
    config = ResolverConfig()
    config.edns_payload = 1232
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, config=config
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, BIG_NAME, RRType.TXT, outcomes.append)
    world.sim.run(until=30.0)
    assert outcomes and outcomes[0].is_success
    assert len(outcomes[0].records) == 8
    assert resolver.tcp_fallbacks == 0


def test_plain_resolver_needs_tcp_for_same_answer(world):
    add_big_rrset(world)
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.2", world.root_hints
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, BIG_NAME, RRType.TXT, outcomes.append)
    world.sim.run(until=30.0)
    assert outcomes and outcomes[0].is_success
    assert resolver.tcp_fallbacks == 1
