"""Flight-recorder timelines: cadence, reconciliation, and transport.

Scaled like tests/test_obs_metrics.py: small probe counts and a coarse
sampling interval (300 s) keep every run inside the tier-1 time budget.
"""

import io

import pytest

from repro.core.experiments.ddos import DDOS_EXPERIMENTS, run_ddos
from repro.core.metrics import responses_by_round
from repro.obs import (
    DEFAULT_SERIES,
    ObsSpec,
    SpanFormatError,
    TimelinePoint,
    TimelineSpec,
    export_timeline,
    import_timeline,
    validate_timeline,
)
from repro.runner import DiskCache, cache_key, ddos_request, run_many

TIMELINE = ObsSpec(timeline=TimelineSpec(interval=300.0))


def run_h(probe_count=16, seed=5, obs=TIMELINE, jobs=1, **kwargs):
    [result] = run_many(
        [
            ddos_request(
                DDOS_EXPERIMENTS["H"],
                probe_count=probe_count,
                seed=seed,
                obs=obs,
                **kwargs,
            )
        ],
        jobs=jobs,
    )
    return result


# ----------------------------------------------------------------------
# Sampling cadence
# ----------------------------------------------------------------------
def test_cadence_and_final_sample_at_run_end():
    result = run_h()
    points = result.timeline_points
    spec = DDOS_EXPERIMENTS["H"]
    until = spec.total_duration_min * 60.0 + 20.0  # duration + grace

    assert [point.index for point in points] == list(range(len(points)))
    times = [point.time for point in points]
    assert times == sorted(times)
    assert all(later - earlier <= 300.0 + 1e-9
               for earlier, later in zip(times, times[1:]))
    # The recorder's last sample lands exactly at the run limit — the
    # same instant as the final metrics snapshot, so totals reconcile.
    assert times[-1] == pytest.approx(until)
    validate_timeline(points)

    for series in DEFAULT_SERIES:
        assert series in points[-1].values
    assert "sketch.entropy_bits" in points[-1].values


def test_timeline_reconciles_with_exact_ground_truth():
    result = run_h()
    final = result.timeline_points[-1].values

    # Offered load: the cumulative total equals the exact query log.
    assert final["offered_total"] == len(
        result.testbed.offered_query_log.entries
    )
    # Client outcomes: cumulative ok/answered equal the per-round series
    # the paper's figures are built from.
    by_round = responses_by_round(
        result.answers, DDOS_EXPERIMENTS["H"].round_seconds
    )
    ok = sum(bucket.get("ok", 0) for bucket in by_round.values())
    answered = sum(sum(bucket.values()) for bucket in by_round.values())
    assert final["client_ok_total"] == ok
    assert final["client_answered_total"] == answered


def test_sketch_tracks_exact_per_source_counts():
    result = run_h()
    sketch = result.testbed.source_sketch
    exact = result.testbed.offered_query_log.per_source_counts()

    assert sketch.total == sum(exact.values())
    bound = sketch.cms.error_bound()
    for src, count, _error in sketch.heavy_hitters(10):
        assert abs(count - exact[src]) <= bound


# ----------------------------------------------------------------------
# Determinism: parallelism and queue backend must not leak in
# ----------------------------------------------------------------------
def test_timeline_identical_across_job_counts():
    serial = run_h(jobs=1).timeline_points
    parallel = run_h(jobs=4).timeline_points
    assert [p.as_dict() for p in serial] == [p.as_dict() for p in parallel]


def test_timeline_identical_across_queue_backends():
    heap = run_h(queue_backend="heap").timeline_points
    calendar = run_h(queue_backend="calendar").timeline_points
    assert [p.as_dict() for p in heap] == [p.as_dict() for p in calendar]


# ----------------------------------------------------------------------
# Zero-cost when disabled
# ----------------------------------------------------------------------
def test_no_timeline_without_spec():
    result = run_ddos(DDOS_EXPERIMENTS["H"], probe_count=8, seed=5)
    testbed = result.testbed
    assert testbed.obs.registry is None
    assert testbed.obs.recorder is None
    assert testbed.source_sketch is None
    assert result.timeline_points == []


def test_metrics_only_records_no_timeline():
    result = run_ddos(
        DDOS_EXPERIMENTS["H"], probe_count=8, seed=5, obs=ObsSpec(metrics=True)
    )
    assert result.timeline_points == []
    assert result.testbed.metric_snapshots  # metrics still work alone


# ----------------------------------------------------------------------
# Cache key and disk-cache transport
# ----------------------------------------------------------------------
def test_timeline_spec_changes_the_cache_key():
    plain = ddos_request(DDOS_EXPERIMENTS["G"], probe_count=16, seed=9)
    timed = ddos_request(
        DDOS_EXPERIMENTS["G"], probe_count=16, seed=9, obs=TIMELINE
    )
    retimed = ddos_request(
        DDOS_EXPERIMENTS["G"],
        probe_count=16,
        seed=9,
        obs=ObsSpec(timeline=TimelineSpec(interval=60.0)),
    )
    assert cache_key(plain) != cache_key(timed)
    assert cache_key(timed) != cache_key(retimed)


def test_timeline_survives_disk_cache_round_trip(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    request = ddos_request(
        DDOS_EXPERIMENTS["G"], probe_count=16, seed=9, obs=TIMELINE
    )
    [cold] = run_many([request], jobs=1, cache=cache)
    assert cache.misses == 1
    [warm] = run_many([request], jobs=1, cache=cache)
    assert cache.hits == 1

    assert len(cold.timeline_points) > 0
    assert [p.as_dict() for p in warm.timeline_points] == [
        p.as_dict() for p in cold.timeline_points
    ]


# ----------------------------------------------------------------------
# JSONL transport and schema validation
# ----------------------------------------------------------------------
def test_timeline_jsonl_round_trip():
    points = [
        TimelinePoint(300.0, 0, {"offered_qps": 1.5, "offered_total": 450}),
        TimelinePoint(600.0, 1, {"offered_qps": 2.0, "offered_total": 1050}),
    ]
    stream = io.StringIO()
    assert export_timeline(points, stream, run="ddos-H") == 2
    stream.seek(0)
    runs = import_timeline(stream)
    assert list(runs) == ["ddos-H"]
    assert runs["ddos-H"] == points


def test_validate_timeline_rejects_bad_series():
    with pytest.raises(SpanFormatError, match="index"):
        validate_timeline([TimelinePoint(300.0, 1, {})])
    with pytest.raises(SpanFormatError, match="time"):
        validate_timeline(
            [TimelinePoint(300.0, 0, {}), TimelinePoint(300.0, 1, {})]
        )
    with pytest.raises(SpanFormatError, match="decreased"):
        validate_timeline(
            [
                TimelinePoint(300.0, 0, {"offered_total": 10}),
                TimelinePoint(600.0, 1, {"offered_total": 9}),
            ]
        )


def test_import_timeline_rejects_malformed_rows():
    for row in (
        '{"index": 0, "values": {}}',  # missing time
        '{"time": 1.0, "values": {}}',  # missing index
        '{"time": 1.0, "index": 0}',  # missing values
        '{"time": true, "index": 0, "values": {}}',  # bool is not a time
        '{"time": 1.0, "index": 0, "values": {"a": "x"}}',  # non-numeric
    ):
        with pytest.raises(SpanFormatError):
            import_timeline(io.StringIO(row + "\n"))
