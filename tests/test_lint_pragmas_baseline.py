"""Pragma parsing/suppression and baseline round-trip tests."""

import textwrap

import pytest

from repro.lint import Baseline, Finding, all_checkers, run_checkers
from repro.lint.baseline import BaselineError
from repro.lint.driver import parse_source
from repro.lint.pragmas import allows, parse_pragmas


def run(source, rules):
    file = parse_source(textwrap.dedent(source), "repro/sample.py")
    return run_checkers([file], all_checkers(rules))


# ----------------------------------------------------------------------
# Pragma parsing
# ----------------------------------------------------------------------
def test_parse_same_line_pragma():
    pragmas = parse_pragmas("x = 1  # repro-lint: allow[determinism]\n")
    assert allows(pragmas, 1, "determinism")
    assert not allows(pragmas, 1, "event-loop")
    assert not allows(pragmas, 2, "determinism")


def test_standalone_pragma_covers_next_line():
    pragmas = parse_pragmas(
        "# repro-lint: allow[determinism,rng-streams]\nx = 1\n"
    )
    assert allows(pragmas, 2, "determinism")
    assert allows(pragmas, 2, "rng-streams")


def test_wildcard_pragma():
    pragmas = parse_pragmas("x = 1  # repro-lint: allow[*]\n")
    assert allows(pragmas, 1, "anything-at-all")


# ----------------------------------------------------------------------
# End-to-end suppression through the driver
# ----------------------------------------------------------------------
def test_same_line_pragma_suppresses_finding():
    ctx = run(
        """
        import time

        started = time.time()  # repro-lint: allow[determinism]
        """,
        ["determinism"],
    )
    assert ctx.findings == []
    assert ctx.suppressed_count == 1


def test_standalone_pragma_suppresses_finding():
    ctx = run(
        """
        import time

        # repro-lint: allow[determinism]
        started = time.time()
        """,
        ["determinism"],
    )
    assert ctx.findings == []
    assert ctx.suppressed_count == 1


def test_pragma_for_other_rule_does_not_suppress():
    ctx = run(
        """
        import time

        started = time.time()  # repro-lint: allow[event-loop]
        """,
        ["determinism"],
    )
    assert len(ctx.findings) == 1


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    findings = [
        Finding("determinism", "repro/a.py", 10, "wall clock"),
        Finding("event-loop", "repro/b.py", 3, "heap poke"),
    ]
    path = tmp_path / "baseline.json"
    Baseline(findings).save(path)
    loaded = Baseline.load(path)
    assert loaded.keys() == {f.key() for f in findings}


def test_baseline_matches_on_message_not_line(tmp_path):
    # Unrelated edits shift line numbers; the baseline must keep
    # matching on (rule, file, message).
    path = tmp_path / "baseline.json"
    Baseline([Finding("determinism", "repro/a.py", 10, "wall clock")]).save(
        path
    )
    drifted = Finding("determinism", "repro/a.py", 99, "wall clock")
    new, suppressed, stale = Baseline.load(path).filter([drifted])
    assert new == []
    assert suppressed == [drifted]
    assert stale == []


def test_baseline_reports_stale_entries(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline([Finding("determinism", "repro/gone.py", 1, "fixed")]).save(path)
    new, suppressed, stale = Baseline.load(path).filter([])
    assert new == []
    assert suppressed == []
    assert len(stale) == 1
    assert stale[0].file == "repro/gone.py"


def test_missing_baseline_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "does-not-exist.json")
    assert baseline.findings == []


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("[]")
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_finding_dict_round_trip():
    finding = Finding("rng-streams", "repro/x.py", 7, "constant seed")
    assert Finding.from_dict(finding.as_dict()) == finding
