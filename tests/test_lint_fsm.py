"""Fixture-snippet tests for the ``fsm-discipline`` lint rule."""

import textwrap

from repro.lint import all_checkers, run_checkers
from repro.lint.driver import parse_source


def lint(source, rel="repro/resolvers/fixture.py"):
    file = parse_source(textwrap.dedent(source), rel)
    return run_checkers([file], all_checkers(["fsm-discipline"])).findings


def test_fsm_state_write_flagged():
    findings = lint(
        """
        def give_up(task):
            task.fsm_state = "DONE"
        """
    )
    assert len(findings) == 1
    assert "fsm_state" in findings[0].message
    assert "dispatch an event" in findings[0].message


def test_fsm_state_write_on_self_flagged():
    findings = lint(
        """
        class Task:
            def _finish(self):
                self.fsm_state = "DONE"
        """
    )
    assert len(findings) == 1


def test_fsm_state_annotated_assignment_flagged():
    findings = lint(
        """
        class Task:
            def __init__(self):
                self.fsm_state: str = "START"
        """
    )
    assert len(findings) == 1


def test_fsm_state_read_allowed():
    # Reading the current state (tracing, assertions) is fine; only
    # writes bypass the driver.
    findings = lint(
        """
        def trace(task):
            return task.fsm_state
        """
    )
    assert findings == []


def test_table_rebind_flagged():
    findings = lint(
        """
        def patch(machine, rows):
            machine.transitions = rows
        """
    )
    assert len(findings) == 1
    assert "transitions" in findings[0].message


def test_table_item_assignment_flagged():
    findings = lint(
        """
        def patch(machine, row):
            machine.transitions[0] = row
        """
    )
    assert len(findings) == 1


def test_table_append_flagged():
    findings = lint(
        """
        def extend(machine, row):
            machine.transitions.append(row)
        """
    )
    assert len(findings) == 1
    assert "append" in findings[0].message


def test_unrelated_append_allowed():
    findings = lint(
        """
        def collect(results, item):
            results.append(item)
        """
    )
    assert findings == []


def test_fsm_package_itself_exempt():
    # The driver commits states and the table modules build tables;
    # inside repro/fsm/ the rule is silent.
    findings = lint(
        """
        class CompiledMachine:
            def begin(self, ctx):
                ctx.fsm_state = self.start

            def build(self, rows):
                self.transitions = rows
        """,
        rel="repro/fsm/machine.py",
    )
    assert findings == []


def test_pragma_suppression():
    findings = lint(
        """
        def force(task):
            task.fsm_state = "DONE"  # repro-lint: allow[fsm-discipline]
        """
    )
    assert findings == []
