"""Integration tests for the DDoS experiment runner (small scale)."""

import pytest

from repro.core.experiments import DDOS_EXPERIMENTS, run_ddos
from repro.resolvers.stub import StubAnswer


@pytest.fixture(scope="module")
def experiment_h():
    """Experiment H: 90% loss on both servers, TTL 1800."""
    return run_ddos(DDOS_EXPERIMENTS["H"], probe_count=150, seed=3)


@pytest.fixture(scope="module")
def experiment_a():
    """Experiment A: full outage right after one warm-up round."""
    return run_ddos(DDOS_EXPERIMENTS["A"], probe_count=150, seed=3)


def test_specs_match_table4():
    assert set(DDOS_EXPERIMENTS) == set("ABCDEFGHI")
    assert DDOS_EXPERIMENTS["E"].loss_fraction == 0.50
    assert DDOS_EXPERIMENTS["H"].loss_fraction == 0.90
    assert DDOS_EXPERIMENTS["I"].ttl == 60
    assert DDOS_EXPERIMENTS["D"].servers == "one"
    assert DDOS_EXPERIMENTS["G"].ttl == 300


def test_failures_rise_during_attack(experiment_h):
    before = experiment_h.failure_fraction_before_attack()
    during = experiment_h.failure_fraction_during_attack()
    assert during > before + 0.15
    # Paper: ~40% failures at 90% loss; more than half still served.
    assert 0.2 < during < 0.6


def test_outcomes_by_round_recover_after_attack(experiment_h):
    series = experiment_h.outcomes_by_round()
    last_round = max(series)
    last = series[last_round]
    total = sum(last.values())
    assert last["ok"] / total > 0.8  # recovery


def test_amplification_against_paper_band(experiment_h):
    # Paper: 8.2x at 90% loss; accept a wide band at small scale.
    amplification = experiment_h.amplification()
    assert 3.0 < amplification < 15.0


def test_latency_tail_grows_during_attack(experiment_h):
    spec = experiment_h.spec
    series = {row.round_index: row for row in experiment_h.latency_series()}
    attack_round = int(spec.attack_window[0] // spec.round_seconds) + 2
    normal = series[1]
    attacked = series[attack_round]
    assert attacked.p90_ms > normal.p90_ms * 2


def test_unique_rn_grows_during_attack(experiment_h):
    spec = experiment_h.spec
    series = experiment_h.unique_rn()
    attack_round = int(spec.attack_window[0] // spec.round_seconds) + 2
    assert series[attack_round] > series[1]


def test_complete_outage_cache_only_window(experiment_a):
    series = experiment_a.outcomes_by_round()
    # Round 0: normal. Rounds 1-5: cache-only (TTL 3600 covers them).
    warm = series[0]
    assert warm["ok"] / sum(warm.values()) > 0.85
    cache_only = series[3]
    ok_fraction = cache_only["ok"] / sum(cache_only.values())
    # Paper: 35–70% of queries served from cache during full outage.
    assert 0.25 < ok_fraction < 0.75


def test_complete_outage_after_cache_expiry(experiment_a):
    series = experiment_a.outcomes_by_round()
    # After 70 minutes (cache filled in round 0 + TTL 3600): near-total
    # failure; only serve-stale survivors remain.
    late = series[9]
    ok_fraction = late["ok"] / sum(late.values())
    assert ok_fraction < 0.1


def test_stale_answers_have_ttl_zero(experiment_a):
    stale_ok = [
        answer
        for answer in experiment_a.answers
        if answer.is_success
        and answer.sent_at > 75 * 60
        and answer.returned_ttl == 0
    ]
    late_ok = [
        answer
        for answer in experiment_a.answers
        if answer.is_success and answer.sent_at > 75 * 60
    ]
    if late_ok:  # survivors exist: they must be overwhelmingly stale
        assert len(stale_ok) >= len(late_ok) * 0.5


def test_class_timeseries_shows_cc_during_attack(experiment_a):
    series = experiment_a.class_timeseries()
    cache_only = series.get(3, {})
    assert cache_only.get("CC", 0) > 0


def test_moderate_attack_mostly_survives():
    result = run_ddos(DDOS_EXPERIMENTS["E"], probe_count=120, seed=3)
    during = result.failure_fraction_during_attack()
    before = result.failure_fraction_before_attack()
    # Paper: 8.5% during vs 4.8% before at 50% loss.
    assert during < before + 0.1
    assert during < 0.2


def test_one_server_attack_barely_noticed():
    result = run_ddos(DDOS_EXPERIMENTS["D"], probe_count=120, seed=3)
    during = result.failure_fraction_during_attack()
    before = result.failure_fraction_before_attack()
    # Paper Fig 14a: no significant change when one NS takes 50% loss.
    assert during < before + 0.06
