"""Cross-backend differential tests: every queue is the same queue.

The heap backend is the always-correct reference; the timer wheel,
calendar queue, and native kernel must replay any trace of operations
with byte-identical observable behavior — the same ``(time, seq)`` fire
sequence, the same clock, the same live/dead accounting. These tests
replay seeded random traces against every available backend and diff
them against the reference, then check the property end to end: a full
experiment run and its cache key are unchanged by the backend knob
(modulo the knob itself).
"""

import random

import pytest

from repro.simcore.events import QUEUE_BACKENDS, make_queue
from repro.simcore.simulator import Simulator

BACKENDS = sorted(QUEUE_BACKENDS)
ALTERNATES = [name for name in BACKENDS if name != "heap"]


# ----------------------------------------------------------------------
# Raw queue protocol: seeded push/cancel/pop/pop_due/peek traces
# ----------------------------------------------------------------------
def _replay_queue_trace(backend: str, seed: int):
    """Apply one seeded operation trace; return every observable output.

    Times never go below the latest popped time (the simulator clock is
    monotone, and ``Simulator.at`` enforces it), but pushes *at* already
    -served instants are generated on purpose — that is the zero-delay
    reschedule shape the wheel's active-slot merge must order correctly.
    """
    rng = random.Random(seed)
    queue = make_queue(backend)
    live = []
    floor = 0.0
    log = []
    for _ in range(2000):
        op = rng.random()
        if op < 0.45:
            time = floor + rng.choice((0.0, rng.random() * 50.0))
            event = queue.push(time, lambda: None)
            live.append(event)
            log.append(("push", event.time, event.seq))
        elif op < 0.60 and live:
            event = live.pop(rng.randrange(len(live)))
            event.cancel()
            event.cancel()  # idempotence must hold mid-trace too
            log.append(("cancel", event.time, event.seq))
        elif op < 0.75:
            event = queue.pop()
            if event is not None:
                floor = event.time
                log.append(("pop", event.time, event.seq))
            else:
                log.append(("pop", None))
        elif op < 0.90:
            limit = floor + rng.random() * 20.0
            event = queue.pop_due(limit)
            if event is not None:
                floor = event.time
                log.append(("pop_due", event.time, event.seq))
            else:
                log.append(("pop_due", None))
        else:
            log.append(("peek", queue.peek_time(), len(queue)))
    while (event := queue.pop()) is not None:
        log.append(("drain", event.time, event.seq))
    log.append(("final", len(queue), queue.peek_time()))
    return log


@pytest.mark.parametrize("backend", ALTERNATES)
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_queue_trace_matches_heap_reference(backend, seed):
    assert _replay_queue_trace(backend, seed) == _replay_queue_trace(
        "heap", seed
    )


# ----------------------------------------------------------------------
# Simulator drain path: batched dispatch vs reference stepping
# ----------------------------------------------------------------------
def _replay_sim_trace(backend: str, seed: int):
    """A seeded timer workload driven through ``run(until)`` segments.

    Mixes the shapes the experiments produce: same-instant bursts,
    cancel-before-fire (resolver retries), zero-delay reschedules, and
    callbacks that schedule more work — all across several bounded run
    windows, so the trace also covers events left queued at a limit.
    """
    rng = random.Random(seed)
    sim = Simulator(queue_backend=backend)
    fired = []
    timers = []

    def note(tag):
        fired.append((round(sim.now, 9), tag))

    def reschedule(tag, remaining):
        note(tag)
        if remaining:
            delay = rng.choice((0.0, 0.25, 1.0))
            sim.call_later(delay, reschedule, tag, remaining - 1)

    for index in range(300):
        shape = rng.random()
        when = rng.random() * 90.0
        if shape < 0.5:
            timers.append(sim.at(when, note, index))
        elif shape < 0.8:
            sim.at(when, reschedule, index, rng.randrange(4))
        else:
            victim_base = rng.random() * 90.0
            victim = sim.at(victim_base + 5.0, note, ("victim", index))
            if rng.random() < 0.8:
                sim.at(victim_base, lambda v=victim: v.cancel())
    for cut in (20.0, 20.0, 55.5, None):  # repeat limit: empty window
        sim.run(until=cut)
    return fired, sim.now, sim.events_processed, sim.pending()


@pytest.mark.parametrize("backend", ALTERNATES)
@pytest.mark.parametrize("seed", [11, 12, 13])
def test_sim_trace_matches_heap_reference(backend, seed):
    assert _replay_sim_trace(backend, seed) == _replay_sim_trace(
        "heap", seed
    )


# ----------------------------------------------------------------------
# End to end: experiment results and cache keys
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ALTERNATES)
def test_ddos_run_identical_across_backends(backend):
    from repro.core.experiments.ddos import DDOS_EXPERIMENTS, run_ddos

    spec = DDOS_EXPERIMENTS["G"]
    reference = run_ddos(spec, probe_count=10, seed=5, queue_backend="heap")
    candidate = run_ddos(spec, probe_count=10, seed=5, queue_backend=backend)
    assert [
        (answer.probe_id, answer.status, answer.sent_at, answer.answered_at)
        for answer in reference.answers
    ] == [
        (answer.probe_id, answer.status, answer.sent_at, answer.answered_at)
        for answer in candidate.answers
    ]
    assert reference.outcomes_by_round() == candidate.outcomes_by_round()


def test_cache_key_depends_only_on_requested_backend():
    from repro.core.experiments.ddos import DDOS_EXPERIMENTS
    from repro.runner.cache import cache_key
    from repro.runner.executor import ddos_request

    spec = DDOS_EXPERIMENTS["G"]
    default = ddos_request(spec, probe_count=10, seed=5)
    same = ddos_request(spec, probe_count=10, seed=5, queue_backend="auto")
    explicit = ddos_request(spec, probe_count=10, seed=5, queue_backend="heap")
    # "auto" keys as the requested name, not the machine-dependent
    # resolution — the same request hits the same cache entry whether or
    # not the native kernel is built there.
    assert cache_key(default) == cache_key(same)
    assert cache_key(default) != cache_key(explicit)
