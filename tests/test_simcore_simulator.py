"""Unit tests for the simulation kernel."""

import pytest

from repro.simcore.simulator import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_call_later_advances_clock():
    sim = Simulator()
    fired = []
    sim.call_later(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.call_later(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run(until=15.0)
    assert fired == ["late"]


def test_run_until_advances_clock_even_when_queue_drains():
    sim = Simulator()
    sim.call_later(1.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_at_schedules_absolute():
    sim = Simulator()
    times = []
    sim.at(7.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [7.0]


def test_at_in_past_raises():
    sim = Simulator()
    sim.call_later(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Simulator().call_later(-1.0, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def first():
        sim.call_later(1.0, fired.append, "second")
        fired.append("first")

    sim.call_later(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_stop_halts_processing():
    sim = Simulator()
    fired = []
    sim.call_later(1.0, lambda: (fired.append(1), sim.stop()))
    sim.call_later(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    # Remaining event still pending; a new run picks it up.
    sim.run()
    assert fired == [1, 2]


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.call_later(1.0, fired.append, "a")
    sim.call_later(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_cancel_via_returned_event():
    sim = Simulator()
    fired = []
    event = sim.call_later(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_pending_counts_live_events():
    sim = Simulator()
    event = sim.call_later(1.0, lambda: None)
    sim.call_later(2.0, lambda: None)
    assert sim.pending() == 2
    event.cancel()
    assert sim.pending() == 1


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.call_later(1.0, reenter)
    sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.call_later(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_step_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        with pytest.raises(SimulationError):
            sim.step()
        errors.append("guarded")

    sim.call_later(1.0, reenter)
    sim.run()
    assert errors == ["guarded"]


def test_step_from_run_callback_raises():
    sim = Simulator()
    caught = []

    def reenter():
        try:
            sim.step()
        except SimulationError:
            caught.append(True)

    sim.call_later(1.0, reenter)
    sim.call_later(2.0, lambda: None)
    sim.run()
    assert caught == [True]
    # The second event must still fire through run(), untouched by the
    # failed step() attempt.
    assert sim.events_processed == 2
