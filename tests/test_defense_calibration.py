"""Calibration: emergent saturation loss vs the paper's configured drop.

Table 4's experiments D-I *impose* loss fractions of 50%, 75%, and 90%
at the authoritatives. The defense subsystem instead derives loss from a
finite service capacity under a real flood. These tests pin the bridge
between the two: a flood offering ``ratio`` x capacity must shed
``1 - 1/ratio`` of arriving queries (within +-5 pp), so ratios 2, 4, and
10 are the emergent analogues of the paper's 50/75/90% rows.

Client-visible reliability is *not* expected to match the configured
runs exactly — and the gap is itself a finding (DESIGN.md §9): emergent
loss is bursty and correlated (a saturated queue clips each probe's
resolution fan-out together, and served answers carry queueing delay
that can outlive aggressive retry timers), while the paper's iptables
drop is independent per packet. Correlated loss defeats retries far more
effectively than Bernoulli loss at the same average rate, so emergent
failure is bounded *below* by the configured-run failure and above by a
documented band.
"""

import pytest

from repro.attackload import AttackLoadSpec
from repro.core.experiments.ddos import DDoSSpec, run_ddos
from repro.defense import DefenseSpec
from repro.netem.attack import equivalent_flood_qps, equivalent_loss_fraction

CAPACITY = 20.0  # per server, the defense-study default
QUEUE_LIMIT = 10  # absorbs one resolution's query fan without overflow
SERVERS = 2
ATTACKERS = 4

#: ratio -> the Table 4 loss row it emulates.
RATIOS = [(2.0, 0.50), (4.0, 0.75), (10.0, 0.90)]


def _timeline(key: str, loss_fraction: float) -> DDoSSpec:
    """A compressed Table 4 timeline: 10 min warm-up, 10 min attack."""
    return DDoSSpec(
        key=key,
        ttl=60,
        ddos_start_min=10,
        ddos_duration_min=10,
        queries_before=1,
        total_duration_min=30,
        probe_interval_min=10,
        loss_fraction=loss_fraction,
        servers="both",
    )


def _emergent_run(ratio: float):
    total_qps = ratio * CAPACITY * SERVERS
    return run_ddos(
        _timeline(f"calib-{ratio:g}x", 0.0),
        probe_count=40,
        seed=13,
        attack_load=AttackLoadSpec(
            mode="direct-flood",
            attackers=ATTACKERS,
            qps=total_qps / ATTACKERS,
            start=600.0,
            duration=600.0,
        ),
        defense=DefenseSpec(qps_capacity=CAPACITY, queue_limit=QUEUE_LIMIT),
    )


def _measured_loss(result) -> float:
    stats = result.testbed.defense_stats
    served = stats["served_legit"] + stats["served_attack"]
    dropped = (
        stats["dropped_capacity_legit"] + stats["dropped_capacity_attack"]
    )
    return dropped / (served + dropped)


@pytest.fixture(scope="module")
def calibration_runs():
    """One emergent and one configured-drop run per Table 4 loss level."""
    runs = {}
    for ratio, loss in RATIOS:
        emergent = _emergent_run(ratio)
        configured = run_ddos(
            _timeline(f"calib-cfg-{loss:g}", loss), probe_count=40, seed=13
        )
        runs[ratio] = (loss, emergent, configured)
    return runs


@pytest.mark.parametrize("ratio,loss", RATIOS)
def test_flood_calibrates_to_the_configured_drop_equivalent(
    calibration_runs, ratio, loss
):
    """A flood at ratio x capacity sheds 1 - 1/ratio of arrivals +-5 pp."""
    _, emergent, _ = calibration_runs[ratio]
    measured = _measured_loss(emergent)
    expected = equivalent_loss_fraction(ratio * CAPACITY, CAPACITY)
    assert expected == pytest.approx(loss, abs=1e-9)
    assert abs(measured - expected) <= 0.05


def test_equivalence_helpers_round_trip():
    for ratio, loss in RATIOS:
        qps = equivalent_flood_qps(loss, CAPACITY)
        assert equivalent_loss_fraction(qps, CAPACITY) == pytest.approx(loss)
        assert qps == pytest.approx(ratio * CAPACITY)


def test_emergent_failure_brackets_the_configured_run(calibration_runs):
    """Reliability ordering matches Table 4, with the documented band.

    Correlated emergent loss is strictly harsher on clients than
    independent configured loss at the same average rate; the band below
    (+45 pp) is the measured envelope of that divergence, not a model
    error (DESIGN.md §9).
    """
    for ratio, (loss, emergent, configured) in calibration_runs.items():
        fail_emergent = emergent.failure_fraction_during_attack()
        fail_configured = configured.failure_fraction_during_attack()
        assert fail_emergent >= fail_configured - 0.02
        assert fail_emergent <= fail_configured + 0.45


def test_failure_orders_monotonically_with_intensity(calibration_runs):
    """More offered load -> lower reliability, for both loss models."""
    emergent_failures = [
        calibration_runs[ratio][1].failure_fraction_during_attack()
        for ratio, _ in RATIOS
    ]
    configured_failures = [
        calibration_runs[ratio][2].failure_fraction_during_attack()
        for ratio, _ in RATIOS
    ]
    assert emergent_failures == sorted(emergent_failures)
    assert configured_failures == sorted(configured_failures)


def test_attack_does_not_hurt_the_warmup_rounds(calibration_runs):
    """Before the flood starts the defended zone serves normally: the
    pre-attack failure floor stays near the baseline-loss level."""
    for ratio, (loss, emergent, configured) in calibration_runs.items():
        assert emergent.failure_fraction_before_attack() <= 0.15
        assert (
            emergent.failure_fraction_before_attack()
            <= configured.failure_fraction_before_attack() + 0.10
        )
