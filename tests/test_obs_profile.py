"""Simulator profiling hooks."""

from repro.core.experiments.ddos import DDOS_EXPERIMENTS, run_ddos
from repro.obs import ObsSpec
from repro.simcore.simulator import Simulator


def test_profiling_disabled_by_default():
    sim = Simulator()
    sim.call_later(1.0, lambda: None)
    sim.run()
    assert sim.profile is None


def test_profile_counts_events_and_sites():
    sim = Simulator()
    sim.enable_profiling()

    def tick():
        pass

    for index in range(10):
        sim.call_later(float(index), tick)
    sim.run()

    profile = sim.profile
    assert profile.events == 10
    assert profile.sim_seconds == 9.0
    assert profile.wall_seconds > 0
    assert profile.max_depth >= 1
    assert profile.max_dead >= 0
    summary = profile.summary()
    assert summary["events"] == 10
    assert summary["events_per_second"] > 0
    assert summary["wall_per_sim_second"] > 0
    [(site, stats)] = list(summary["sites"].items())
    assert "tick" in site
    assert stats["calls"] == 10
    assert stats["wall_seconds"] >= 0


def test_enable_profiling_is_idempotent():
    sim = Simulator()
    profile = sim.enable_profiling()
    assert sim.enable_profiling() is profile


def test_profile_accumulates_across_runs():
    sim = Simulator()
    sim.enable_profiling()
    sim.call_later(1.0, lambda: None)
    sim.run()
    sim.call_later(1.0, lambda: None)
    sim.run()
    assert sim.profile.events == 2


def test_profiled_ddos_run_reports_summary():
    result = run_ddos(
        DDOS_EXPERIMENTS["G"],
        probe_count=12,
        seed=7,
        obs=ObsSpec(profile=True),
    )
    profile = result.testbed.profile_summary()
    assert profile is not None
    assert profile["events"] > 0
    assert profile["max_depth"] > 0
    assert profile["max_dead"] >= 0
    assert profile["sites"], "no callback sites recorded"
    # Sites are ordered by wall time, descending.
    walls = [stats["wall_seconds"] for stats in profile["sites"].values()]
    assert walls == sorted(walls, reverse=True)


def test_profiling_does_not_change_results():
    plain = run_ddos(DDOS_EXPERIMENTS["G"], probe_count=12, seed=7)
    profiled = run_ddos(
        DDOS_EXPERIMENTS["G"], probe_count=12, seed=7, obs=ObsSpec(profile=True)
    )
    assert [
        (answer.status, answer.sent_at) for answer in plain.answers
    ] == [(answer.status, answer.sent_at) for answer in profiled.answers]
