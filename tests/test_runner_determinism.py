"""Parallel-vs-serial determinism across the full experiment battery.

The executor's contract is that ``jobs=N`` output is identical to
``jobs=1`` output, and that a cache hit is indistinguishable from a
fresh run. These tests run every DDoS scenario A–I and every caching
baseline at reduced scale both ways and compare the derived metrics the
paper's tables and figures are built from.
"""

import pytest

from repro.attackload import AttackLoadSpec
from repro.core.experiments import BASELINE_EXPERIMENTS, DDOS_EXPERIMENTS
from repro.core.experiments.ddos import DDoSSpec
from repro.defense import DefenseSpec
from repro.runner import (
    DiskCache,
    baseline_request,
    ddos_request,
    run_many,
)

DDOS_PROBES = 24
BASELINE_PROBES = 40
SEED = 42

# A defended emergent-loss scenario (the defense-study shape at reduced
# scale): real attackers, RRL + filter + finite capacity. It must obey
# the same jobs=N / cache contracts as the axiomatic-drop experiments.
DEFENSE_SPEC = DDoSSpec(
    key="det-defense",
    ttl=60,
    ddos_start_min=10,
    ddos_duration_min=10,
    queries_before=1,
    total_duration_min=30,
    probe_interval_min=10,
    loss_fraction=0.0,
    servers="both",
)
DEFENSE_ATTACK = AttackLoadSpec(
    mode="direct-flood", attackers=2, qps=20.0, start=600.0, duration=600.0
)
DEFENSE_DEFENSE = DefenseSpec(
    rrl=True, rrl_rate=5.0, filtering=True, qps_capacity=20.0, queue_limit=10
)


def ddos_metrics(result):
    """Every testbed- and client-side series a DDoS figure reads."""
    return {
        "outcomes": result.outcomes_by_round(),
        "classes": result.class_timeseries(),
        "fail_before": result.failure_fraction_before_attack(),
        "fail_during": result.failure_fraction_during_attack(),
        "amplification": result.amplification(),
        "auth_load": result.authoritative_load(),
        "unique_rn": result.unique_rn(),
        "latency": [
            (row.round_index, row.mean_ms, row.median_ms)
            for row in result.latency_series()
        ],
        "defense": result.testbed.defense_stats,
        "attack": result.testbed.attack_stats,
    }


def baseline_metrics(result):
    return {
        "miss_rate": result.miss_rate,
        "dataset": result.dataset.as_rows(),
        "table2": result.table2.as_rows(),
        "table3": result.table3.as_rows(),
        "classes": result.class_timeseries(),
    }


@pytest.fixture(scope="module")
def battery_requests():
    return (
        [
            ddos_request(spec, probe_count=DDOS_PROBES, seed=SEED)
            for spec in DDOS_EXPERIMENTS.values()
        ]
        + [
            ddos_request(
                DEFENSE_SPEC,
                probe_count=DDOS_PROBES,
                seed=SEED,
                attack_load=DEFENSE_ATTACK,
                defense=DEFENSE_DEFENSE,
            )
        ]
        + [
            baseline_request(spec, probe_count=BASELINE_PROBES, seed=SEED)
            for spec in BASELINE_EXPERIMENTS.values()
        ]
    )


@pytest.fixture(scope="module")
def serial_results(battery_requests):
    return run_many(battery_requests, jobs=1)


def metrics_of(results):
    ddos_count = len(DDOS_EXPERIMENTS) + 1  # + the defended scenario
    return [
        ddos_metrics(result) if index < ddos_count else baseline_metrics(result)
        for index, result in enumerate(results)
    ]


def test_jobs4_identical_to_jobs1(battery_requests, serial_results):
    parallel = run_many(battery_requests, jobs=4)
    assert metrics_of(parallel) == metrics_of(serial_results)


def test_cache_hit_equals_fresh_run(tmp_path, battery_requests, serial_results):
    cache = DiskCache(tmp_path)
    cold = run_many(battery_requests, jobs=1, cache=cache)
    assert cache.misses == len(battery_requests) and cache.hits == 0
    warm = run_many(battery_requests, jobs=4, cache=cache)
    assert cache.hits == len(battery_requests)
    assert metrics_of(cold) == metrics_of(serial_results)
    assert metrics_of(warm) == metrics_of(serial_results)


def test_every_scenario_key_covered(battery_requests):
    keys = {request.spec.key for request in battery_requests}
    assert set(DDOS_EXPERIMENTS) <= keys
    assert set(BASELINE_EXPERIMENTS) <= keys
    assert "det-defense" in keys
