"""Integration tests for the Appendix E software retry study."""

import pytest

from repro.core.experiments.software import run_software_study


@pytest.fixture(scope="module")
def results():
    return {
        (software, attack): run_software_study(software, attack)
        for software in ("bind", "unbound")
        for attack in (False, True)
    }


def test_bind_normal_three_queries(results):
    normal = results[("bind", False)]
    assert normal.resolved
    # Paper: 1 to the root, 1 to .net, 1 to the target zone.
    assert normal.queries_root == 1
    assert normal.queries_tld == 1
    assert normal.queries_target == 1


def test_bind_under_attack_retries_and_requeries_parents(results):
    attacked = results[("bind", True)]
    assert not attacked.resolved
    # Paper: ~12 queries total (we land in the same band), with parents
    # asked again.
    assert 8 <= attacked.total <= 20
    assert attacked.queries_target >= 6
    assert attacked.queries_root + attacked.queries_tld >= 3


def test_unbound_normal_includes_ns_chases(results):
    normal = results[("unbound", False)]
    assert normal.resolved
    # Paper: 5–6 queries (target AAAA + AAAA-for-NS chases); our model
    # also revalidates the delegation.
    assert 5 <= normal.total <= 12
    assert normal.queries_target >= 3


def test_unbound_under_attack_hammers_target(results):
    attacked = results[("unbound", True)]
    assert not attacked.resolved
    # Paper: 46 queries, ~30 of them chasing nameserver records.
    assert 30 <= attacked.total <= 80
    assert attacked.queries_target >= 25


def test_attack_multiplier_matches_paper_shape(results):
    bind_ratio = results[("bind", True)].total / results[("bind", False)].total
    unbound_ratio = (
        results[("unbound", True)].total / results[("unbound", False)].total
    )
    # Paper: BIND 4x, Unbound ~7-9x (46/5.5); Unbound grows more.
    assert bind_ratio >= 2.5
    assert unbound_ratio >= 4.0
    assert results[("unbound", True)].total > results[("bind", True)].total


def test_unknown_software_rejected():
    with pytest.raises(ValueError):
        run_software_study("powerdns")


def test_as_row_shape(results):
    row = results[("bind", False)].as_row()
    assert set(row) == {"root", "net", "cachetest.net", "total"}
    assert row["total"] == results[("bind", False)].total
