"""Integration tests for the Appendix A glue/TTL-precedence experiments."""

import pytest

from repro.core.experiments.glue import (
    TtlBuckets,
    run_cache_dump_study,
    run_glue_experiment,
)


@pytest.fixture(scope="module")
def glue_result():
    return run_glue_experiment(probe_count=200, seed=5, rounds=2)


def test_buckets_classify_correctly():
    buckets = TtlBuckets()
    for ttl in (4000, 3600, 1800, 60, 59, 0):
        buckets.add(ttl, parent_ttl=3600, child_ttl=60)
    assert buckets.total == 6
    assert buckets.above_parent == 1
    assert buckets.parent_exact == 1
    assert buckets.between == 1
    assert buckets.child_exact == 1
    assert buckets.below_child == 2


def test_majority_honors_child_ttl(glue_result):
    # Paper Table 5: ~95% of answers carry the child's (authoritative)
    # TTL for both NS and A records.
    assert glue_result.ns_buckets.child_fraction > 0.85
    assert glue_result.a_buckets.child_fraction > 0.85


def test_minority_serves_parent_ttl(glue_result):
    # A visible minority (serve-glue resolvers) returns the parent's TTL.
    parentish = (
        glue_result.ns_buckets.parent_exact + glue_result.ns_buckets.between
    )
    assert parentish > 0


def test_no_ttls_above_parent(glue_result):
    assert glue_result.ns_buckets.above_parent == 0
    assert glue_result.a_buckets.above_parent == 0


def test_rows_shape(glue_result):
    rows = glue_result.ns_buckets.as_rows()
    assert rows[0][0] == "Total Answers"
    assert rows[0][1] == glue_result.ns_buckets.total


@pytest.mark.parametrize("software", ["bind", "unbound"])
def test_cache_dump_stores_child_value(software):
    result = run_cache_dump_study(software)
    assert result.answered
    assert result.stored_child_value
    # The dump contains the child's NS entry marked authoritative (the
    # parent's referral NS for com. is cached too, as glue credibility).
    ns_rows = [
        row for row in result.dump if row[1] == "NS" and row[0] == "amazon.com."
    ]
    assert ns_rows and ns_rows[0][3] is True


def test_cache_dump_unknown_software_rejected():
    with pytest.raises(ValueError):
        run_cache_dump_study("powerdns")
