"""Unit tests for the authoritative server process."""

from repro.dnscore.message import make_query
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import Rcode, RRType
from repro.netem.link import ConstantLatency
from repro.netem.transport import Network
from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import ZoneSpec, build_hierarchy
from repro.servers.querylog import QueryLog
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


class Collector:
    """A network endpoint that stores every packet it receives."""

    def __init__(self, sim, network, address):
        self.packets = []
        network.register(address, self.packets.append)
        self.address = address
        self.network = network

    def query(self, server, qname, qtype):
        message = make_query(qname, qtype)
        self.network.send(self.address, server, message)
        return message


def build_world(**server_kwargs):
    sim = Simulator()
    network = Network(sim, RandomStreams(3), latency=ConstantLatency(0.001))
    zones = build_hierarchy(
        [
            ZoneSpec(".", {"a.root-servers.test.": "193.0.0.1"}),
            ZoneSpec("nl.", {"ns1.dns.nl.": "193.0.1.1"}),
        ]
    )
    log = QueryLog()
    server = AuthoritativeServer(
        sim,
        network,
        "193.0.1.1",
        [zones[Name.from_text("nl.")]],
        name="nl",
        query_log=log,
        **server_kwargs,
    )
    client = Collector(sim, network, "10.0.0.1")
    return sim, server, client, log


def test_authoritative_answer():
    sim, server, client, log = build_world()
    client.query("193.0.1.1", Name.from_text("nl."), RRType.NS)
    sim.run()
    response = client.packets[0].message
    assert response.qr and response.aa
    assert response.rcode == Rcode.NOERROR
    assert response.answers


def test_nxdomain_response():
    sim, server, client, _ = build_world()
    client.query("193.0.1.1", Name.from_text("missing.nl."), RRType.A)
    sim.run()
    assert client.packets[0].message.rcode == Rcode.NXDOMAIN


def test_out_of_zone_refused():
    sim, server, client, _ = build_world()
    client.query("193.0.1.1", Name.from_text("example.com."), RRType.A)
    sim.run()
    assert client.packets[0].message.rcode == Rcode.REFUSED


def test_query_logged_even_when_disabled():
    sim, server, client, log = build_world(enabled=False)
    client.query("193.0.1.1", Name.from_text("nl."), RRType.NS)
    sim.run()
    assert len(log) == 1
    assert client.packets == []  # disabled server blackholes


def test_response_id_matches_query():
    sim, server, client, _ = build_world()
    query = client.query("193.0.1.1", Name.from_text("nl."), RRType.NS)
    sim.run()
    assert client.packets[0].message.msg_id == query.msg_id


def test_responses_ignored():
    sim, server, client, _ = build_world()
    from repro.dnscore.message import make_response

    bogus = make_response(make_query(Name.from_text("nl."), RRType.NS))
    client.network.send(client.address, "193.0.1.1", bogus)
    sim.run()
    assert server.queries_received == 0
    assert client.packets == []


def test_most_specific_zone_selected():
    sim = Simulator()
    network = Network(sim, RandomStreams(3), latency=ConstantLatency(0.001))
    zones = build_hierarchy(
        [
            ZoneSpec(".", {"a.root-servers.test.": "193.0.0.1"}),
            ZoneSpec("nl.", {"ns1.dns.nl.": "193.0.0.1"}),
        ]
    )
    server = AuthoritativeServer(
        sim, network, "193.0.0.1", list(zones.values()), name="multi"
    )
    client = Collector(sim, network, "10.0.0.2")
    client.query("193.0.0.1", Name.from_text("nl."), RRType.SOA)
    sim.run()
    response = client.packets[0].message
    # Served from the nl zone (authoritative), not a root referral.
    assert response.aa
    assert response.answers[0].name == Name.from_text("nl.")


def test_processing_delay_applied():
    sim, server, client, _ = build_world(processing_delay=0.5)
    client.query("193.0.1.1", Name.from_text("nl."), RRType.NS)
    sim.run()
    # 1 ms out + 500 ms processing + 1 ms back.
    assert sim.now >= 0.502


def test_counters():
    sim, server, client, _ = build_world()
    client.query("193.0.1.1", Name.from_text("nl."), RRType.NS)
    client.query("193.0.1.1", Name.from_text("ns1.dns.nl."), RRType.A)
    sim.run()
    assert server.queries_received == 2
    assert server.responses_sent == 2
