"""Stateful property test: DnsCache against a brute-force model.

Hypothesis drives random sequences of put/get/advance/flush against
both the real cache and a dictionary model that recomputes freshness
from first principles; any divergence in hit/miss behavior or returned
TTLs is a bug.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.dnscore.name import Name
from repro.dnscore.records import A, ResourceRecord, RRset
from repro.dnscore.rrtypes import RRType
from repro.resolvers.cache import CacheConfig, DnsCache

NAMES = [Name.from_text(f"n{i}.test.") for i in range(5)]
MAX_TTL_CAP = 500


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = DnsCache(CacheConfig(max_ttl=MAX_TTL_CAP, stale_window=0.0))
        self.now = 0.0
        # name-index -> (insert_time, stored_ttl, address, authoritative)
        self.model = {}

    @rule(
        index=st.integers(0, len(NAMES) - 1),
        ttl=st.integers(0, 1000),
        octet=st.integers(1, 254),
        authoritative=st.booleans(),
    )
    def put(self, index, ttl, octet, authoritative):
        name = NAMES[index]
        rrset = RRset([ResourceRecord(name, ttl, A(f"192.0.2.{octet}"))])
        self.cache.put(rrset, self.now, authoritative=authoritative)
        stored = min(ttl, MAX_TTL_CAP)
        existing = self.model.get(index)
        blocked = (
            existing is not None
            and existing[3]
            and not authoritative
            and existing[0] + existing[1] > self.now
        )
        if not blocked:
            self.model[index] = (self.now, stored, octet, authoritative)

    @rule(index=st.integers(0, len(NAMES) - 1), require=st.booleans())
    def get(self, index, require):
        name = NAMES[index]
        actual = self.cache.get(
            name, RRType.A, self.now, require_authoritative=require
        )
        expected = self.model.get(index)
        if expected is not None:
            insert_time, stored, octet, authoritative = expected
            fresh = self.now < insert_time + stored
            visible = fresh and (authoritative or not require)
        else:
            visible = False
        if visible:
            assert actual is not None, f"model hit, cache miss for {name}"
            assert actual.records[0].rdata.address == f"192.0.2.{octet}"
            remaining = actual.ttl
            assert 0 <= remaining <= stored
            assert remaining <= insert_time + stored - self.now + 1
        else:
            # The cache may miss for credibility reasons even when a
            # non-authoritative fresh entry exists.
            if actual is not None:
                assert expected is not None
                insert_time, stored, octet, authoritative = expected
                assert self.now < insert_time + stored

    @rule(step=st.floats(min_value=0.0, max_value=300.0, allow_nan=False))
    def advance(self, step):
        self.now += step

    @rule()
    def flush(self):
        self.cache.flush()
        self.model.clear()

    @invariant()
    def size_is_bounded(self):
        assert len(self.cache) <= len(NAMES)


CacheMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestCacheStateful = CacheMachine.TestCase
