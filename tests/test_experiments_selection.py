"""Tests for the authoritative-selection study ([27], §8)."""

import pytest

from repro.core.experiments.selection_study import run_selection_study


@pytest.fixture(scope="module")
def normal():
    return run_selection_study(resolutions=120, seed=9)


@pytest.fixture(scope="module")
def fast_dead():
    return run_selection_study(resolutions=120, kill_fast=True, seed=9)


def test_low_latency_server_preferred(normal):
    assert normal.fast_share > 0.7


def test_slow_server_still_probed(normal):
    """Recursives keep querying all authoritatives for diversity [27]."""
    assert normal.slow_queries > 0


def test_all_resolutions_succeed(normal):
    assert normal.successes == normal.resolutions


def test_failover_to_surviving_server(fast_dead):
    """Resilience matches the strongest authoritative (§8): with the
    preferred server dead, everything lands on the survivor and clients
    still succeed."""
    assert fast_dead.successes == fast_dead.resolutions
    # The delivered log shows only the survivor answering.
    assert fast_dead.fast_queries == 0
    assert fast_dead.slow_queries >= fast_dead.resolutions


def test_preference_scales_with_latency_gap():
    close = run_selection_study(
        fast_latency=0.020, slow_latency=0.025, resolutions=120, seed=9
    )
    wide = run_selection_study(
        fast_latency=0.005, slow_latency=0.200, resolutions=120, seed=9
    )
    assert wide.fast_share >= close.fast_share
