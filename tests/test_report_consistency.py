"""Consistency checks on the report builder's paper-value tables."""

from repro.analysis.report import (
    PAPER_AMP,
    PAPER_FAIL,
    PAPER_MISS,
    PAPER_SOFTWARE,
)
from repro.core.experiments import BASELINE_EXPERIMENTS, DDOS_EXPERIMENTS


def test_paper_miss_covers_every_baseline():
    assert set(PAPER_MISS) == set(BASELINE_EXPERIMENTS)


def test_paper_failures_reference_real_experiments():
    assert set(PAPER_FAIL) <= set(DDOS_EXPERIMENTS)
    assert set(PAPER_AMP) <= set(DDOS_EXPERIMENTS)


def test_paper_software_covers_both_conditions():
    assert set(PAPER_SOFTWARE) == {
        ("bind", False),
        ("bind", True),
        ("unbound", False),
        ("unbound", True),
    }


def test_benchmark_paper_values_match_report_values():
    """The benches and the report must quote the same paper numbers."""
    import importlib.util
    import pathlib
    import sys

    bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        spec = importlib.util.spec_from_file_location(
            "bench_fig03", bench_dir / "test_bench_fig03.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    finally:
        sys.path.pop(0)
    for key, fraction in module.PAPER_MISS.items():
        assert PAPER_MISS[key] == f"{fraction:.1%}"
