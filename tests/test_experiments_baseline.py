"""Integration tests for the §3 baseline experiment runner (small scale)."""

import pytest

from repro.core.experiments import BASELINE_EXPERIMENTS, BaselineSpec, run_baseline


@pytest.fixture(scope="module")
def baseline_1800():
    return run_baseline(BASELINE_EXPERIMENTS["1800"], probe_count=150, seed=3)


def test_specs_match_paper_parameters():
    assert set(BASELINE_EXPERIMENTS) == {"60", "1800", "3600", "86400", "3600-10m"}
    assert BASELINE_EXPERIMENTS["60"].probe_interval == 1200.0
    assert BASELINE_EXPERIMENTS["3600-10m"].probe_interval == 600.0
    assert BASELINE_EXPERIMENTS["3600-10m"].ttl == 3600


def test_dataset_accounting_consistent(baseline_1800):
    dataset = baseline_1800.dataset
    assert dataset.probes == 150
    assert dataset.probes_valid + dataset.probes_discarded == dataset.probes
    assert dataset.answers <= dataset.queries
    assert dataset.answers_valid + dataset.answers_discarded == dataset.answers
    # VPs ≈ 1.65 per probe.
    assert dataset.vps > dataset.probes


def test_most_probes_answer(baseline_1800):
    dataset = baseline_1800.dataset
    assert dataset.probes_valid / dataset.probes > 0.9
    assert dataset.answers / dataset.queries > 0.9


def test_miss_rate_in_paper_band(baseline_1800):
    # Paper: 32.6% at TTL 1800; allow a generous band at small scale.
    assert 0.20 < baseline_1800.miss_rate < 0.45


def test_classification_balances(baseline_1800):
    table = baseline_1800.table2
    assert table.subsequent + table.warmup + table.one_answer_vps == (
        table.answers_valid
    )
    assert table.ac == table.ac_ttl_as_zone + table.ac_ttl_altered


def test_miss_attribution_sums(baseline_1800):
    table3 = baseline_1800.table3
    assert table3.ac_total == baseline_1800.table2.ac
    assert table3.public_r1 + table3.non_public_r1 == table3.ac_total
    assert table3.google_r1 + table3.other_public_r1 == table3.public_r1
    assert table3.google_rn + table3.other_rn == table3.non_public_r1


def test_public_resolvers_dominate_misses(baseline_1800):
    table3 = baseline_1800.table3
    # Paper: about half of misses enter at public R1s, most Google-like.
    assert table3.public_r1 > 0.3 * table3.ac_total
    assert table3.google_r1 > 0.5 * table3.public_r1


def test_class_timeseries_covers_rounds(baseline_1800):
    series = baseline_1800.class_timeseries()
    assert len(series) >= BASELINE_EXPERIMENTS["1800"].rounds - 1
    assert all(
        set(bucket) == {"AA", "AC", "CC", "CA"} for bucket in series.values()
    )


def test_ttl60_sees_no_cache_hits():
    result = run_baseline(BASELINE_EXPERIMENTS["60"], probe_count=80, seed=3)
    # With a 60 s TTL and 20-minute probing every entry expires between
    # rounds: virtually everything is AA (paper Figure 3, left bar).
    assert result.table2.cc <= result.table2.subsequent * 0.02
    assert result.miss_rate < 0.02


def test_custom_spec():
    spec = BaselineSpec("tiny", 600, 300.0, 3)
    result = run_baseline(spec, probe_count=50, seed=4)
    assert result.spec.duration == 900.0
    assert result.dataset.queries > 0
