"""Unit tests for SRTT-based server selection."""

import random

from repro.resolvers.selection import ServerSelector


def make_selector(seed=0) -> ServerSelector:
    return ServerSelector(random.Random(seed))


def test_unknown_servers_are_optimistic():
    selector = make_selector()
    selector.observe_rtt("slow", 0.5)
    ordered = selector.order(["slow", "unknown"])
    assert ordered[0] == "unknown"


def test_fast_server_preferred():
    selector = make_selector()
    selector.observe_rtt("fast", 0.01)
    selector.observe_rtt("slow", 0.5)
    # Run many selections; the fast server must win the vast majority
    # (exploration swaps a small fraction).
    wins = sum(
        1 for _ in range(200) if selector.pick(["fast", "slow"]) == "fast"
    )
    assert wins > 170


def test_timeout_penalty_demotes_server():
    selector = make_selector()
    selector.observe_rtt("a", 0.02)
    selector.observe_rtt("b", 0.03)
    selector.observe_timeout("b")
    assert selector.pick(["a", "b"]) == "a"
    assert selector.estimate("b") >= ServerSelector.TIMEOUT_PENALTY * 0.9


def test_repeated_timeouts_compound():
    selector = make_selector()
    selector.observe_timeout("x")
    first = selector.estimate("x")
    selector.observe_timeout("x")
    assert selector.estimate("x") > first


def test_decay_forgives_penalties():
    selector = make_selector()
    selector.observe_rtt("a", 0.02)
    selector.observe_timeout("b")
    for _ in range(500):
        selector.order(["a", "b"])
    # After decay, b's estimate has shrunk substantially from the penalty.
    assert selector.estimate("b") < ServerSelector.TIMEOUT_PENALTY


def test_ewma_blends_observations():
    selector = make_selector()
    selector.observe_rtt("s", 0.1)
    selector.observe_rtt("s", 0.2)
    assert 0.1 < selector.estimate("s") < 0.2


def test_exploration_happens_sometimes():
    selector = make_selector(seed=7)
    selector.observe_rtt("fast", 0.01)
    selector.observe_rtt("slow", 0.5)
    picks = {selector.pick(["fast", "slow"]) for _ in range(500)}
    assert picks == {"fast", "slow"}


def test_empty_server_list():
    selector = make_selector()
    assert selector.order([]) == []
    assert selector.pick([]) is None


def test_order_preserves_membership():
    selector = make_selector()
    servers = [f"s{i}" for i in range(5)]
    ordered = selector.order(servers)
    assert sorted(ordered) == sorted(servers)
