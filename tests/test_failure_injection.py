"""Failure-injection scenarios: outages, flushes, and partial deaths."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.netem.attack import AttackWindow
from repro.resolvers.cache import CacheConfig
from repro.resolvers.pool import PoolConfig, PublicResolverPool
from repro.resolvers.recursive import Outcome, RecursiveResolver, ResolverConfig
from repro.resolvers.stub import StubAnswer, StubResolver

QNAME = Name.from_text("1414.cachetest.nl.")


def test_administrative_outage_and_recovery(world):
    """Disable both authoritatives (not an attack: a config push), then
    re-enable; clients fail in between and recover afterwards."""
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints,
        config=ResolverConfig(servfail_cache_ttl=0.0),
    )
    outcomes = []

    def disable():
        world.at1.enabled = False
        world.at2.enabled = False

    def enable():
        world.at1.enabled = True
        world.at2.enabled = True

    world.sim.at(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.at(10.0, disable)
    other = Name.from_text("1500.cachetest.nl.")
    world.sim.at(11.0, resolver.resolve, other, RRType.AAAA, outcomes.append)
    world.sim.at(60.0, enable)
    world.sim.at(61.0, resolver.resolve, other, RRType.AAAA, outcomes.append)
    world.sim.run(until=120.0)
    assert [outcome.status for outcome in outcomes] == [
        Outcome.OK,
        Outcome.SERVFAIL,
        Outcome.OK,
    ]


def test_cache_flush_mid_attack_destroys_protection(world):
    """A resolver restart during a full outage turns cached success into
    failure — the paper's point that protection depends on cache state
    the operator does not control."""
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    outcomes = []
    world.sim.at(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.at(
        30.0,
        world.attacks.add,
        AttackWindow(world.target_addresses, 30.0, 1e6, 1.0),
    )
    # Query during the outage with a warm cache: served.
    world.sim.at(60.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    # Restart (flush), then the same query fails.
    world.sim.at(90.0, resolver.flush_caches)
    world.sim.at(91.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=180.0)
    assert [outcome.status for outcome in outcomes] == [
        Outcome.OK,
        Outcome.OK,
        Outcome.SERVFAIL,
    ]
    assert outcomes[1].from_cache


def test_pool_with_dead_backend_fails_a_share_of_queries(world):
    """Public pools without health checks hand a share of queries to a
    dead backend: those clients see failures while others are fine."""
    import random

    backends = [f"8.0.2.{index}" for index in (1, 2)]
    pool = PublicResolverPool(
        world.sim,
        world.network,
        "198.18.0.5",
        backends,
        world.root_hints,
        config=PoolConfig(backend_count=2, balancing="random"),
        name="pool",
        rng=random.Random(4),
        backend_config_factory=lambda index: ResolverConfig(
            retry=__import__(
                "repro.resolvers.retry", fromlist=["bind_profile"]
            ).bind_profile()
        ),
    )
    # Kill backend 0: unregister its address so its upstream exchanges
    # blackhole (a crashed machine still selected by the balancer).
    world.network.unregister(backends[0])

    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.9", 77, ["198.18.0.5"], results
    )
    qname = Name.from_text("77.cachetest.nl.")
    for round_index in range(12):
        world.sim.at(round_index * 30.0, stub.query_one, qname, RRType.AAAA, round_index, "198.18.0.5")
    world.sim.run(until=500.0)
    ok = sum(1 for answer in results if answer.status == StubAnswer.OK)
    failed = len(results) - ok
    assert ok > 0, "healthy backend never served"
    assert failed > 0, "dead backend never selected"


def test_zone_rotation_during_inflight_resolution(world):
    """A serial bump between query and answer must not corrupt anything;
    the answer carries whichever serial the authoritative held when it
    answered."""
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    outcomes = []
    world.sim.at(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    # Rotate the zone while the walk is in flight (~15 ms in).
    world.sim.at(0.015, world.test_zone.set_serial, 2)
    world.sim.run(until=10.0)
    assert outcomes[0].is_success
    serial, _probe, _ttl = outcomes[0].records[0].rdata.fields()
    assert serial in (1, 2)


def test_churn_storm_during_attack_still_terminates(world):
    """Flushing every cache repeatedly during a DDoS must not wedge the
    resolver (no stuck tasks, no unbounded pending queries)."""
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints,
        config=ResolverConfig(servfail_cache_ttl=0.0),
    )
    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 1e6, 0.9))
    outcomes = []
    for step in range(10):
        world.sim.at(step * 20.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
        world.sim.at(step * 20.0 + 5.0, resolver.flush_caches)
    world.sim.run(until=400.0)
    assert len(outcomes) == 10
    assert resolver._pending == {}
    assert all(task.done for task in resolver._tasks.values()) or not resolver._tasks


def test_tiny_cache_eviction_under_load(world):
    """A small cache still resolves; it just refetches. (The cache must
    at least hold one delegation chain — NS plus glue — or iteration
    starves; 5 entries is the practical floor for this tree.)"""
    config = ResolverConfig(cache=CacheConfig(max_entries=5))
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, config=config
    )
    outcomes = []
    for index in range(6):
        qname = Name.from_text(f"{3000 + index}.cachetest.nl.")
        world.sim.at(index * 5.0, resolver.resolve, qname, RRType.AAAA, outcomes.append)
    world.sim.run(until=120.0)
    assert all(outcome.is_success for outcome in outcomes)
    assert resolver.cache.evictions > 0
