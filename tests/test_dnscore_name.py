"""Unit and property tests for domain names."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnscore.name import Name, NameError_, root_name

LABEL = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=20,
)
NAMES = st.lists(LABEL, min_size=0, max_size=5).map(Name)


def test_root_renders_as_dot():
    assert root_name().to_text() == "."
    assert str(Name(())) == "."


def test_from_text_absolute_and_relative_equal():
    assert Name.from_text("www.example.nl") == Name.from_text("www.example.nl.")


def test_case_insensitive_equality_and_hash():
    lower = Name.from_text("www.example.nl.")
    mixed = Name.from_text("WWW.Example.NL.")
    assert lower == mixed
    assert hash(lower) == hash(mixed)


def test_original_spelling_preserved():
    assert Name.from_text("WWW.Example.NL.").to_text() == "WWW.Example.NL."


def test_parent_and_child():
    name = Name.from_text("a.b.c.")
    assert name.parent() == Name.from_text("b.c.")
    assert Name.from_text("b.c.").child("a") == name


def test_root_has_no_parent():
    with pytest.raises(NameError_):
        root_name().parent()


def test_subdomain_relationships():
    zone = Name.from_text("cachetest.nl.")
    assert Name.from_text("1414.cachetest.nl.").is_subdomain_of(zone)
    assert zone.is_subdomain_of(zone)
    assert zone.is_subdomain_of(root_name())
    assert not Name.from_text("cachetest.net.").is_subdomain_of(zone)
    assert not Name.from_text("nl.").is_subdomain_of(zone)


def test_subdomain_does_not_match_partial_label():
    # evilcachetest.nl is NOT under cachetest.nl
    assert not Name.from_text("evilcachetest.nl.").is_subdomain_of(
        Name.from_text("cachetest.nl.")
    )


def test_relativize():
    zone = Name.from_text("cachetest.nl.")
    assert Name.from_text("a.b.cachetest.nl.").relativize(zone) == ("a", "b")
    with pytest.raises(NameError_):
        Name.from_text("a.example.com.").relativize(zone)


def test_ancestors_order():
    name = Name.from_text("a.b.nl.")
    chain = [str(ancestor) for ancestor in name.ancestors()]
    assert chain == ["a.b.nl.", "b.nl.", "nl.", "."]


def test_empty_label_rejected():
    with pytest.raises(NameError_):
        Name.from_text("a..b.")
    with pytest.raises(NameError_):
        Name(("a", "", "b"))


def test_label_length_limit():
    Name(("a" * 63,))
    with pytest.raises(NameError_):
        Name(("a" * 64,))


def test_total_length_limit():
    # 5 labels of 63 bytes = 320 octets on the wire: too long.
    with pytest.raises(NameError_):
        Name(tuple("a" * 63 for _ in range(5)))


def test_canonical_ordering_compares_from_rightmost_label():
    assert Name.from_text("a.nl.") < Name.from_text("b.nl.")
    assert Name.from_text("z.aa.") < Name.from_text("a.bb.")


def test_len_counts_labels():
    assert len(root_name()) == 0
    assert len(Name.from_text("a.b.c.")) == 3


@given(NAMES)
def test_property_text_roundtrip(name):
    assert Name.from_text(name.to_text()) == name


@given(NAMES, LABEL)
def test_property_child_parent_inverse(name, label):
    try:
        child = name.child(label)
    except NameError_:
        return  # exceeded length limits
    assert child.parent() == name
    assert child.is_subdomain_of(name)


@given(NAMES, NAMES)
def test_property_subdomain_antisymmetry(a, b):
    if a.is_subdomain_of(b) and b.is_subdomain_of(a):
        assert a == b


@given(NAMES)
def test_property_ancestors_end_at_root(name):
    chain = list(name.ancestors())
    assert chain[0] == name
    assert chain[-1].is_root
    assert len(chain) == len(name) + 1
