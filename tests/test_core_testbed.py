"""Unit tests for the assembled testbed."""

import pytest

from repro.clients.population import PopulationConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType


def small_testbed(**kwargs) -> Testbed:
    population = kwargs.pop("population", PopulationConfig(probe_count=40))
    return Testbed(TestbedConfig(population=population, **kwargs))


def test_construction_wires_zone_tree():
    testbed = small_testbed()
    assert testbed.origin == Name.from_text("cachetest.nl.")
    assert len(testbed.root_servers) == 2
    assert len(testbed.tld_servers) == 2
    assert len(testbed.test_servers) == 2
    assert len(testbed.root_hints) == 2
    # The test zone delegated from the TLD.
    tld_zone = testbed.zones[Name.from_text("nl.")]
    assert testbed.origin in tld_zone.delegations()


def test_rotation_bumps_serial_every_interval():
    testbed = small_testbed()
    testbed.schedule_rotations(1900.0)
    testbed.run(1900.0, grace=0.0)
    # After 1800+ seconds: serial bumped at 600, 1200, 1800.
    assert testbed.test_zone.serial == 4
    assert testbed.rotation.serial_at(1900.0) == 4


def test_attack_targets_selection():
    testbed = small_testbed()
    window = testbed.add_attack(600.0, 600.0, 0.9, servers="both")
    assert window.targets == frozenset(testbed.test_server_addresses)
    one = testbed.add_attack(600.0, 600.0, 0.5, servers="one")
    assert one.targets == frozenset([testbed.test_server_addresses[0]])
    with pytest.raises(ValueError):
        testbed.add_attack(0.0, 1.0, 0.5, servers="three")


def test_offered_tap_counts_dropped_queries():
    testbed = small_testbed()
    testbed.add_attack(0.0, 3600.0, 1.0)
    testbed.schedule_probing(0.0, 600.0, 1, spread=10.0)
    testbed.run(120.0)
    # Nothing delivered, but offered queries were recorded.
    assert len(testbed.query_log) == 0
    assert len(testbed.offered_query_log) > 0


def test_probing_round_produces_vp_results():
    testbed = small_testbed()
    testbed.schedule_probing(0.0, 600.0, 2, spread=10.0)
    testbed.run(1200.0)
    results = testbed.population.results
    assert len(results) == 2 * testbed.population.vp_count


def test_zone_ttl_config_flows_to_answers():
    testbed = small_testbed(zone_ttl=300)
    testbed.schedule_probing(0.0, 600.0, 1, spread=5.0)
    testbed.run(60.0)
    ok = [answer for answer in testbed.population.results if answer.is_success]
    assert ok, "no successful answers"
    assert all(answer.encoded_ttl == 300 for answer in ok)


def test_delegation_ttl_override():
    testbed = small_testbed(zone_ttl=60, delegation_ttl=3600)
    tld_zone = testbed.zones[Name.from_text("nl.")]
    referral = tld_zone.lookup(
        Name.from_text("x.cachetest.nl."), RRType.AAAA
    )
    assert referral.authority[0].ttl == 3600
    own = testbed.test_zone.lookup(testbed.origin, RRType.NS)
    assert own.answers[0].ttl == 60


def test_churn_scheduling_runs():
    population = PopulationConfig(probe_count=40, flush_rate_per_hour=50.0)
    testbed = small_testbed(population=population)
    scheduled = testbed.schedule_churn(600.0)
    assert scheduled > 0
    testbed.run(600.0)  # flushes execute without error


def test_seed_determinism_end_to_end():
    def run_once():
        testbed = small_testbed(seed=77)
        testbed.schedule_rotations(600.0)
        testbed.schedule_probing(0.0, 600.0, 1, spread=30.0)
        testbed.run(600.0)
        return [
            (answer.probe_id, answer.resolver, answer.status, answer.serial)
            for answer in testbed.population.results
        ]

    assert run_once() == run_once()
