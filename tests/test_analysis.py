"""Unit tests for presentation helpers: ECDF, tables, figure renderers."""

import pytest

from repro.analysis.ecdf import Ecdf
from repro.analysis.figures import render_series, render_timeseries_table, sparkline
from repro.analysis.tables import render_kv_table, render_matrix


def test_ecdf_at_and_quantile():
    ecdf = Ecdf([1.0, 2.0, 3.0, 4.0])
    assert ecdf.at(0.5) == 0.0
    assert ecdf.at(2.0) == 0.5
    assert ecdf.at(4.0) == 1.0
    assert ecdf.quantile(0.0) == 1.0
    assert ecdf.quantile(1.0) == 4.0
    assert ecdf.quantile(0.5) in (2.0, 3.0)


def test_ecdf_rejects_empty_and_bad_quantile():
    with pytest.raises(ValueError):
        Ecdf([])
    with pytest.raises(ValueError):
        Ecdf([1.0]).quantile(1.5)


def test_ecdf_points_monotone():
    ecdf = Ecdf([1.0, 5.0, 9.0, 9.0, 10.0])
    points = ecdf.points(10)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert ys[-1] == 1.0


def test_ecdf_points_degenerate_sample():
    assert Ecdf([3.0, 3.0]).points() == [(3.0, 1.0)]


def test_render_kv_table_with_paper_column():
    text = render_kv_table(
        "Table X", [("AA", 10), ("CC", 20)], paper={"AA": 12}
    )
    assert "Table X" in text
    assert "measured" in text and "paper" in text
    assert "12" in text and "20" in text


def test_render_matrix_alignment():
    text = render_matrix(
        "M", ["c1", "c2"], [("row1", [1, 2]), ("row2", [3, 4])]
    )
    lines = text.splitlines()
    assert lines[0] == "M"
    assert "c1" in lines[2] and "c2" in lines[2]
    assert "row1" in lines[3]


def test_render_timeseries_table_marks_attack_rounds():
    series = {0: {"ok": 5}, 1: {"ok": 2}}
    text = render_timeseries_table(
        "F", series, ["ok"], attack_rounds=[1]
    )
    lines = text.splitlines()
    assert lines[-1].endswith("*")
    assert not lines[-2].endswith("*")


def test_render_series_formats_floats_and_ints():
    text = render_series("S", [(1, 2.5), (2, 3.0)], ["round", "value"])
    assert "2.5" in text
    assert "round" in text


def test_sparkline_shapes():
    line = sparkline([0, 1, 2, 3, 4])
    assert len(line) == 5
    assert line[0] == " " or line[0] == "▁"
    assert line[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([0, 0]) == "  "
