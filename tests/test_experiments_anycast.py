"""Tests for the anycast-site study (§8 mechanics)."""

import pytest

from repro.core.experiments.anycast_study import AnycastSpec, run_anycast_study


@pytest.fixture(scope="module")
def plain():
    return run_anycast_study(probe_count=200, seed=5)


@pytest.fixture(scope="module")
def withdrawn():
    return run_anycast_study(
        AnycastSpec(withdraw_after_min=20), probe_count=200, seed=5
    )


def test_catchments_partition_direct_vps(plain):
    assert plain.answers_attacked_catchment
    assert plain.answers_healthy_catchment
    # Sites: 6 total, 3 attacked.
    assert len(plain.site_addresses) == 6
    assert len(plain.attacked_addresses) == 3


def test_attack_is_uneven_across_catchments(plain):
    """The paper's root-event observation: some catchments suffer badly,
    others see little or nothing."""
    attacked = plain.failure_during_attack("attacked")
    healthy = plain.failure_during_attack("healthy")
    assert attacked > healthy + 0.1
    assert healthy < 0.1


def test_attacked_catchment_cannot_fail_over(plain):
    """One anycast NS address = no alternative server to hunt for: the
    attacked catchment keeps a substantial failure level (contrast with
    Experiment H where two nameserver addresses exist)."""
    assert plain.failure_during_attack("attacked") > 0.15


def test_withdrawal_rescues_attacked_catchment(plain, withdrawn):
    """Route withdrawal re-homes clients onto healthy sites."""
    assert (
        withdrawn.failure_during_attack("attacked")
        < plain.failure_during_attack("attacked") - 0.08
    )
    series = withdrawn.outcomes_by_round("attacked")
    # After withdrawal (minute 80 = round 8): recovered.
    late = series[9]
    assert late["ok"] / sum(late.values()) > 0.9


def test_recovery_after_attack(plain):
    series = plain.outcomes_by_round("attacked")
    last = series[max(series)]
    assert last["ok"] / sum(last.values()) > 0.9


def test_invalid_spec_rejected():
    with pytest.raises(ValueError):
        run_anycast_study(
            AnycastSpec(site_count=3, attacked_sites=3), probe_count=50
        )
