"""Unit tests for latency models."""

import random

import pytest

from repro.netem.link import (
    ConstantLatency,
    PairwiseLatency,
    PerHostLatency,
    draw_authoritative_base,
    draw_client_base,
    draw_recursive_base,
)


def test_constant_latency():
    model = ConstantLatency(0.025)
    assert model.one_way("a", "b", random.Random(0)) == 0.025


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1.0)


def test_per_host_latency_sums_endpoint_bases():
    model = PerHostLatency(default_base=0.01, jitter=0.0)
    model.set_base("client", 0.002)
    model.set_base("server", 0.020)
    assert model.one_way("client", "server", random.Random(0)) == pytest.approx(
        0.022
    )
    # Unknown hosts fall back to the default base.
    assert model.one_way("client", "mystery", random.Random(0)) == pytest.approx(
        0.012
    )


def test_per_host_latency_jitter_bounded():
    model = PerHostLatency(default_base=0.01, jitter=0.5)
    rng = random.Random(1)
    base = 0.02
    for _ in range(200):
        delay = model.one_way("a", "b", rng)
        assert base <= delay <= base * 1.5 + 1e-12


def test_per_host_rejects_negative_base():
    model = PerHostLatency()
    with pytest.raises(ValueError):
        model.set_base("x", -0.01)


def test_pairwise_latency():
    model = PairwiseLatency(default=0.05)
    model.set_pair("a", "b", 0.001)
    rng = random.Random(0)
    assert model.one_way("a", "b", rng) == 0.001
    assert model.one_way("b", "a", rng) == 0.001  # symmetric by default
    assert model.one_way("a", "c", rng) == 0.05


def test_pairwise_asymmetric():
    model = PairwiseLatency()
    model.set_pair("a", "b", 0.001, symmetric=False)
    rng = random.Random(0)
    assert model.one_way("a", "b", rng) == 0.001
    assert model.one_way("b", "a", rng) == model.default


def test_base_draws_in_sane_ranges():
    rng = random.Random(42)
    for _ in range(300):
        assert 0.0 < draw_client_base(rng) <= 0.050
        assert 0.0 < draw_recursive_base(rng) <= 0.080
        assert 0.0 < draw_authoritative_base(rng) <= 0.120


def test_authoritative_bases_generally_larger_than_client():
    rng = random.Random(42)
    clients = sum(draw_client_base(rng) for _ in range(500)) / 500
    auths = sum(draw_authoritative_base(rng) for _ in range(500)) / 500
    assert auths > clients
