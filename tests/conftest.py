"""Shared fixtures: a small wired DNS world for resolver-level tests."""

from __future__ import annotations

import pytest

from repro.dnscore.name import Name
from repro.netem.attack import AttackSchedule
from repro.netem.link import ConstantLatency
from repro.netem.transport import Network
from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import (
    PROBE_ANSWER_PREFIX,
    ZoneSpec,
    attach_probe_synthesizer,
    build_hierarchy,
)
from repro.servers.querylog import QueryLog
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator


class MiniWorld:
    """A root → nl → cachetest.nl world with two target authoritatives.

    Latency is a constant 10 ms one way, no baseline loss, so tests can
    reason about exact timings. ``attacks`` is mutable for DDoS tests.
    """

    ROOT = "193.0.0.1"
    TLD = "193.0.1.1"
    AT1 = "192.0.2.1"
    AT2 = "192.0.2.2"

    def __init__(self, zone_ttl: int = 3600, negative_ttl: int = 60) -> None:
        self.sim = Simulator()
        self.streams = RandomStreams(1234)
        self.attacks = AttackSchedule()
        self.network = Network(
            self.sim,
            self.streams,
            latency=ConstantLatency(0.01),
            attacks=self.attacks,
        )
        self.zone_ttl = zone_ttl
        specs = [
            ZoneSpec(".", {"a.root-servers.test.": self.ROOT}),
            ZoneSpec("nl.", {"ns1.dns.nl.": self.TLD}),
            ZoneSpec(
                "cachetest.nl.",
                {
                    "ns1.cachetest.nl.": self.AT1,
                    "ns2.cachetest.nl.": self.AT2,
                },
                ns_ttl=zone_ttl,
                a_ttl=zone_ttl,
                negative_ttl=negative_ttl,
            ),
        ]
        self.zones = build_hierarchy(specs)
        self.origin = Name.from_text("cachetest.nl.")
        self.test_zone = self.zones[self.origin]
        attach_probe_synthesizer(self.test_zone, PROBE_ANSWER_PREFIX, zone_ttl)
        self.query_log = QueryLog()
        self.parent_log = QueryLog()
        self.root_server = AuthoritativeServer(
            self.sim,
            self.network,
            self.ROOT,
            [self.zones[Name(())]],
            name="root",
            query_log=self.parent_log,
        )
        self.tld_server = AuthoritativeServer(
            self.sim,
            self.network,
            self.TLD,
            [self.zones[Name.from_text("nl.")]],
            name="tld",
            query_log=self.parent_log,
        )
        self.at1 = AuthoritativeServer(
            self.sim,
            self.network,
            self.AT1,
            [self.test_zone],
            name="at1",
            query_log=self.query_log,
        )
        self.at2 = AuthoritativeServer(
            self.sim,
            self.network,
            self.AT2,
            [self.test_zone],
            name="at2",
            query_log=self.query_log,
        )
        self.root_hints = [self.ROOT]
        self.target_addresses = [self.AT1, self.AT2]


@pytest.fixture
def world() -> MiniWorld:
    return MiniWorld()


@pytest.fixture
def short_ttl_world() -> MiniWorld:
    return MiniWorld(zone_ttl=60)
