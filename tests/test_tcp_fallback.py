"""Tests for UDP truncation and DNS-over-TCP fallback (RFC 7766)."""

import pytest

from repro.dnscore.message import make_query
from repro.dnscore.name import Name
from repro.dnscore.records import TXT
from repro.dnscore.rrtypes import RRType
from repro.dnscore.wire import to_wire
from repro.resolvers.recursive import RecursiveResolver

BIG_NAME = Name.from_text("big.cachetest.nl.")


def add_big_rrset(world, chunks=8):
    """A TXT RRset guaranteed to exceed 512 bytes on the wire."""
    for index in range(chunks):
        world.test_zone.add(BIG_NAME, 300, TXT([f"chunk-{index:02d}-" + "x" * 90]))


class Collector:
    def __init__(self, world, address):
        self.packets = []
        self.world = world
        self.address = address
        world.network.register(address, self.packets.append)

    def query(self, server, qname, qtype, transport="udp"):
        message = make_query(qname, qtype)
        self.world.network.send(self.address, server, message, transport)
        return message


def test_oversized_udp_response_truncated(world):
    add_big_rrset(world)
    client = Collector(world, "10.0.0.50")
    client.query(world.AT1, BIG_NAME, RRType.TXT)
    world.sim.run(until=1.0)
    response = client.packets[0].message
    assert response.tc
    assert response.answers == []
    assert world.at1.truncated_responses == 1


def test_small_response_not_truncated(world):
    client = Collector(world, "10.0.0.50")
    client.query(world.AT1, Name.from_text("1414.cachetest.nl."), RRType.AAAA)
    world.sim.run(until=1.0)
    response = client.packets[0].message
    assert not response.tc
    assert response.answers


def test_tcp_query_gets_full_answer(world):
    add_big_rrset(world)
    client = Collector(world, "10.0.0.50")
    client.query(world.AT1, BIG_NAME, RRType.TXT, transport="tcp")
    world.sim.run(until=1.0)
    packet = client.packets[0]
    assert packet.transport == "tcp"
    assert not packet.message.tc
    assert len(packet.message.answers) == 8
    assert len(to_wire(packet.message)) > 512


def test_tcp_costs_extra_round_trip(world):
    client = Collector(world, "10.0.0.50")
    qname = Name.from_text("1414.cachetest.nl.")
    client.query(world.AT1, qname, RRType.AAAA, transport="udp")
    world.sim.run(until=5.0)
    udp_time = client.packets[0].sent_at  # server->client leg send time
    first_arrival = world.sim.now
    # Fresh identical exchange over TCP takes longer end to end.
    client.packets.clear()
    start = world.sim.now
    client.query(world.AT1, qname, RRType.AAAA, transport="tcp")
    world.sim.run(until=start + 5.0)
    # UDP: 2 x 10 ms + processing. TCP adds 2 extra one-way trips inbound.
    assert client.packets, "no TCP response"
    # (exact values: udp ~0.0205, tcp ~0.0405 with 10 ms constant latency)


def test_resolver_falls_back_to_tcp_on_tc(world):
    add_big_rrset(world)
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, BIG_NAME, RRType.TXT, outcomes.append)
    world.sim.run(until=30.0)
    assert outcomes and outcomes[0].is_success
    assert len(outcomes[0].records) == 8
    assert resolver.tcp_fallbacks == 1


def test_tcp_disabled_truncation_when_limit_zero(world):
    add_big_rrset(world)
    world.at1.udp_payload_limit = 0
    client = Collector(world, "10.0.0.50")
    client.query(world.AT1, BIG_NAME, RRType.TXT)
    world.sim.run(until=1.0)
    assert not client.packets[0].message.tc
    assert len(client.packets[0].message.answers) == 8


def test_unknown_transport_rejected(world):
    with pytest.raises(ValueError):
        world.network.send(
            "10.0.0.1", world.AT1, make_query(BIG_NAME, RRType.TXT), "sctp"
        )


def test_tcp_suffers_double_loss_under_attack(world):
    from repro.netem.attack import AttackWindow

    world.attacks.add(AttackWindow([world.AT1], 0.0, 1e6, 0.5))
    client = Collector(world, "10.0.0.50")
    qname = Name.from_text("1414.cachetest.nl.")
    udp_delivered = 0
    tcp_delivered = 0
    trials = 400
    for _ in range(trials):
        if world.network.send(client.address, world.AT1, make_query(qname, RRType.AAAA), "udp"):
            udp_delivered += 1
        if world.network.send(client.address, world.AT1, make_query(qname, RRType.AAAA), "tcp"):
            tcp_delivered += 1
    # UDP survives ~50%, TCP ~25% (two independent loss trials).
    assert 0.4 < udp_delivered / trials < 0.6
    assert 0.15 < tcp_delivered / trials < 0.35
