"""Unit tests for the event queue."""

from repro.simcore.events import EventQueue


def test_push_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(3.0, fired.append, (3,))
    queue.push(1.0, fired.append, (1,))
    queue.push(2.0, fired.append, (2,))
    order = []
    while (event := queue.pop()) is not None:
        order.append(event.time)
    assert order == [1.0, 2.0, 3.0]


def test_same_time_fifo_by_sequence():
    queue = EventQueue()
    first = queue.push(5.0, lambda: None)
    second = queue.push(5.0, lambda: None)
    assert queue.pop() is first
    assert queue.pop() is second


def test_cancel_skips_event():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: None)
    cancelled = queue.push(0.5, lambda: None)
    cancelled.cancel()
    assert queue.pop() is keep
    assert queue.pop() is None


def test_cancel_is_idempotent_and_len_accurate():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    event.cancel()
    event.cancel()
    assert len(queue) == 1


def test_cancel_after_pop_does_not_corrupt_count():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    popped = queue.pop()
    assert popped is event
    popped.cancel()  # late cancel of an already-fired event
    assert len(queue) == 1
    assert queue.pop() is not None
    assert len(queue) == 0


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(4.0, lambda: None)
    early.cancel()
    assert queue.peek_time() == 4.0


def test_peek_time_empty_queue():
    queue = EventQueue()
    assert queue.peek_time() is None
    assert queue.pop() is None


def test_event_carries_args():
    queue = EventQueue()
    received = []
    queue.push(1.0, lambda a, b: received.append((a, b)), (1, 2))
    event = queue.pop()
    event.callback(*event.args)
    assert received == [(1, 2)]


def test_cancel_releases_callback_and_args():
    # Cancelled events sit in the heap until popped (lazy deletion); the
    # closure and its arguments must not be pinned for that whole time.
    queue = EventQueue()
    payload = object()
    event = queue.push(1.0, lambda value: value, (payload,))
    event.cancel()
    assert event.callback is None
    assert event.args == ()


def test_pop_due_respects_limit():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    assert queue.pop_due(0.5) is None
    assert queue.pop_due(1.0) is first
    assert queue.pop_due(2.0) is None
    assert len(queue) == 1


def test_pop_due_skips_cancelled_and_drains():
    queue = EventQueue()
    cancelled = queue.push(1.0, lambda: None)
    keep = queue.push(2.0, lambda: None)
    cancelled.cancel()
    assert queue.pop_due(None) is keep
    assert queue.pop_due(None) is None
