"""Unit tests for the event queue, parametrized over every backend.

The queue is pluggable (binary heap reference, hierarchical timer
wheel, calendar queue, native C kernel when built); the ordering
contract — ``(time, seq)`` total order, FIFO within an instant, lazy
deletion, span terminators — is identical everywhere, so each test runs
against each available backend.
"""

import math

import pytest

from repro.simcore.events import (
    DEFAULT_QUEUE_BACKEND,
    QUEUE_BACKENDS,
    Event,
    EventQueue,
    make_queue,
    resolve_queue_backend,
)
from repro.simcore.simulator import SimulationError, Simulator

BACKENDS = sorted(QUEUE_BACKENDS)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def queue(backend):
    return make_queue(backend)


def test_push_pop_orders_by_time(queue):
    fired = []
    queue.push(3.0, fired.append, (3,))
    queue.push(1.0, fired.append, (1,))
    queue.push(2.0, fired.append, (2,))
    order = []
    while (event := queue.pop()) is not None:
        order.append(event.time)
    assert order == [1.0, 2.0, 3.0]


def test_same_time_fifo_by_sequence(queue):
    first = queue.push(5.0, lambda: None)
    second = queue.push(5.0, lambda: None)
    assert queue.pop() is first
    assert queue.pop() is second


def test_cancel_skips_event(queue):
    keep = queue.push(1.0, lambda: None)
    cancelled = queue.push(0.5, lambda: None)
    cancelled.cancel()
    assert queue.pop() is keep
    assert queue.pop() is None


def test_cancel_is_idempotent_and_len_accurate(queue):
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    event.cancel()
    event.cancel()
    assert len(queue) == 1


def test_cancel_after_pop_does_not_corrupt_count(queue):
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    popped = queue.pop()
    assert popped is event
    popped.cancel()  # late cancel of an already-fired event
    assert len(queue) == 1
    assert queue.pop() is not None
    assert len(queue) == 0


def test_peek_time_skips_cancelled(queue):
    early = queue.push(1.0, lambda: None)
    queue.push(4.0, lambda: None)
    early.cancel()
    assert queue.peek_time() == 4.0


def test_peek_time_empty_queue(queue):
    assert queue.peek_time() is None
    assert queue.pop() is None


def test_event_carries_args(queue):
    received = []
    queue.push(1.0, lambda a, b: received.append((a, b)), (1, 2))
    event = queue.pop()
    event.callback(*event.args)
    assert received == [(1, 2)]


def test_cancel_releases_callback_and_args(queue):
    # Cancelled events sit in the queue until collected (lazy deletion);
    # the closure and its arguments must not be pinned that whole time.
    payload = object()
    event = queue.push(1.0, lambda value: value, (payload,))
    event.cancel()
    assert event.callback is None
    assert event.args == ()


def test_pop_due_respects_limit(queue):
    first = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    assert queue.pop_due(0.5) is None
    assert queue.pop_due(1.0) is first
    assert queue.pop_due(2.0) is None
    assert len(queue) == 1


def test_pop_due_skips_cancelled_and_drains(queue):
    cancelled = queue.push(1.0, lambda: None)
    keep = queue.push(2.0, lambda: None)
    cancelled.cancel()
    assert queue.pop_due(None) is keep
    assert queue.pop_due(None) is None


# ----------------------------------------------------------------------
# Backend registry and stats API
# ----------------------------------------------------------------------
def test_backend_registry_and_resolution():
    assert "heap" in QUEUE_BACKENDS
    assert "wheel" in QUEUE_BACKENDS
    assert "calendar" in QUEUE_BACKENDS
    assert DEFAULT_QUEUE_BACKEND == "auto"
    assert resolve_queue_backend("auto") in QUEUE_BACKENDS
    assert resolve_queue_backend("heap") == "heap"
    with pytest.raises(ValueError, match="unknown queue backend"):
        resolve_queue_backend("linked-list")


def test_depth_and_stats_track_live_and_dead(queue, backend):
    events = [queue.push(float(index), lambda: None) for index in range(6)]
    for event in events[:4]:
        event.cancel()
    assert len(queue) == 2  # live events only
    assert queue.depth() >= 2  # live + still-parked cancelled entries
    stats = queue.stats()
    assert stats["backend"] == resolve_queue_backend(backend)
    assert stats["live"] == 2
    assert stats["live"] + stats["dead"] == stats["depth"]


# ----------------------------------------------------------------------
# Shared edge cases (satellite: identical across backends)
# ----------------------------------------------------------------------
def test_pop_due_exactly_at_limit(queue):
    # The limit is inclusive: an event *at* the limit is due, one an
    # ulp later is not.
    at_limit = queue.push(2.0, lambda: None)
    queue.push(math.nextafter(2.0, math.inf), lambda: None)
    assert queue.pop_due(2.0) is at_limit
    assert queue.pop_due(2.0) is None
    assert len(queue) == 1


def test_peek_time_after_mass_cancel(queue):
    events = [queue.push(float(index), lambda: None) for index in range(200)]
    survivor = queue.push(500.0, lambda: None)
    for event in events:
        event.cancel()
    assert queue.peek_time() == 500.0
    assert queue.pop() is survivor
    assert queue.peek_time() is None


def test_step_over_fully_cancelled_queue(backend):
    sim = Simulator(queue_backend=backend)
    timers = [sim.call_later(float(index), lambda: None) for index in range(8)]
    for timer in timers:
        timer.cancel()
    assert sim.step() is False
    assert sim.now == 0.0
    assert sim.pending() == 0


def test_zero_delay_self_reschedule_chain(backend):
    # A zero-delay chain must make progress (each link is a fresh seq,
    # so it fires after everything already queued at that instant) and
    # must not spin the clock backwards.
    sim = Simulator(queue_backend=backend)
    hops = []

    def hop(remaining):
        hops.append(sim.now)
        if remaining:
            sim.call_later(0.0, hop, remaining - 1)

    sim.call_later(1.0, hop, 4)
    sim.call_later(1.0, hops.append, "sibling")
    sim.run()
    assert hops == [1.0, "sibling", 1.0, 1.0, 1.0, 1.0]
    assert sim.now == 1.0


def test_negative_delay_rejected(backend):
    sim = Simulator(queue_backend=backend)
    with pytest.raises(SimulationError):
        sim.call_later(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.at(-0.5, lambda: None)


def test_nan_delay_rejected(backend):
    sim = Simulator(queue_backend=backend)
    nan = float("nan")
    with pytest.raises(SimulationError):
        sim.call_later(nan, lambda: None)
    with pytest.raises(SimulationError):
        sim.at(nan, lambda: None)


# ----------------------------------------------------------------------
# Ordering-key regression
# ----------------------------------------------------------------------
def test_event_has_no_ordering_dunder():
    # Ordering lives in the (time, seq) tuple key owned by the queue
    # backends, never on Event itself: an Event.__lt__ would silently
    # shadow the tuple comparison and let backends diverge. Pin its
    # absence.
    assert "__lt__" not in vars(Event)
    with pytest.raises(TypeError):
        Event(1.0, 1, lambda: None, ()) < Event(2.0, 2, lambda: None, ())
