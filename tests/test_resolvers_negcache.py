"""Unit tests for negative caching (RFC 2308)."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import Rcode, RRType
from repro.resolvers.negcache import NegativeCache

NAME = Name.from_text("missing.cachetest.nl.")


def test_nxdomain_cached_and_expires():
    cache = NegativeCache()
    cache.put(NAME, RRType.AAAA, Rcode.NXDOMAIN, 60, now=0.0)
    assert cache.get(NAME, RRType.AAAA, 30.0) == Rcode.NXDOMAIN
    assert cache.get(NAME, RRType.AAAA, 60.0) is None


def test_nodata_cached_as_noerror():
    cache = NegativeCache()
    cache.put(NAME, RRType.AAAA, Rcode.NOERROR, 60, now=0.0)
    assert cache.get(NAME, RRType.AAAA, 10.0) == Rcode.NOERROR


def test_keyed_by_type():
    cache = NegativeCache()
    cache.put(NAME, RRType.AAAA, Rcode.NOERROR, 60, now=0.0)
    assert cache.get(NAME, RRType.A, 1.0) is None


def test_non_negative_rcode_rejected():
    cache = NegativeCache()
    with pytest.raises(ValueError):
        cache.put(NAME, RRType.A, Rcode.SERVFAIL, 60, 0.0)


def test_ttl_capped():
    cache = NegativeCache(max_ttl=100)
    cache.put(NAME, RRType.A, Rcode.NXDOMAIN, 99999, now=0.0)
    assert cache.get(NAME, RRType.A, 99.0) is not None
    assert cache.get(NAME, RRType.A, 101.0) is None


def test_flush():
    cache = NegativeCache()
    cache.put(NAME, RRType.A, Rcode.NXDOMAIN, 60, 0.0)
    cache.flush()
    assert cache.get(NAME, RRType.A, 1.0) is None
    assert len(cache) == 0


def test_entry_limit_evicts():
    cache = NegativeCache(max_entries=3)
    for index in range(5):
        cache.put(
            Name.from_text(f"n{index}.nl."), RRType.A, Rcode.NXDOMAIN, 60, 0.0
        )
    assert len(cache) <= 3


def test_hit_miss_counters():
    cache = NegativeCache()
    cache.put(NAME, RRType.A, Rcode.NXDOMAIN, 60, 0.0)
    cache.get(NAME, RRType.A, 1.0)
    cache.get(NAME, RRType.AAAA, 1.0)
    assert cache.hits == 1
    assert cache.misses == 1
