"""Unit tests for public resolver pools (anycast + fragmented caches)."""

import random

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.resolvers.pool import PoolConfig, PublicResolverPool
from repro.resolvers.stub import StubAnswer, StubResolver

QNAME = Name.from_text("1414.cachetest.nl.")


def build_pool(world, backend_count=4, balancing="random", **pool_kwargs):
    backends = [f"8.0.0.{index + 1}" for index in range(backend_count)]
    pool = PublicResolverPool(
        world.sim,
        world.network,
        "198.18.0.1",
        backends,
        world.root_hints,
        config=PoolConfig(
            backend_count=backend_count, balancing=balancing, **pool_kwargs
        ),
        name="pool",
        rng=random.Random(99),
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1414, ["198.18.0.1"], results
    )
    return pool, stub, results


def test_pool_resolves_via_backend(world):
    pool, stub, results = build_pool(world)
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert results[0].status == StubAnswer.OK
    assert pool.client_queries == 1
    # Exactly one backend did the work.
    active = [b for b in pool.backends if b.upstream_queries > 0]
    assert len(active) == 1


def test_random_balancing_fragments_caches(world):
    pool, stub, results = build_pool(world, backend_count=4, balancing="random")
    for round_index in range(12):
        world.sim.at(round_index * 30.0, stub.query_round, QNAME, RRType.AAAA, round_index)
    world.sim.run(until=600.0)
    # Multiple backends answered over the rounds: fragmented caches.
    active = [b for b in pool.backends if b.client_queries > 0]
    assert len(active) >= 3
    # Every backend that answered had to fetch independently at least once.
    for backend in active:
        assert backend.upstream_queries > 0


def test_sticky_balancing_mostly_one_backend(world):
    pool, stub, results = build_pool(
        world, backend_count=4, balancing="sticky", sticky_rebalance=0.0
    )
    for round_index in range(10):
        world.sim.at(round_index * 30.0, stub.query_round, QNAME, RRType.AAAA, round_index)
    world.sim.run(until=600.0)
    active = [b for b in pool.backends if b.client_queries > 0]
    assert len(active) == 1


def test_unknown_balancing_mode_rejected(world):
    pool, stub, _ = build_pool(world)
    pool.config.balancing = "bogus"
    with pytest.raises(ValueError):
        pool._pick_backend("10.0.0.1")


def test_pool_requires_backends(world):
    with pytest.raises(ValueError):
        PublicResolverPool(
            world.sim, world.network, "198.18.0.9", [], world.root_hints
        )


def test_answers_come_from_ingress_address(world):
    pool, stub, results = build_pool(world)
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    # The stub accounts the answer to the address it queried (ingress).
    assert results[0].resolver == "198.18.0.1"
    assert results[0].status == StubAnswer.OK


def test_flush_caches_hits_all_backends(world):
    pool, stub, results = build_pool(world)
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    pool.flush_caches()
    assert all(len(backend.cache) == 0 for backend in pool.backends)


def test_stats_structure(world):
    pool, stub, results = build_pool(world)
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    stats = pool.stats()
    assert stats["client_queries"] == 1
    assert len(stats["backends"]) == 4


def test_backend_config_factory_applied(world):
    from repro.resolvers.recursive import ResolverConfig

    def factory(index):
        config = ResolverConfig()
        config.cache.max_ttl = 100 + index
        return config

    backends = [f"8.0.1.{index + 1}" for index in range(3)]
    pool = PublicResolverPool(
        world.sim,
        world.network,
        "198.18.0.2",
        backends,
        world.root_hints,
        name="pool2",
        backend_config_factory=factory,
    )
    assert [b.config.cache.max_ttl for b in pool.backends] == [100, 101, 102]
