"""Fixture-snippet tests for the ``spec-hygiene`` lint rule.

These exercise exactly the escape hatches the rule exists to close: a
spec field can silently drop out of the disk-cache key by (a) losing its
annotation, (b) becoming a ClassVar, (c) opting out of comparison, or
(d) the key builder filtering ``dataclasses.fields``; and a whole spec
class drops out when no RunRequest/TestbedConfig annotation references
it.
"""

import textwrap

from repro.lint import all_checkers, run_checkers
from repro.lint.driver import parse_source


def lint(sources):
    """``sources`` maps rel path -> snippet; returns findings."""
    files = [
        parse_source(textwrap.dedent(source), rel)
        for rel, source in sources.items()
    ]
    return run_checkers(files, all_checkers(["spec-hygiene"])).findings


CLEAN_SPEC = """
from dataclasses import dataclass


@dataclass(frozen=True)
class GoodSpec:
    rate: float = 1.0
    duration: float = 300.0
"""


def test_clean_frozen_spec_passes():
    assert lint({"repro/foo/spec.py": CLEAN_SPEC}) == []


def test_non_dataclass_spec_flagged():
    findings = lint(
        {
            "repro/foo/spec.py": """
            class LooseSpec:
                rate = 1.0
            """
        }
    )
    assert any("not a dataclass" in f.message for f in findings)


def test_unfrozen_dataclass_flagged():
    findings = lint(
        {
            "repro/foo/spec.py": """
            from dataclasses import dataclass


            @dataclass
            class MutableSpec:
                rate: float = 1.0
            """
        }
    )
    assert len(findings) == 1
    assert "frozen=True" in findings[0].message


def test_bare_assignment_flagged():
    # ``name = value`` in a dataclass body is a class attribute, not a
    # field: it skips __init__, dataclasses.fields, and the cache key.
    findings = lint(
        {
            "repro/foo/spec.py": """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class SneakySpec:
                rate: float = 1.0
                mode = "steady"
            """
        }
    )
    assert len(findings) == 1
    assert "SneakySpec.mode" in findings[0].message
    assert "cache key" in findings[0].message


def test_classvar_flagged():
    findings = lint(
        {
            "repro/foo/spec.py": """
            from dataclasses import dataclass
            from typing import ClassVar


            @dataclass(frozen=True)
            class StaticSpec:
                rate: float = 1.0
                default_mode: ClassVar[str] = "steady"
            """
        }
    )
    assert len(findings) == 1
    assert "ClassVar" in findings[0].message


def test_compare_false_field_flagged():
    findings = lint(
        {
            "repro/foo/spec.py": """
            from dataclasses import dataclass, field


            @dataclass(frozen=True)
            class HiddenSpec:
                rate: float = 1.0
                note: str = field(default="", compare=False)
            """
        }
    )
    assert len(findings) == 1
    assert "compare=False" in findings[0].message


GOOD_CANONICAL = """
import dataclasses


def _canonical(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return value
"""


def test_key_builder_clean_passes():
    assert lint({"repro/runner/cache.py": GOOD_CANONICAL}) == []


def test_key_builder_comprehension_filter_flagged():
    findings = lint(
        {
            "repro/runner/cache.py": """
            import dataclasses


            def _canonical(value):
                return {
                    f.name: getattr(value, f.name)
                    for f in dataclasses.fields(value)
                    if f.name != "seed"
                }
            """
        }
    )
    assert len(findings) == 1
    assert "filters" in findings[0].message


def test_key_builder_loop_skip_flagged():
    findings = lint(
        {
            "repro/runner/cache.py": """
            import dataclasses


            def _canonical(value):
                out = {}
                for f in dataclasses.fields(value):
                    if f.name == "seed":
                        continue
                    out[f.name] = getattr(value, f.name)
                return out
            """
        }
    )
    assert len(findings) == 1
    assert "skips" in findings[0].message


def test_key_builder_without_fields_flagged():
    findings = lint(
        {
            "repro/runner/cache.py": """
            def _canonical(value):
                return repr(value)
            """
        }
    )
    assert len(findings) == 1
    assert "dataclasses.fields" in findings[0].message


ANCHOR_EXECUTOR = """
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RunRequest:
    kind: str
    payload: Optional[GoodSpec] = None
"""


def test_unreachable_spec_flagged():
    findings = lint(
        {
            "repro/runner/executor.py": ANCHOR_EXECUTOR,
            "repro/foo/spec.py": CLEAN_SPEC
            + textwrap.dedent(
                """
                @dataclass(frozen=True)
                class OrphanSpec:
                    level: int = 0
                """
            ),
        }
    )
    assert len(findings) == 1
    assert "OrphanSpec" in findings[0].message
    assert "never reach" in findings[0].message


def test_reachable_spec_passes():
    findings = lint(
        {
            "repro/runner/executor.py": ANCHOR_EXECUTOR,
            "repro/foo/spec.py": CLEAN_SPEC,
        }
    )
    assert findings == []
