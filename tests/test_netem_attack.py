"""Unit tests for DDoS attack schedules."""

import pytest

from repro.netem.attack import AttackSchedule, AttackWindow


def test_window_active_interval_half_open():
    window = AttackWindow(["t"], 10.0, 20.0, 0.9)
    assert not window.active(9.999)
    assert window.active(10.0)
    assert window.active(19.999)
    assert not window.active(20.0)


def test_window_validation():
    with pytest.raises(ValueError):
        AttackWindow(["t"], 0.0, 10.0, 1.5)
    with pytest.raises(ValueError):
        AttackWindow(["t"], 10.0, 10.0, 0.5)


def test_schedule_loss_per_target_and_time():
    schedule = AttackSchedule(
        [AttackWindow(["a", "b"], 100.0, 200.0, 0.75)]
    )
    assert schedule.inbound_loss("a", 150.0) == pytest.approx(0.75)
    assert schedule.inbound_loss("b", 150.0) == pytest.approx(0.75)
    assert schedule.inbound_loss("c", 150.0) == 0.0
    assert schedule.inbound_loss("a", 50.0) == 0.0
    assert schedule.inbound_loss("a", 250.0) == 0.0


def test_overlapping_windows_combine_as_independent_drops():
    schedule = AttackSchedule(
        [
            AttackWindow(["t"], 0.0, 100.0, 0.5),
            AttackWindow(["t"], 0.0, 100.0, 0.5),
        ]
    )
    assert schedule.inbound_loss("t", 10.0) == pytest.approx(0.75)


def test_full_loss_dominates():
    schedule = AttackSchedule(
        [
            AttackWindow(["t"], 0.0, 100.0, 1.0),
            AttackWindow(["t"], 0.0, 100.0, 0.2),
        ]
    )
    assert schedule.inbound_loss("t", 1.0) == pytest.approx(1.0)


def test_add_after_construction():
    schedule = AttackSchedule()
    assert not schedule.any_active(5.0)
    schedule.add(AttackWindow(["x"], 0.0, 10.0, 0.9))
    assert schedule.any_active(5.0)
    assert schedule.inbound_loss("x", 5.0) == pytest.approx(0.9)
