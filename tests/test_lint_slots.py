"""Fixture-snippet tests for the ``hot-path-slots`` lint rule."""

import textwrap

from repro.lint import all_checkers, run_checkers
from repro.lint.driver import parse_source


def lint(sources):
    files = [
        parse_source(textwrap.dedent(source), rel)
        for rel, source in sources.items()
    ]
    return run_checkers(files, all_checkers(["hot-path-slots"])).findings


def test_unslotted_class_on_callback_path_flagged():
    findings = lint(
        {
            "repro/servers/fixture.py": """
            class Packet:
                def __init__(self):
                    self.payload = b""


            class Host:
                def __init__(self, sim):
                    sim.call_later(0.0, self.on_tick)

                def on_tick(self):
                    return Packet()
            """
        }
    )
    assert len(findings) == 1
    assert "Packet" in findings[0].message
    assert "__slots__" in findings[0].message
    # Reported at the class definition site.
    assert findings[0].line == 2


def test_slots_and_dataclass_slots_pass():
    findings = lint(
        {
            "repro/servers/fixture.py": """
            from dataclasses import dataclass


            class Packet:
                __slots__ = ("payload",)

                def __init__(self):
                    self.payload = b""


            @dataclass(slots=True)
            class Reply:
                code: int = 0


            class Host:
                def __init__(self, sim):
                    sim.call_later(0.0, self.on_tick)

                def on_tick(self):
                    return Packet(), Reply()
            """
        }
    )
    assert findings == []


def test_exceptions_exempt():
    findings = lint(
        {
            "repro/servers/fixture.py": """
            class DropError(ValueError):
                pass


            class Host:
                def __init__(self, sim):
                    sim.call_later(0.0, self.on_tick)

                def on_tick(self):
                    raise DropError()
            """
        }
    )
    assert findings == []


def test_subclass_override_in_other_module_is_hot():
    # Host.__init__ registers self.on_packet once; a subclass override
    # defined in a *different module* inherits the hot-path obligation.
    findings = lint(
        {
            "repro/core/host.py": """
            class Host:
                def __init__(self, sim):
                    sim.call_later(0.0, self.on_packet)

                def on_packet(self):
                    pass
            """,
            "repro/servers/auth.py": """
            class Record:
                def __init__(self):
                    self.value = 0


            class AuthServer:
                def on_packet(self):
                    return Record()
            """,
        }
    )
    assert len(findings) == 1
    assert findings[0].file == "repro/servers/auth.py"
    assert "Record" in findings[0].message


def test_helper_called_from_callback_is_hot():
    findings = lint(
        {
            "repro/servers/fixture.py": """
            class Entry:
                def __init__(self):
                    self.hits = 0


            class Cache:
                def __init__(self, sim):
                    sim.call_later(0.0, self.on_query)

                def on_query(self):
                    self._record()

                def _record(self):
                    return Entry()
            """
        }
    )
    assert len(findings) == 1
    assert "Entry" in findings[0].message


def test_cold_instantiation_not_flagged():
    # Same unslotted class, but nothing registers a callback, so there
    # is no hot path and no obligation.
    findings = lint(
        {
            "repro/servers/fixture.py": """
            class Summary:
                def __init__(self):
                    self.rows = []


            def build_report():
                return Summary()
            """
        }
    )
    assert findings == []


def test_pragma_on_class_line_suppresses():
    ctx_sources = {
        "repro/servers/fixture.py": """
        class Scratch:  # repro-lint: allow[hot-path-slots]
            def __init__(self):
                self.data = {}


        class Host:
            def __init__(self, sim):
                sim.call_later(0.0, self.on_tick)

            def on_tick(self):
                return Scratch()
        """
    }
    assert lint(ctx_sources) == []
