"""Unit tests for the datagram transport."""

import pytest

from repro.dnscore.message import make_query
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.netem.link import ConstantLatency
from repro.netem.transport import Network
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator

QNAME = Name.from_text("x.test.")


def make_network(**kwargs) -> tuple:
    sim = Simulator()
    network = Network(
        sim, RandomStreams(5), latency=ConstantLatency(0.01), **kwargs
    )
    return sim, network


def test_delivery_after_latency():
    sim, network = make_network()
    received = []
    network.register("b", lambda packet: received.append((sim.now, packet)))
    network.send("a", "b", make_query(QNAME, RRType.A))
    sim.run()
    assert len(received) == 1
    time, packet = received[0]
    assert time == pytest.approx(0.01)
    assert packet.src == "a"
    assert packet.dst == "b"


def test_unroutable_destination_blackholes():
    sim, network = make_network()
    assert network.send("a", "nowhere", make_query(QNAME, RRType.A)) is False
    assert network.counters.dropped_baseline == 1


def test_duplicate_registration_rejected():
    _sim, network = make_network()
    network.register("b", lambda packet: None)
    with pytest.raises(ValueError):
        network.register("b", lambda packet: None)


def test_baseline_loss_drops_fraction():
    sim, network = make_network(baseline_loss=0.5)
    received = []
    network.register("b", received.append)
    for _ in range(400):
        network.send("a", "b", make_query(QNAME, RRType.A))
    sim.run()
    assert 120 < len(received) < 280  # ~200 expected


def test_attack_drops_inbound_at_target_only():
    attacks = AttackSchedule([AttackWindow(["victim"], 0.0, 100.0, 1.0)])
    sim, network = make_network(attacks=attacks)
    victim_received = []
    bystander_received = []
    network.register("victim", victim_received.append)
    network.register("bystander", bystander_received.append)
    for _ in range(50):
        network.send("a", "victim", make_query(QNAME, RRType.A))
        network.send("a", "bystander", make_query(QNAME, RRType.A))
    sim.run()
    assert victim_received == []
    assert len(bystander_received) == 50
    assert network.counters.dropped_attack == 50


def test_attack_evaluated_at_arrival_time():
    # The attack starts at t=0.005; a packet sent at t=0 arrives at
    # t=0.01, inside the window, so it is dropped.
    attacks = AttackSchedule([AttackWindow(["v"], 0.005, 1.0, 1.0)])
    sim, network = make_network(attacks=attacks)
    received = []
    network.register("v", received.append)
    network.send("a", "v", make_query(QNAME, RRType.A))
    sim.run()
    assert received == []


def test_anycast_stable_catchment():
    sim, network = make_network()
    hits = {"i1": [], "i2": []}
    network.register("i1", hits["i1"].append)
    network.register("i2", hits["i2"].append)
    network.register_anycast("any", ["i1", "i2"])
    for _ in range(10):
        network.send("client-a", "any", make_query(QNAME, RRType.A))
    sim.run()
    # One instance gets everything: catchments are stable per source.
    counts = sorted(len(hits[i]) for i in hits)
    assert counts == [0, 10]


def test_anycast_distributes_across_sources():
    sim, network = make_network()
    hits = {"i1": 0, "i2": 0, "i3": 0, "i4": 0}

    def make_handler(key):
        def handler(packet):
            hits[key] += 1

        return handler

    for key in hits:
        network.register(key, make_handler(key))
    network.register_anycast("any", list(hits))
    for index in range(200):
        network.send(f"client-{index}", "any", make_query(QNAME, RRType.A))
    sim.run()
    assert sum(hits.values()) == 200
    assert all(count > 10 for count in hits.values())


def test_anycast_requires_registered_instances():
    _sim, network = make_network()
    with pytest.raises(ValueError):
        network.register_anycast("any", ["ghost"])
    with pytest.raises(ValueError):
        network.register_anycast("any", [])


def test_tap_sees_packets_dropped_by_attack():
    attacks = AttackSchedule([AttackWindow(["v"], 0.0, 100.0, 1.0)])
    sim, network = make_network(attacks=attacks)
    delivered = []
    tapped = []
    network.register("v", delivered.append)
    network.register_tap("v", tapped.append)
    for _ in range(20):
        network.send("a", "v", make_query(QNAME, RRType.A))
    sim.run()
    assert delivered == []
    assert len(tapped) == 20


def test_wire_format_roundtrips_payload():
    sim, network = make_network(wire_format=True)
    received = []
    network.register("b", received.append)
    query = make_query(QNAME, RRType.AAAA)
    network.send("a", "b", query)
    sim.run()
    message = received[0].message
    assert message is not query  # re-decoded, not the same object
    assert message.msg_id == query.msg_id
    assert message.question == query.question


def test_counters_track_outcomes():
    sim, network = make_network()
    network.register("b", lambda packet: None)
    network.send("a", "b", make_query(QNAME, RRType.A))
    sim.run()
    stats = network.counters.as_dict()
    assert stats["sent"] == 1
    assert stats["delivered"] == 1
    assert stats["dropped_attack"] == 0


def test_invalid_baseline_loss_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, RandomStreams(0), baseline_loss=1.0)


def test_update_anycast_rehashes_catchments():
    sim, network = make_network()
    hits = {"i1": [], "i2": [], "i3": []}
    for key in hits:
        network.register(key, hits[key].append)
    network.register_anycast("any", ["i1", "i2", "i3"])
    before = {
        f"c{i}": network.anycast_catchment(f"c{i}", "any") for i in range(30)
    }
    # Withdraw i1: its clients must land elsewhere.
    network.update_anycast("any", ["i2", "i3"])
    after = {
        f"c{i}": network.anycast_catchment(f"c{i}", "any") for i in range(30)
    }
    assert all(instance != "i1" for instance in after.values())
    moved = [src for src, instance in before.items() if instance == "i1"]
    assert moved, "no client was homed on i1 before withdrawal"
    for src in moved:
        assert after[src] in ("i2", "i3")


def test_update_anycast_validation():
    sim, network = make_network()
    network.register("i1", lambda packet: None)
    network.register_anycast("any", ["i1"])
    with pytest.raises(ValueError):
        network.update_anycast("nope", ["i1"])
    with pytest.raises(ValueError):
        network.update_anycast("any", [])
    with pytest.raises(ValueError):
        network.update_anycast("any", ["ghost"])


def test_anycast_catchment_requires_group():
    sim, network = make_network()
    with pytest.raises(ValueError):
        network.anycast_catchment("src", "not-anycast")


def test_unregister_makes_address_unroutable():
    sim, network = make_network()
    received = []
    network.register("b", received.append)
    network.unregister("b")
    assert network.send("a", "b", make_query(QNAME, RRType.A)) is False
