"""Unit tests for zone data and RFC 1034 lookup semantics."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.records import AAAA, DS, NS, SOA, A, ResourceRecord
from repro.dnscore.rrtypes import Rcode, RRType
from repro.dnscore.zone import LookupStatus, Zone


def make_zone(origin="nl.") -> Zone:
    origin_name = Name.from_text(origin)
    soa = SOA(
        Name.from_text(f"ns1.{origin}"),
        Name.from_text(f"hostmaster.{origin}"),
        1,
        minimum=60,
    )
    return Zone(origin_name, soa)


def test_exact_answer():
    zone = make_zone()
    name = Name.from_text("www.nl.")
    zone.add(name, 300, A("192.0.2.1"))
    result = zone.lookup(name, RRType.A)
    assert result.status == LookupStatus.ANSWER
    assert result.aa
    assert result.rcode == Rcode.NOERROR
    assert [record.rdata.address for record in result.answers] == ["192.0.2.1"]


def test_nxdomain_carries_soa():
    zone = make_zone()
    result = zone.lookup(Name.from_text("missing.nl."), RRType.A)
    assert result.status == LookupStatus.NXDOMAIN
    assert result.rcode == Rcode.NXDOMAIN
    assert any(record.rtype == RRType.SOA for record in result.authority)


def test_nodata_when_name_exists_with_other_type():
    zone = make_zone()
    name = Name.from_text("www.nl.")
    zone.add(name, 300, A("192.0.2.1"))
    result = zone.lookup(name, RRType.AAAA)
    assert result.status == LookupStatus.NODATA
    assert result.rcode == Rcode.NOERROR
    assert any(record.rtype == RRType.SOA for record in result.authority)


def test_empty_non_terminal_is_nodata_not_nxdomain():
    zone = make_zone()
    zone.add(Name.from_text("a.b.nl."), 300, A("192.0.2.1"))
    result = zone.lookup(Name.from_text("b.nl."), RRType.A)
    assert result.status == LookupStatus.NODATA


def test_referral_for_names_below_cut():
    zone = make_zone()
    cut = Name.from_text("example.nl.")
    ns_host = Name.from_text("ns1.example.nl.")
    zone.add(cut, 3600, NS(ns_host))
    zone.add(ns_host, 3600, A("192.0.2.53"))
    result = zone.lookup(Name.from_text("deep.example.nl."), RRType.AAAA)
    assert result.status == LookupStatus.REFERRAL
    assert not result.aa
    assert [record.name for record in result.authority] == [cut]
    # Glue travels in additional.
    assert any(
        record.name == ns_host and record.rtype == RRType.A
        for record in result.additional
    )


def test_referral_for_cut_itself():
    zone = make_zone()
    cut = Name.from_text("example.nl.")
    zone.add(cut, 3600, NS(Name.from_text("ns1.example.nl.")))
    result = zone.lookup(cut, RRType.NS)
    assert result.status == LookupStatus.REFERRAL
    assert not result.aa


def test_ds_at_cut_answered_from_parent():
    zone = make_zone()
    cut = Name.from_text("example.nl.")
    zone.add(cut, 3600, NS(Name.from_text("ns1.example.nl.")))
    zone.add(cut, 3600, DS(12345, 8, 2, b"\x01" * 32))
    result = zone.lookup(cut, RRType.DS)
    assert result.status == LookupStatus.ANSWER
    assert result.aa
    assert result.answers[0].rtype == RRType.DS


def test_ds_at_cut_without_record_is_nodata():
    zone = make_zone()
    cut = Name.from_text("example.nl.")
    zone.add(cut, 3600, NS(Name.from_text("ns1.example.nl.")))
    result = zone.lookup(cut, RRType.DS)
    assert result.status == LookupStatus.NODATA


def test_apex_ns_is_authoritative_answer():
    zone = make_zone()
    zone.add(Name.from_text("nl."), 3600, NS(Name.from_text("ns1.dns.nl.")))
    result = zone.lookup(Name.from_text("nl."), RRType.NS)
    assert result.status == LookupStatus.ANSWER
    assert result.aa


def test_out_of_zone_query():
    zone = make_zone()
    result = zone.lookup(Name.from_text("example.com."), RRType.A)
    assert result.status == LookupStatus.OUT_OF_ZONE


def test_add_out_of_zone_record_rejected():
    zone = make_zone()
    with pytest.raises(ValueError):
        zone.add(Name.from_text("example.com."), 60, A("192.0.2.1"))


def test_serial_bump_and_soa_query():
    zone = make_zone()
    assert zone.serial == 1
    zone.set_serial(17)
    assert zone.serial == 17
    result = zone.lookup(Name.from_text("nl."), RRType.SOA)
    assert result.status == LookupStatus.ANSWER
    assert result.answers[0].rdata.serial == 17


def test_synthesizer_answers_and_negative():
    zone = make_zone()

    def synth(qname, qtype):
        labels = qname.relativize(zone.origin)
        if len(labels) != 1 or not labels[0].isdigit():
            return None
        if qtype != RRType.AAAA:
            return []
        return [
            ResourceRecord(qname, 60, AAAA("2001:db8::1")),
        ]

    zone.synthesizer = synth
    ok = zone.lookup(Name.from_text("1414.nl."), RRType.AAAA)
    assert ok.status == LookupStatus.ANSWER
    nodata = zone.lookup(Name.from_text("1414.nl."), RRType.A)
    assert nodata.status == LookupStatus.NODATA
    nxdomain = zone.lookup(Name.from_text("bogus.nl."), RRType.AAAA)
    assert nxdomain.status == LookupStatus.NXDOMAIN


def test_stored_record_preferred_over_synthesizer():
    zone = make_zone()
    name = Name.from_text("42.nl.")
    zone.add(name, 60, AAAA("2001:db8::42"))
    zone.synthesizer = lambda qname, qtype: [
        ResourceRecord(qname, 60, AAAA("2001:db8::bad"))
    ]
    result = zone.lookup(name, RRType.AAAA)
    assert result.answers[0].rdata.address == "2001:db8::42"


def test_cname_returned_for_other_types():
    from repro.dnscore.records import CNAME

    zone = make_zone()
    alias = Name.from_text("www.nl.")
    zone.add(alias, 300, CNAME(Name.from_text("web.nl.")))
    result = zone.lookup(alias, RRType.A)
    assert result.status == LookupStatus.ANSWER
    assert result.answers[0].rtype == RRType.CNAME


def test_delegations_listing():
    zone = make_zone()
    zone.add(Name.from_text("b.nl."), 3600, NS(Name.from_text("ns.b.nl.")))
    zone.add(Name.from_text("a.nl."), 3600, NS(Name.from_text("ns.a.nl.")))
    assert zone.delegations() == [
        Name.from_text("a.nl."),
        Name.from_text("b.nl."),
    ]
