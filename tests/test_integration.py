"""Cross-module integration scenarios."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.records import CNAME, A
from repro.dnscore.rrtypes import RRType
from repro.netem.attack import AttackWindow
from repro.resolvers.recursive import Outcome, RecursiveResolver, ResolverConfig
from repro.resolvers.stub import StubAnswer, StubResolver
from repro.servers.authoritative import AuthoritativeServer

QNAME = Name.from_text("1414.cachetest.nl.")


def test_cname_chase_across_names(world):
    # www.cachetest.nl -> CNAME -> web.cachetest.nl (A record).
    www = Name.from_text("www.cachetest.nl.")
    web = Name.from_text("web.cachetest.nl.")
    world.test_zone.add(www, 300, CNAME(web))
    world.test_zone.add(web, 300, A("192.0.2.80"))
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, www, RRType.A, outcomes.append)
    world.sim.run(until=30.0)
    assert outcomes and outcomes[0].is_success
    assert outcomes[0].records[0].rdata.address == "192.0.2.80"


def test_cname_loop_terminates(world):
    # a -> b -> a: the resolver must give up, not spin.
    a = Name.from_text("a.cachetest.nl.")
    b = Name.from_text("b.cachetest.nl.")
    world.test_zone.add(a, 300, CNAME(b))
    world.test_zone.add(b, 300, CNAME(a))
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, a, RRType.A, outcomes.append)
    world.sim.run(until=60.0)
    assert outcomes
    assert outcomes[0].status == Outcome.SERVFAIL


def test_anycast_authoritative_service(world):
    # Replicate the test zone behind one anycast address with two
    # instances; a resolver using only the anycast address still works.
    inst1 = AuthoritativeServer(
        world.sim, world.network, "198.18.1.1", [world.test_zone], name="any-1"
    )
    inst2 = AuthoritativeServer(
        world.sim, world.network, "198.18.1.2", [world.test_zone], name="any-2"
    )
    world.network.register_anycast("198.18.0.1", [inst1.address, inst2.address])
    # Root zone must delegate to the anycast address: patch a resolver
    # to use it directly as a "root hint" for simplicity — the zone
    # serves everything including the root-side data it knows.
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.7", ["198.18.0.1"]
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.run(until=30.0)
    assert outcomes and outcomes[0].is_success
    assert inst1.queries_received + inst2.queries_received > 0


def test_wire_format_end_to_end(world):
    # Same resolution with full RFC 1035 serialization on every packet.
    world.network.wire_format = True
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints,
        config=ResolverConfig(),
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1414, [resolver.address], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert results[0].status == StubAnswer.OK
    assert results[0].serial == 1
    assert results[0].encoded_ttl == world.zone_ttl


def test_zone_rotation_changes_serial_in_answers(world):
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints,
        config=ResolverConfig(),
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1414, [resolver.address], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.at(600.0, world.test_zone.set_serial, 2)
    # Re-query after the cache expired (TTL 3600): use a fresh probe name
    # to force a fresh fetch instead.
    other = Name.from_text("1415.cachetest.nl.")
    world.sim.at(700.0, stub.query_round, other, RRType.AAAA, 1)
    world.sim.run(until=800.0)
    assert results[0].serial == 1
    assert results[1].serial == 2


def test_partial_loss_some_queries_survive(world):
    # 70% loss: with retries the stub should still mostly succeed.
    world.attacks.add(AttackWindow(world.target_addresses, 0.0, 1e6, 0.7))
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1414, [resolver.address], results
    )
    ok = 0
    for index in range(20):
        name = Name.from_text(f"{2000 + index}.cachetest.nl.")
        world.sim.at(index * 30.0, stub.query_one, name, RRType.AAAA, index, resolver.address)
    world.sim.run(until=700.0)
    ok = sum(1 for answer in results if answer.status == StubAnswer.OK)
    assert ok >= 12  # most queries pushed through by retries


def test_multi_resolver_shared_authoritative_load(world):
    # Two independent resolvers each fetch NS/A once; the target zone
    # sees both (no cross-resolver cache sharing).
    resolvers = [
        RecursiveResolver(
            world.sim, world.network, f"100.64.0.{index}", world.root_hints
        )
        for index in (1, 2)
    ]
    for index, resolver in enumerate(resolvers):
        world.sim.call_later(
            0.0, resolver.resolve, QNAME, RRType.AAAA, lambda outcome: None
        )
    world.sim.run(until=30.0)
    sources = {entry.src for entry in world.query_log.entries}
    assert sources == {"100.64.0.1", "100.64.0.2"}


def test_negative_answer_counts_at_server_not_duplicated(world):
    # The AAAA-for-NS chase produces exactly one NODATA per NS name,
    # then negative caching suppresses repeats within the negative TTL.
    config = ResolverConfig()
    config.chase_ns_aaaa = True
    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, config=config
    )
    outcomes = []
    world.sim.call_later(0.0, resolver.resolve, QNAME, RRType.AAAA, outcomes.append)
    world.sim.call_later(5.0, resolver.resolve, QNAME, RRType.A, outcomes.append)
    world.sim.run(until=30.0)
    aaaa_ns_queries = [
        entry
        for entry in world.query_log.entries
        if entry.qtype == RRType.AAAA and str(entry.qname).startswith("ns")
    ]
    assert len(aaaa_ns_queries) == 2  # one per nameserver, not re-asked
