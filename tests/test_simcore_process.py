"""Unit tests for generator processes, signals, and races."""

import pytest

from repro.simcore.process import AnyOf, Process, Signal, Timeout, spawn
from repro.simcore.simulator import Simulator


def test_timeout_resumes_after_delay():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield Timeout(3.0)
        trace.append(("resumed", sim.now))

    spawn(sim, proc())
    sim.run()
    assert trace == [("start", 0.0), ("resumed", 3.0)]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-0.1)


def test_process_result_and_finished_signal():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return 42

    process = spawn(sim, proc())
    joined = []
    process.finished.add_waiter(joined.append)
    sim.run()
    assert process.done
    assert process.result == 42
    assert joined == [42]


def test_signal_wakes_waiting_process_with_value():
    sim = Simulator()
    signal = Signal(sim)
    got = []

    def waiter():
        value = yield signal
        got.append((value, sim.now))

    spawn(sim, waiter())
    sim.call_later(2.0, signal.fire, "hello")
    sim.run()
    assert got == [("hello", 2.0)]


def test_signal_fire_twice_raises():
    sim = Simulator()
    signal = Signal(sim)
    signal.fire(1)
    with pytest.raises(RuntimeError):
        signal.fire(2)


def test_late_waiter_gets_remembered_value():
    sim = Simulator()
    signal = Signal(sim)
    signal.fire("early")
    got = []

    def waiter():
        value = yield signal
        got.append(value)

    spawn(sim, waiter())
    sim.run()
    assert got == ["early"]


def test_anyof_timeout_wins():
    sim = Simulator()
    signal = Signal(sim)
    got = []

    def racer():
        index, value = yield AnyOf(Timeout(1.0), signal)
        got.append((index, value, sim.now))

    spawn(sim, racer())
    sim.call_later(5.0, signal.fire, "slow")
    sim.run()
    assert got == [(0, None, 1.0)]


def test_anyof_signal_wins_and_timer_cancelled():
    sim = Simulator()
    signal = Signal(sim)
    got = []

    def racer():
        index, value = yield AnyOf(Timeout(10.0), signal)
        got.append((index, value, sim.now))

    spawn(sim, racer())
    sim.call_later(1.0, signal.fire, "fast")
    sim.run()
    assert got[0][0] == 1
    assert got[0][1] == "fast"
    # The losing 10 s timer must not hold the clock hostage.
    assert sim.now < 10.0


def test_anyof_requires_commands():
    with pytest.raises(ValueError):
        AnyOf()


def test_process_chain_of_timeouts():
    sim = Simulator()
    times = []

    def proc():
        for _ in range(4):
            yield Timeout(2.5)
            times.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert times == [2.5, 5.0, 7.5, 10.0]


def test_invalid_yield_raises():
    sim = Simulator()

    def proc():
        yield "not-a-command"

    with pytest.raises(TypeError):
        Process(sim, proc())


def test_two_processes_interleave():
    sim = Simulator()
    trace = []

    def proc(name, delay):
        for _ in range(2):
            yield Timeout(delay)
            trace.append((name, sim.now))

    spawn(sim, proc("fast", 1.0))
    spawn(sim, proc("slow", 1.5))
    sim.run()
    assert trace == [("fast", 1.0), ("slow", 1.5), ("fast", 2.0), ("slow", 3.0)]


def test_signal_remove_waiter():
    sim = Simulator()
    signal = Signal(sim)
    got = []
    signal.add_waiter(got.append)
    signal.remove_waiter(got.append)
    signal.fire("x")
    sim.run()
    assert got == []
