"""Unit tests for retry policies."""

import pytest

from repro.resolvers.retry import (
    RetryPolicy,
    bind_profile,
    forwarder_profile,
    unbound_profile,
)


def test_timeout_grows_exponentially_and_caps():
    policy = RetryPolicy(initial_timeout=1.0, backoff=2.0, max_timeout=5.0)
    assert policy.timeout_for_attempt(0) == 1.0
    assert policy.timeout_for_attempt(1) == 2.0
    assert policy.timeout_for_attempt(2) == 4.0
    assert policy.timeout_for_attempt(3) == 5.0  # capped
    assert policy.timeout_for_attempt(10) == 5.0


def test_negative_attempt_rejected():
    with pytest.raises(ValueError):
        RetryPolicy().timeout_for_attempt(-1)


def test_total_budget_scales_with_servers_up_to_cap():
    policy = RetryPolicy(tries_per_server=3, max_total_attempts=7)
    assert policy.total_budget(1) == 3
    assert policy.total_budget(2) == 6
    assert policy.total_budget(3) == 7  # capped
    assert policy.total_budget(0) == 0


def test_bind_profile_shape():
    policy = bind_profile()
    assert policy.requery_parent_on_failure
    # Two authoritatives: at least 6 attempts against the target zone,
    # matching the paper's 6–7 retries observation.
    assert policy.total_budget(2) >= 6
    # The serial timeout chain must fit inside the resolution deadline.
    total = sum(
        policy.timeout_for_attempt(attempt)
        for attempt in range(policy.total_budget(2))
    )
    assert total >= policy.resolution_deadline * 0.7


def test_unbound_profile_shape():
    policy = unbound_profile()
    assert not policy.requery_parent_on_failure
    assert policy.initial_timeout < bind_profile().initial_timeout
    assert policy.total_budget(2) > bind_profile().total_budget(2)


def test_forwarder_profile_is_modest():
    policy = forwarder_profile()
    assert policy.total_budget(2) <= 4
    assert policy.timeout_for_attempt(0) <= 1.0
