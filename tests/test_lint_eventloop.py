"""Fixture-snippet tests for the ``event-loop`` lint rule."""

import textwrap

from repro.lint import all_checkers, run_checkers
from repro.lint.driver import parse_source


def lint(source, rel="repro/servers/fixture.py"):
    file = parse_source(textwrap.dedent(source), rel)
    return run_checkers([file], all_checkers(["event-loop"])).findings


def test_heap_access_outside_kernel_flagged():
    findings = lint(
        """
        def depth(sim):
            return len(sim._queue._heap)
        """
    )
    assert len(findings) == 1
    assert "_heap" in findings[0].message


def test_queue_backend_internal_access_flagged():
    findings = lint(
        """
        def live_count(sim):
            return sim._queue._live
        """
    )
    assert len(findings) == 1
    assert "_live" in findings[0].message and "stats()" in findings[0].message


def test_queue_internal_names_on_other_receivers_allowed():
    # A rate limiter's own `self._buckets` is not queue state; only
    # queue-shaped receivers are flagged for the backend-internal names.
    findings = lint(
        """
        class RateLimiter:
            def __init__(self):
                self._buckets = {}

            def observe(self, prefix):
                return self._buckets.get(prefix)
        """
    )
    assert findings == []


def test_heapq_import_outside_kernel_flagged():
    assert len(lint("import heapq\n")) == 1
    assert len(lint("from heapq import heappush\n")) == 1


def test_clock_assignment_flagged():
    findings = lint(
        """
        def rewind(sim):
            sim.now = 0.0
        """
    )
    assert len(findings) == 1
    assert "sim.now" in findings[0].message


def test_kernel_itself_exempt():
    findings = lint(
        """
        import heapq


        def pop(queue):
            return heapq.heappop(queue._heap)
        """,
        rel="repro/simcore/events.py",
    )
    assert findings == []


def test_reentrant_run_in_callback_flagged():
    findings = lint(
        """
        class Prober:
            def __init__(self, sim):
                self.sim = sim
                sim.call_later(1.0, self.tick)

            def tick(self):
                self.sim.run()
        """
    )
    assert len(findings) == 1
    assert "not" in findings[0].message and "reentrant" in findings[0].message


def test_run_outside_callback_path_allowed():
    # Experiments drive the clock from the outside; only callback-path
    # pumping is reentrant.
    findings = lint(
        """
        def drive(sim):
            sim.run(until=300.0)
            return sim.now
        """
    )
    assert findings == []
