"""Unit tests for server-side query logging and classification."""

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.servers.querylog import QueryLog, classify_query_kind

ZONE = Name.from_text("cachetest.nl.")
NS1 = Name.from_text("ns1.cachetest.nl.")
NS2 = Name.from_text("ns2.cachetest.nl.")


def fill_log() -> QueryLog:
    log = QueryLog()
    log.record(1.0, "r1", Name.from_text("1.cachetest.nl."), RRType.AAAA, "at1")
    log.record(2.0, "r1", NS1, RRType.A, "at1")
    log.record(3.0, "r2", NS1, RRType.AAAA, "at2")
    log.record(601.0, "r2", ZONE, RRType.NS, "at1")
    log.record(602.0, "r3", Name.from_text("2.cachetest.nl."), RRType.AAAA, "at2")
    return log


def test_classify_query_kinds():
    entries = fill_log().entries
    kinds = [classify_query_kind(entry, ZONE, [NS1, NS2]) for entry in entries]
    assert kinds == ["AAAA-for-PID", "A-for-NS", "AAAA-for-NS", "NS", "AAAA-for-PID"]


def test_classify_other_kind():
    log = QueryLog()
    log.record(0.0, "r", Name.from_text("x.example.com."), RRType.AAAA, "at1")
    log.record(0.0, "r", NS1, RRType.TXT, "at1")
    kinds = [classify_query_kind(entry, ZONE, [NS1]) for entry in log.entries]
    assert kinds == ["other", "other"]


def test_count_by_round():
    log = fill_log()
    counted = log.count_by_round(
        600.0, lambda entry: classify_query_kind(entry, ZONE, [NS1, NS2])
    )
    assert counted[0] == {"AAAA-for-PID": 1, "A-for-NS": 1, "AAAA-for-NS": 1}
    assert counted[1] == {"NS": 1, "AAAA-for-PID": 1}


def test_unique_sources_by_round():
    log = fill_log()
    unique = log.unique_sources_by_round(600.0)
    assert unique == {0: 2, 1: 2}


def test_per_source_counts_with_predicate():
    log = fill_log()
    counts = log.per_source_counts()
    assert counts == {"r1": 2, "r2": 2, "r3": 1}
    aaaa_only = log.per_source_counts(
        lambda entry: entry.qtype == RRType.AAAA
    )
    assert aaaa_only == {"r1": 1, "r2": 1, "r3": 1}


def test_filtered_iterates_matching():
    log = fill_log()
    late = list(log.filtered(lambda entry: entry.time > 600.0))
    assert len(late) == 2
