"""Unit tests for address allocation."""

import pytest

from repro.netem.address import AddressAllocator, default_allocator


def test_allocation_is_sequential_and_unique():
    allocator = AddressAllocator()
    allocator.add_pool("p", "10.0.0.0/24")
    first = allocator.allocate("p")
    second = allocator.allocate("p")
    assert first == "10.0.0.1"
    assert second == "10.0.0.2"
    assert first != second


def test_unknown_pool_rejected():
    with pytest.raises(KeyError):
        AddressAllocator().allocate("nope")


def test_pool_exhaustion():
    allocator = AddressAllocator()
    allocator.add_pool("tiny", "192.0.2.0/30")  # hosts .1 and .2
    allocator.allocate("tiny")
    allocator.allocate("tiny")
    with pytest.raises(RuntimeError):
        allocator.allocate("tiny")


def test_default_allocator_pools_disjoint():
    allocator = default_allocator()
    seen = set()
    for pool in ("probes", "recursives", "public", "authoritatives", "anycast"):
        for _ in range(10):
            address = allocator.allocate(pool)
            assert address not in seen
            seen.add(address)
    assert allocator.allocated_count() == 50
