"""CLI-level tests for ``repro lint``: exit codes, formats, baseline
flow, and the real source tree staying clean."""

import json
import os
import pathlib
import subprocess
import sys
import textwrap

from repro.lint.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

DIRTY = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)

CLEAN = textwrap.dedent(
    """
    def stamp(sim):
        return sim.now
    """
)


def write(tmp_path, source):
    path = tmp_path / "fixture.py"
    path.write_text(source)
    return path


def test_findings_exit_1(tmp_path, capsys):
    path = write(tmp_path, DIRTY)
    assert main([str(path), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out
    assert "1 finding(s)" in out


def test_clean_exit_0(tmp_path, capsys):
    path = write(tmp_path, CLEAN)
    assert main([str(path), "--no-baseline"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_unknown_rule_exit_2(tmp_path):
    path = write(tmp_path, CLEAN)
    assert main([str(path), "--rules", "no-such-rule"]) == 2


def test_rules_subset(tmp_path):
    # The determinism finding is invisible when only the slots rule runs.
    path = write(tmp_path, DIRTY)
    assert main([str(path), "--no-baseline", "--rules", "hot-path-slots"]) == 0


def test_json_format(tmp_path, capsys):
    path = write(tmp_path, DIRTY)
    assert main([str(path), "--no-baseline", "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["checked_files"] == 1
    assert len(report["findings"]) == 1
    assert report["findings"][0]["rule"] == "determinism"
    assert report["stale_baseline_entries"] == []


def test_output_written_even_on_failure(tmp_path):
    path = write(tmp_path, DIRTY)
    out_path = tmp_path / "report.json"
    assert main([str(path), "--no-baseline", "--output", str(out_path)]) == 1
    report = json.loads(out_path.read_text())
    assert len(report["findings"]) == 1


def test_baseline_flow(tmp_path, capsys):
    """Grandfather a finding, pass, fix it, then fail on the stale entry."""
    path = write(tmp_path, DIRTY)
    baseline = tmp_path / "baseline.json"

    assert main([str(path), "--baseline", str(baseline), "--write-baseline"]) == 0
    capsys.readouterr()

    # Baselined finding no longer fails the run.
    assert main([str(path), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # Fixing the finding makes the baseline entry stale -> exit 1 so the
    # file shrinks monotonically.
    path.write_text(CLEAN)
    assert main([str(path), "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_real_tree_is_clean():
    """The shipped source tree lints clean against the shipped baseline.

    This is the guarantee CI enforces; keeping it in the unit suite means
    a violating patch fails fast locally too.
    """
    assert main([]) == 0


def test_changed_rejects_explicit_paths(tmp_path, capsys):
    path = write(tmp_path, CLEAN)
    assert main([str(path), "--changed"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_changed_scopes_to_git_diff(capsys):
    """--changed lints the git-changed subset of the package tree.

    Runs against the real repo checkout: whatever git reports changed,
    the scoped run must lint at most that many files and stay clean
    (or print the no-changed-files notice on a pristine tree).
    """
    assert main(["--changed"]) == 0
    out = capsys.readouterr().out
    assert "repro lint:" in out


def test_module_entry_point():
    """``python -m repro lint`` (the canonical invocation) exits 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
