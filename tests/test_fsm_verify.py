"""The static verifier: graph checks, calibration pins, CLI surface.

The calibration tests are the §6 cross-check the tentpole promises:
the bounds the verifier *computes from the tables* must (a) match the
query counts the simulator *measures* (pinned against the software-study
goldens) and (b) sit within the calibration band of the paper's
measured amplification (BIND 3→12, Unbound 5→46 under full failure).
"""

import json
import pathlib

from repro.fsm import Machine, State, Transition
from repro.fsm.profiles import VerifyProfile, shipped_profiles
from repro.fsm.verify import (
    CALIBRATION_BAND,
    serial_attempts,
    verify_machine,
    verify_profiles,
    worst_case_bound,
)
from repro.resolvers.retry import RetryPolicy, bind_profile

GOLDENS = (
    pathlib.Path(__file__).resolve().parent / "goldens" / "fsm_port.json"
)


# ----------------------------------------------------------------------
# Shipped tables are verified
# ----------------------------------------------------------------------
def test_shipped_profiles_have_no_findings():
    findings, bounds = verify_profiles()
    assert findings == []
    assert [b.profile for b in bounds] == ["bind", "unbound", "forwarder"]


def test_bounds_by_profile():
    bounds = {b.profile: b for b in verify_profiles()[1]}
    assert bounds["bind"].queries == 10
    assert bounds["unbound"].queries == 54
    assert bounds["forwarder"].queries == 4
    # BIND's parent re-query opens a second deadline window; the others
    # run a single window.
    assert len(bounds["bind"].windows) == 2
    assert len(bounds["unbound"].windows) == 1
    assert len(bounds["forwarder"].windows) == 1


def test_bounds_within_paper_band():
    bounds = {b.profile: b for b in verify_profiles()[1]}
    low, high = CALIBRATION_BAND
    for name, paper in (("bind", 12.0), ("unbound", 46.0)):
        bound = bounds[name]
        assert bound.paper_attack_queries == paper
        assert low <= bound.ratio <= high
        assert bound.within_band is True
    assert bounds["forwarder"].within_band is None  # not measured in §6


def test_bounds_match_simulated_goldens():
    """The static bound equals what the simulator actually emits.

    The software-study goldens record the measured per-client-query
    counts against the dead target zone; the verifier must reproduce
    them exactly from the tables alone.
    """
    golden = json.loads(GOLDENS.read_text())
    software = golden["software"]
    bounds = {b.profile: b.queries for b in verify_profiles()[1]}
    for name in ("bind", "unbound"):
        measured = software[f"{name}:attack"]["row"]["cachetest.net"]
        assert bounds[name] == measured


def test_serial_attempts_walks_the_timeout_chain():
    policy = bind_profile()
    attempts, elapsed = serial_attempts(
        policy, policy.resolution_deadline, policy.total_budget(2)
    )
    # 0.8 * 1.4^k (cap 4.0): 0.8+1.12+1.568+2.1952+3.07328+4.0 = 12.75648;
    # the 6th send starts at 8.75648 < 11.0, the 7th would not.
    assert attempts == 6
    assert abs(elapsed - 12.75648) < 1e-9
    # Budget short-circuits the window.
    assert serial_attempts(policy, 1000.0, 3)[0] == 3
    # A closed window sends nothing.
    assert serial_attempts(policy, 0.0, 8)[0] == 0


# ----------------------------------------------------------------------
# Each finding rule fires on a broken table
# ----------------------------------------------------------------------
def fixture_machine(**overrides):
    spec = dict(
        name="fixture",
        start="A",
        states=(State("A"), State("B"), State("END", terminal=True)),
        events=("e", "f"),
        transitions=(
            Transition("A", "e", "B"),
            Transition("B", "e", "END"),
            Transition("B", "f", "A"),
        ),
        guards={},
        actions={},
    )
    spec.update(overrides)
    return Machine(**spec)


def rules_of(findings):
    return {finding.rule for finding in findings}


def test_clean_fixture_has_no_findings():
    machine = fixture_machine(
        transitions=(
            Transition("A", "e", "B"),
            Transition("A", "f", "END"),
            Transition("B", "e", "END"),
            Transition("B", "f", "A"),
        )
    )
    assert verify_machine(machine) == []


def test_structure_short_circuits_graph_walks():
    machine = fixture_machine(transitions=(Transition("A", "e", "GHOST"),))
    findings = verify_machine(machine)
    assert rules_of(findings) == {"fsm-structure"}


def test_unreachable_state_flagged():
    machine = fixture_machine(
        states=(
            State("A"),
            State("B"),
            State("ORPHAN"),
            State("END", terminal=True),
        ),
        transitions=(
            Transition("A", "e", "B"),
            Transition("A", "f", "END"),
            Transition("B", "e", "END"),
            Transition("B", "f", "A"),
            Transition("ORPHAN", "e", "END"),
        ),
    )
    findings = verify_machine(machine)
    assert any(
        f.rule == "fsm-unreachable" and "ORPHAN" in f.message for f in findings
    )


def test_dead_end_state_flagged_by_liveness():
    machine = fixture_machine(
        transitions=(
            Transition("A", "e", "B"),
            Transition("A", "f", "END"),
            Transition("B", "e", "B"),  # B can only self-loop: wedged
            Transition("B", "f", "B"),
        )
    )
    findings = verify_machine(machine)
    assert any(
        f.rule == "fsm-liveness" and "`B`" in f.message for f in findings
    )


def test_no_terminal_flagged_by_liveness():
    machine = fixture_machine(
        states=(State("A"), State("B")),
        transitions=(
            Transition("A", "e", "B"),
            Transition("A", "f", "B"),
            Transition("B", "e", "A"),
            Transition("B", "f", "A"),
        ),
    )
    findings = verify_machine(machine)
    assert any(
        f.rule == "fsm-liveness" and "no terminal" in f.message
        for f in findings
    )


def test_row_after_unguarded_row_is_shadowed():
    machine = fixture_machine(
        transitions=(
            Transition("A", "e", "B"),
            Transition("A", "e", "END"),  # dead: the row above always fires
            Transition("A", "f", "END"),
            Transition("B", "e", "END"),
            Transition("B", "f", "A"),
        )
    )
    findings = verify_machine(machine)
    assert any(
        f.rule == "fsm-shadowed" and "can never fire" in f.message
        for f in findings
    )


def test_repeated_guard_is_shadowed():
    machine = fixture_machine(
        guards={"g": lambda ctx: True},
        transitions=(
            Transition("A", "e", "B", guard="g"),
            Transition("A", "e", "END", guard="g"),
            Transition("A", "e", "END"),
            Transition("A", "f", "END"),
            Transition("B", "e", "END"),
            Transition("B", "f", "A"),
        ),
    )
    findings = verify_machine(machine)
    assert any(
        f.rule == "fsm-shadowed" and "repeats guard" in f.message
        for f in findings
    )


def test_all_guarded_pair_without_ignores_is_incomplete():
    machine = fixture_machine(
        guards={"g": lambda ctx: True},
        transitions=(
            Transition("A", "e", "B", guard="g"),  # no unguarded fallback
            Transition("A", "f", "END"),
            Transition("B", "e", "END"),
            Transition("B", "f", "A"),
        ),
    )
    findings = verify_machine(machine)
    assert any(f.rule == "fsm-incomplete" for f in findings)
    # An ignores entry makes the pair total again.
    total = fixture_machine(
        guards={"g": lambda ctx: True},
        transitions=machine.transitions,
        ignores=frozenset({("A", "e")}),
    )
    assert not any(f.rule == "fsm-incomplete" for f in verify_machine(total))


def test_emitting_cycle_without_bound_flagged():
    machine = fixture_machine(
        transitions=(
            Transition("A", "e", "B"),
            Transition("A", "f", "END"),
            Transition("B", "e", "B", sends=1),  # retry loop, no budget
            Transition("B", "f", "END"),
        )
    )
    findings = verify_machine(machine)
    assert any(f.rule == "fsm-unbounded" for f in findings)
    bounded = fixture_machine(
        transitions=(
            Transition("A", "e", "B"),
            Transition("A", "f", "END"),
            Transition("B", "e", "B", sends=1, bound="budget"),
            Transition("B", "f", "END"),
        )
    )
    assert not any(f.rule == "fsm-unbounded" for f in verify_machine(bounded))


def test_acyclic_emitting_row_needs_no_bound():
    machine = fixture_machine(
        transitions=(
            Transition("A", "e", "B", sends=1),  # fires at most once
            Transition("A", "f", "END"),
            Transition("B", "e", "END"),
            Transition("B", "f", "END"),
        )
    )
    assert not any(f.rule == "fsm-unbounded" for f in verify_machine(machine))


def test_unused_declarations_flagged():
    machine = fixture_machine(
        events=("e", "f", "never"),
        guards={"lonely": lambda ctx: True},
        actions={"idle": lambda ctx: None},
        transitions=(
            Transition("A", "e", "B"),
            Transition("A", "f", "END"),
            Transition("B", "e", "END"),
            Transition("B", "f", "A"),
        ),
    )
    messages = [f.message for f in verify_machine(machine)]
    assert any("`never`" in m and "no row handles" in m for m in messages)
    assert any("guard `lonely`" in m for m in messages)
    assert any("action `idle`" in m for m in messages)


def test_terminal_outgoing_row_flagged():
    machine = fixture_machine(
        transitions=(
            Transition("A", "e", "END"),
            Transition("A", "f", "END"),
            Transition("B", "e", "END"),
            Transition("B", "f", "A"),
            Transition("END", "e", "A"),  # dead: dispatch() never reads it
        )
    )
    findings = verify_machine(machine)
    assert any(
        f.rule == "fsm-structure" and "terminal state `END`" in f.message
        for f in findings
    )


def test_out_of_band_profile_yields_calibration_finding():
    profile = VerifyProfile(
        name="miscalibrated",
        machine=fixture_machine(
            transitions=(
                Transition("A", "e", "B"),
                Transition("A", "f", "END"),
                Transition("B", "e", "END"),
                Transition("B", "f", "A"),
            )
        ),
        policy=RetryPolicy(name="tiny", max_total_attempts=1, tries_per_server=1),
        paper_attack_queries=100.0,  # computed bound will be far below
    )
    findings, bounds = verify_profiles([profile])
    assert any(f.rule == "fsm-calibration" for f in findings)
    assert bounds[0].within_band is False


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_verify_cli_clean_run(capsys):
    from repro.fsm.cli import main

    assert main([]) == 0
    out = capsys.readouterr().out
    assert "repro verify: 2 machine(s), 3 profile(s), 0 finding(s)" in out
    assert "within band" in out


def test_verify_cli_json_report(tmp_path, capsys):
    from repro.fsm.cli import main

    out_path = tmp_path / "report.json"
    assert main(["--format", "json", "--output", str(out_path)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == json.loads(out_path.read_text())
    machines = {m["name"]: m for m in report["machines"]}
    assert machines["resolution"]["states"] == 5
    assert machines["forwarding"]["states"] == 3
    profiles = {p["profile"]: p for p in report["profiles"]}
    assert profiles["bind"]["worst_case_queries"] == 10
    assert profiles["unbound"]["worst_case_queries"] == 54
    assert report["findings"] == []


def test_verify_cli_dot_export(tmp_path):
    from repro.fsm.cli import main

    assert main(["--dot", str(tmp_path)]) == 0
    for profile in shipped_profiles():
        text = (tmp_path / f"{profile.name}.dot").read_text()
        assert text.startswith("digraph")
        assert profile.machine.start in text


def test_dot_matches_committed_renders():
    """docs/fsm/*.dot are regenerated artifacts; CI diffs them too."""
    from repro.fsm.dot import machine_to_dot
    from repro.fsm.verify import worst_case_bound

    docs = pathlib.Path(__file__).resolve().parents[1] / "docs" / "fsm"
    for profile in shipped_profiles():
        committed = (docs / f"{profile.name}.dot").read_text()
        assert profile.machine.name in committed
        assert f"profile: {profile.name}" in committed
        bound = worst_case_bound(profile)
        assert f"worst case: {bound.queries}" in committed
