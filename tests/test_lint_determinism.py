"""Fixture-snippet tests for the ``determinism`` lint rule."""

import textwrap

from repro.lint import all_checkers, run_checkers
from repro.lint.driver import parse_source


def lint(source, rel="repro/sample.py"):
    file = parse_source(textwrap.dedent(source), rel)
    return run_checkers([file], all_checkers(["determinism"])).findings


def test_wall_clock_call_flagged():
    findings = lint(
        """
        import time

        def elapsed():
            return time.time()
        """
    )
    assert len(findings) == 1
    assert findings[0].rule == "determinism"
    assert "time.time" in findings[0].message


def test_aliased_import_resolved():
    # ``import time as _walltime`` must not hide the wall clock, even
    # when the attribute is aliased to a local rather than called.
    findings = lint(
        """
        import time as _walltime

        perf = _walltime.perf_counter
        """
    )
    assert len(findings) == 1
    assert "time.perf_counter" in findings[0].message


def test_from_import_of_wall_clock_flagged():
    findings = lint("from time import perf_counter\n")
    assert len(findings) == 1
    assert "perf_counter" in findings[0].message


def test_datetime_now_flagged():
    findings = lint(
        """
        from datetime import datetime

        stamp = datetime.now()
        """
    )
    assert len(findings) == 1
    assert "datetime.datetime.now" in findings[0].message


def test_global_random_draw_flagged():
    findings = lint(
        """
        import random

        def jitter():
            return random.random()
        """
    )
    assert len(findings) == 1
    assert "shared global" in findings[0].message


def test_secrets_import_flagged():
    findings = lint("import secrets\n")
    assert len(findings) == 1
    assert "secrets" in findings[0].message


def test_set_iteration_flagged():
    findings = lint(
        """
        def fan_out(items):
            for item in {1, 2, 3}:
                yield item
            return [x for x in set(items)]
        """
    )
    assert len(findings) == 2
    assert all("hash-order" in finding.message for finding in findings)


def test_clean_simulation_code_passes():
    findings = lint(
        """
        def schedule(sim, rng, items):
            now = sim.now
            delay = rng.expovariate(1.0)
            for item in sorted(set(items)):
                sim.call_later(delay, print, item, now)
        """
    )
    assert findings == []
