"""CLI surface of the observability layers.

Scaled like tests/test_cli.py: small probe counts, experiment G/H, so
each invocation stays in the tier-1 time budget.
"""

from repro.__main__ import build_parser, main
from repro.obs import import_metrics, import_spans, validate_span_chains


def test_parser_accepts_obs_flags():
    parser = build_parser()
    for argv in (
        ["ddos", "H", "--trace", "/tmp/s.jsonl", "--metrics-out", "/tmp/m.jsonl"],
        ["baseline", "60", "--trace", "/tmp/s.jsonl"],
        ["report", "--metrics-out", "/tmp/m.jsonl"],
        ["profile", "H", "--probes", "50", "--top", "3"],
        ["analyze-trace", "/tmp/s.jsonl", "--mode", "trace-summary", "--top", "5"],
    ):
        parser.parse_args(argv)


def test_cli_ddos_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "spans.jsonl"
    metrics_path = tmp_path / "metrics.jsonl"
    assert (
        main(
            [
                "ddos", "G", "--probes", "30",
                "--trace", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "wrote" in output and "spans" in output

    with trace_path.open() as stream:
        spans = import_spans(stream)
    assert validate_span_chains(spans)  # schema + completeness
    with metrics_path.open() as stream:
        snapshots = import_metrics(stream)
    assert snapshots
    assert all("stub.queries" in snap.values for snap in snapshots)


def test_cli_baseline_trace(tmp_path, capsys):
    trace_path = tmp_path / "spans.jsonl"
    assert (
        main(["baseline", "60", "--probes", "40", "--trace", str(trace_path)])
        == 0
    )
    capsys.readouterr()
    with trace_path.open() as stream:
        assert validate_span_chains(import_spans(stream))


def test_cli_trace_summary_mode(tmp_path, capsys):
    trace_path = tmp_path / "spans.jsonl"
    assert main(["ddos", "G", "--probes", "24", "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    assert (
        main(
            ["analyze-trace", str(trace_path), "--mode", "trace-summary", "--top", "3"]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "slowest 3 query lifecycles" in output
    assert "spans per lifecycle by outcome" in output


def test_cli_profile(capsys):
    assert main(["profile", "G", "--probes", "24", "--top", "4"]) == 0
    output = capsys.readouterr().out
    assert "Simulation kernel profile" in output
    assert "events processed" in output
    assert "callback sites by wall time" in output


def test_cli_traced_run_with_cache(tmp_path, capsys):
    """Warm-cache reruns replay identical telemetry files."""
    cache_dir = str(tmp_path / "cache")
    trace_path = tmp_path / "spans.jsonl"
    argv = [
        "ddos", "G", "--probes", "20",
        "--trace", str(trace_path), "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    capsys.readouterr()
    cold = trace_path.read_text()
    assert main(argv) == 0
    assert trace_path.read_text() == cold
