"""CLI surface of the observability layers.

Scaled like tests/test_cli.py: small probe counts, experiment G/H, so
each invocation stays in the tier-1 time budget.
"""

import pytest

from repro.__main__ import build_parser, main
from repro.obs import (
    import_metrics,
    import_spans,
    import_timeline,
    validate_span_chains,
    validate_timeline,
)


def test_parser_accepts_obs_flags():
    parser = build_parser()
    for argv in (
        ["ddos", "H", "--trace", "/tmp/s.jsonl", "--metrics-out", "/tmp/m.jsonl"],
        ["ddos", "H", "--timeline", "/tmp/t.jsonl", "--timeline-interval", "300"],
        ["baseline", "60", "--trace", "/tmp/s.jsonl"],
        ["baseline", "60", "--timeline", "/tmp/t.jsonl"],
        ["report", "--metrics-out", "/tmp/m.jsonl"],
        ["report", "--timeline", "/tmp/t.jsonl"],
        ["profile", "H", "--probes", "50", "--top", "3"],
        ["analyze-trace", "/tmp/s.jsonl", "--mode", "trace-summary", "--top", "5"],
        ["timeline", "/tmp/t.jsonl", "--format", "csv", "--series", "offered_qps"],
        ["timeline", "/tmp/t.jsonl", "--run", "ddos-H", "--attack-window", "60:120"],
    ):
        parser.parse_args(argv)


def test_cli_ddos_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "spans.jsonl"
    metrics_path = tmp_path / "metrics.jsonl"
    assert (
        main(
            [
                "ddos", "G", "--probes", "30",
                "--trace", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "wrote" in output and "spans" in output

    with trace_path.open() as stream:
        spans = import_spans(stream)
    assert validate_span_chains(spans)  # schema + completeness
    with metrics_path.open() as stream:
        snapshots = import_metrics(stream)
    assert snapshots
    assert all("stub.queries" in snap.values for snap in snapshots)


def test_cli_baseline_trace(tmp_path, capsys):
    trace_path = tmp_path / "spans.jsonl"
    assert (
        main(["baseline", "60", "--probes", "40", "--trace", str(trace_path)])
        == 0
    )
    capsys.readouterr()
    with trace_path.open() as stream:
        assert validate_span_chains(import_spans(stream))


def test_cli_trace_summary_mode(tmp_path, capsys):
    trace_path = tmp_path / "spans.jsonl"
    assert main(["ddos", "G", "--probes", "24", "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    assert (
        main(
            ["analyze-trace", str(trace_path), "--mode", "trace-summary", "--top", "3"]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "slowest 3 query lifecycles" in output
    assert "spans per lifecycle by outcome" in output


def test_cli_profile(capsys):
    assert main(["profile", "G", "--probes", "24", "--top", "4"]) == 0
    output = capsys.readouterr().out
    assert "Simulation kernel profile" in output
    assert "events processed" in output
    assert "callback sites by wall time" in output


def test_cli_ddos_timeline_export_and_render(tmp_path, capsys):
    timeline_path = tmp_path / "timeline.jsonl"
    assert (
        main(
            [
                "ddos", "G", "--probes", "16",
                "--timeline", str(timeline_path),
                "--timeline-interval", "300",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "timeline points" in output

    with timeline_path.open() as stream:
        runs = import_timeline(stream)
    assert list(runs) == ["ddos-G"]
    validate_timeline(runs["ddos-G"])

    # Text rendering: series columns plus the attack-window annotation
    # (derived from the ddos-G run label, no --attack-window needed).
    assert main(["timeline", str(timeline_path)]) == 0
    text = capsys.readouterr().out
    assert "offered_qps" in text and "atk" in text and "*" in text

    # CSV rendering with a series filter.
    argv = [
        "timeline", str(timeline_path),
        "--format", "csv", "--series", "offered_qps,client_ok_ratio",
    ]
    assert main(argv) == 0
    csv_text = capsys.readouterr().out
    assert csv_text.splitlines()[0] == "time,index,offered_qps,client_ok_ratio"

    # Unknown series and unknown run labels fail with a helpful error.
    with pytest.raises(SystemExit, match="series not in timeline"):
        main(["timeline", str(timeline_path), "--series", "nope"])
    with pytest.raises(SystemExit, match="no run"):
        main(["timeline", str(timeline_path), "--run", "ddos-Z"])


def test_cli_trace_summary_per_hop_breakdown(tmp_path, capsys):
    trace_path = tmp_path / "spans.jsonl"
    assert main(["ddos", "G", "--probes", "16", "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    assert (
        main(["analyze-trace", str(trace_path), "--mode", "trace-summary"]) == 0
    )
    output = capsys.readouterr().out
    assert "per-hop latency" in output
    assert "recursive->auth" in output


def test_cli_traced_run_with_cache(tmp_path, capsys):
    """Warm-cache reruns replay identical telemetry files."""
    cache_dir = str(tmp_path / "cache")
    trace_path = tmp_path / "spans.jsonl"
    argv = [
        "ddos", "G", "--probes", "20",
        "--trace", str(trace_path), "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    capsys.readouterr()
    cold = trace_path.read_text()
    assert main(argv) == 0
    assert trace_path.read_text() == cold
