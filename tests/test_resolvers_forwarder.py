"""Unit tests for first-hop forwarding resolvers."""

import pytest

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import Rcode, RRType
from repro.netem.attack import AttackWindow
from repro.resolvers.cache import CacheConfig
from repro.resolvers.forwarder import ForwarderConfig, ForwardingResolver
from repro.resolvers.recursive import RecursiveResolver
from repro.resolvers.stub import StubAnswer, StubResolver

QNAME = Name.from_text("1414.cachetest.nl.")


def build_chain(world, upstream_count=2, forwarder_config=None):
    upstreams = []
    for index in range(upstream_count):
        resolver = RecursiveResolver(
            world.sim,
            world.network,
            f"100.64.0.{index + 1}",
            world.root_hints,
            name=f"rn{index}",
        )
        upstreams.append(resolver.address)
    forwarder = ForwardingResolver(
        world.sim,
        world.network,
        "100.64.9.1",
        upstreams,
        config=forwarder_config,
        name="fwd",
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.1", 1414, [forwarder.address], results
    )
    return forwarder, stub, results


def test_forwarding_resolves_through_upstream(world):
    forwarder, stub, results = build_chain(world)
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert results[0].status == StubAnswer.OK
    assert forwarder.upstream_queries == 1


def test_forwarder_requires_upstreams(world):
    with pytest.raises(ValueError):
        ForwardingResolver(world.sim, world.network, "100.64.9.9", [])


def test_forwarder_cache_answers_second_query(world):
    config = ForwarderConfig(cache=CacheConfig())
    forwarder, stub, results = build_chain(world, forwarder_config=config)
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 1)
    world.sim.run(until=world.sim.now + 30.0)
    assert [r.status for r in results] == [StubAnswer.OK, StubAnswer.OK]
    assert forwarder.upstream_queries == 1  # second from forwarder cache
    # Cached answer TTL decremented relative to the original.
    assert results[1].returned_ttl <= results[0].returned_ttl


def test_forwarder_rotates_upstreams_on_timeout(world):
    # Kill upstream 1 only: it is unregistered, so queries blackhole.
    dead = "100.64.0.250"
    forwarder = ForwardingResolver(
        world.sim, world.network, "100.64.9.2", [dead, "100.64.0.1"], name="fwd2"
    )
    RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, name="rn"
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.2", 7, [forwarder.address], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert results[0].status == StubAnswer.OK
    assert forwarder.upstream_timeouts >= 1
    assert forwarder.upstream_queries >= 2


def test_forwarder_servfail_failover(world):
    # First upstream always SERVFAILs (no route to authoritatives):
    # simulate by a recursive with no usable root hints target.
    class ServfailHost:
        def __init__(self, sim, network, address):
            self.network = network
            self.address = address
            network.register(address, self.on_packet)

        def on_packet(self, packet):
            from repro.dnscore.message import make_response

            if packet.message.is_response:
                return
            self.network.send(
                self.address,
                packet.src,
                make_response(packet.message, rcode=Rcode.SERVFAIL, ra=True),
            )

    ServfailHost(world.sim, world.network, "100.64.0.99")
    RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints, name="rn"
    )
    forwarder = ForwardingResolver(
        world.sim,
        world.network,
        "100.64.9.3",
        ["100.64.0.99", "100.64.0.1"],
        name="fwd3",
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.3", 8, [forwarder.address], results
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=30.0)
    assert results[0].status == StubAnswer.OK


def test_forwarder_gives_up_with_servfail(world):
    forwarder = ForwardingResolver(
        world.sim,
        world.network,
        "100.64.9.4",
        ["100.64.0.250", "100.64.0.251"],  # both blackholes
        name="fwd4",
    )
    results = []
    stub = StubResolver(
        world.sim,
        world.network,
        "10.0.0.4",
        9,
        [forwarder.address],
        results,
        timeout=60.0,  # generous so the SERVFAIL arrives before stub timeout
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=120.0)
    assert results[0].status == StubAnswer.SERVFAIL
    assert forwarder.upstream_timeouts == forwarder.upstream_queries


def test_forwarder_does_not_cache_failures(world):
    config = ForwarderConfig(cache=CacheConfig())
    forwarder = ForwardingResolver(
        world.sim, world.network, "100.64.9.5", ["100.64.0.250"],
        config=config, name="fwd5",
    )
    results = []
    stub = StubResolver(
        world.sim, world.network, "10.0.0.5", 10, [forwarder.address], results,
        timeout=60.0,
    )
    world.sim.call_later(0.0, stub.query_round, QNAME, RRType.AAAA, 0)
    world.sim.run(until=90.0)
    assert len(forwarder.cache) == 0


def test_flush_caches_noop_without_cache(world):
    forwarder, _stub, _results = build_chain(world)
    forwarder.flush_caches()  # must not raise
    stats = forwarder.stats()
    assert set(stats) == {"client_queries", "upstream_queries", "upstream_timeouts"}
