"""Tests for the persistent result cache (repro.runner.cache)."""

import enum
import os
import pickle
import subprocess
import sys

import pytest

import repro.runner.cache as cache_module
from repro.core.experiments import BASELINE_EXPERIMENTS, DDOS_EXPERIMENTS
from repro.runner import (
    MISS,
    ClearStats,
    DiskCache,
    baseline_request,
    cache_key,
    code_fingerprint,
    ddos_request,
    glue_request,
)


def test_code_fingerprint_stable_within_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 16


def test_cache_key_is_stable_for_equal_requests():
    first = ddos_request(DDOS_EXPERIMENTS["A"], probe_count=100, seed=1)
    second = ddos_request(DDOS_EXPERIMENTS["A"], probe_count=100, seed=1)
    assert cache_key(first) == cache_key(second)


def test_cache_key_differs_across_request_fields():
    base = ddos_request(DDOS_EXPERIMENTS["A"], probe_count=100, seed=1)
    keys = {
        cache_key(base),
        cache_key(ddos_request(DDOS_EXPERIMENTS["B"], probe_count=100, seed=1)),
        cache_key(ddos_request(DDOS_EXPERIMENTS["A"], probe_count=101, seed=1)),
        cache_key(ddos_request(DDOS_EXPERIMENTS["A"], probe_count=100, seed=2)),
        cache_key(
            baseline_request(BASELINE_EXPERIMENTS["60"], probe_count=100, seed=1)
        ),
        cache_key(glue_request(probe_count=100, seed=1, rounds=3)),
    }
    assert len(keys) == 6


def test_cache_key_changes_with_code_fingerprint(monkeypatch):
    request = ddos_request(DDOS_EXPERIMENTS["A"])
    before = cache_key(request)
    monkeypatch.setattr(cache_module, "_FINGERPRINT", "0" * 16)
    after = cache_key(request)
    assert before != after


def test_disk_cache_roundtrip(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.get("deadbeef") is MISS
    cache.put("deadbeef", {"value": 42})
    assert cache.get("deadbeef") == {"value": 42}
    assert "deadbeef" in cache
    assert cache.hits == 1 and cache.misses == 1


def test_disk_cache_none_is_a_hit_not_a_miss(tmp_path):
    # The regression MISS exists for: a cached ``None`` must not read as
    # a miss and trigger a re-run.
    cache = DiskCache(tmp_path)
    cache.put("nullkey", None)
    value = cache.get("nullkey")
    assert value is None
    assert value is not MISS
    assert cache.hits == 1 and cache.misses == 0


def test_miss_sentinel_is_falsy_and_reprs():
    assert not MISS
    assert repr(MISS) == "<MISS>"


def test_disk_cache_treats_corruption_as_miss(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("key", [1, 2, 3])
    cache.path_for("key").write_bytes(b"not a pickle")
    assert cache.get("key") is MISS
    cache.put("key", [4, 5])
    assert cache.get("key") == [4, 5]


def test_disk_cache_write_is_atomic(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("key", list(range(100)))
    # No temp droppings left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["key.pkl"]
    with cache.path_for("key").open("rb") as stream:
        assert pickle.load(stream) == list(range(100))


def test_disk_cache_clear(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("a", 1)
    cache.put("b", 2)
    stats = cache.clear()
    assert stats == ClearStats(entries=2, temps=0)
    assert cache.get("a") is MISS


def _plant_temp(tmp_path, name, age_seconds):
    temp = tmp_path / name
    temp.write_bytes(b"partial write")
    old = temp.stat().st_mtime - age_seconds
    os.utime(temp, (old, old))
    return temp


def test_clear_counts_orphaned_temp_files(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("a", 1)
    _plant_temp(tmp_path, f"{cache_module.TEMP_PREFIX}orphan.pkl", 0)
    stats = cache.clear()
    assert stats == ClearStats(entries=1, temps=1)
    assert list(tmp_path.iterdir()) == []


def test_put_sweeps_aged_temp_orphans_only(tmp_path):
    cache = DiskCache(tmp_path)
    aged = _plant_temp(
        tmp_path,
        f"{cache_module.TEMP_PREFIX}old.pkl",
        cache_module.TEMP_SWEEP_AGE_SECONDS * 2,
    )
    young = _plant_temp(tmp_path, f"{cache_module.TEMP_PREFIX}new.pkl", 0)
    cache.put("entry", 7)
    # The aged orphan (a killed put()) is gone; the young staging file
    # could belong to a concurrent put() and must survive.
    assert not aged.exists()
    assert young.exists()
    assert cache.get("entry") == 7


def test_sweep_temps_honors_min_age(tmp_path):
    cache = DiskCache(tmp_path)
    _plant_temp(tmp_path, f"{cache_module.TEMP_PREFIX}a.pkl", 7200)
    _plant_temp(tmp_path, f"{cache_module.TEMP_PREFIX}b.pkl", 0)
    assert cache.sweep_temps(min_age_seconds=3600) == 1
    assert cache.sweep_temps() == 1  # no age filter: removes the rest


def test_default_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(tmp_path / "runs"))
    assert cache_module.default_cache_dir() == tmp_path / "runs"


def test_canonical_encoding_handles_nested_dataclasses():
    request = ddos_request(DDOS_EXPERIMENTS["A"], probe_count=10, seed=3)
    encoded = cache_module._canonical(request)
    assert encoded["__dataclass__"] == "RunRequest"
    assert encoded["spec"]["__dataclass__"] == "DDoSSpec"
    assert encoded["spec"]["ttl"] == 3600


class _Color(enum.Enum):
    RED = 1
    BLUE = 2


class _Priority(enum.IntEnum):
    LOW = 1
    HIGH = 2


def test_canonical_sets_are_order_independent():
    first = cache_module._canonical({"servers", "both", "ns1", "ns2"})
    second = cache_module._canonical({"ns2", "ns1", "both", "servers"})
    assert first == second
    assert set(first) == {"__set__"}
    assert first["__set__"] == sorted(first["__set__"])


def test_canonical_frozenset_matches_set():
    members = frozenset({3, 1, 2})
    assert cache_module._canonical(members) == cache_module._canonical(
        {1, 2, 3}
    )


def test_canonical_enum_is_tagged_not_scalar():
    encoded = cache_module._canonical(_Color.RED)
    assert encoded == {"__enum__": "_Color.RED"}
    # An IntEnum must not collapse to its integer value: _Priority.LOW
    # and the plain int 1 mean different requests.
    assert cache_module._canonical(_Priority.LOW) != cache_module._canonical(1)


def test_canonical_bytes_roundtrip_to_hex():
    assert cache_module._canonical(b"\x00\xff") == {"__bytes__": "00ff"}
    assert cache_module._canonical(bytearray(b"\x00\xff")) == {
        "__bytes__": "00ff"
    }


def test_canonical_rejects_types_without_stable_encoding():
    with pytest.raises(TypeError, match="stable cache key"):
        cache_module._canonical(object())


def _subprocess_key(hash_seed):
    """Compute a cache key in a child process with its own hash seed."""
    program = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.core.experiments import DDOS_EXPERIMENTS\n"
        "from repro.runner import cache_key, ddos_request\n"
        "import repro.runner.cache as cache_module\n"
        "cache_module._FINGERPRINT = 'f' * 16\n"
        "request = ddos_request(DDOS_EXPERIMENTS['A'], probe_count=10, seed=3)\n"
        "payload = {'options': frozenset({'rrl', 'filter', 'capacity'}),\n"
        "           'request': request}\n"
        "print(cache_key(payload))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
    result = subprocess.run(
        [sys.executable, "-c", program],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    return result.stdout.strip()


def test_cache_key_stable_across_processes_and_hash_seeds():
    # Set iteration order follows the per-process string hash seed; the
    # canonical encoding must erase that, or a warm cache goes cold on
    # every new interpreter.
    keys = {_subprocess_key(seed) for seed in (0, 1, 42)}
    assert len(keys) == 1, keys
