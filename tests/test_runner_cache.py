"""Tests for the persistent result cache (repro.runner.cache)."""

import pickle

import pytest

import repro.runner.cache as cache_module
from repro.core.experiments import BASELINE_EXPERIMENTS, DDOS_EXPERIMENTS
from repro.runner import (
    DiskCache,
    baseline_request,
    cache_key,
    code_fingerprint,
    ddos_request,
    glue_request,
)


def test_code_fingerprint_stable_within_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 16


def test_cache_key_is_stable_for_equal_requests():
    first = ddos_request(DDOS_EXPERIMENTS["A"], probe_count=100, seed=1)
    second = ddos_request(DDOS_EXPERIMENTS["A"], probe_count=100, seed=1)
    assert cache_key(first) == cache_key(second)


def test_cache_key_differs_across_request_fields():
    base = ddos_request(DDOS_EXPERIMENTS["A"], probe_count=100, seed=1)
    keys = {
        cache_key(base),
        cache_key(ddos_request(DDOS_EXPERIMENTS["B"], probe_count=100, seed=1)),
        cache_key(ddos_request(DDOS_EXPERIMENTS["A"], probe_count=101, seed=1)),
        cache_key(ddos_request(DDOS_EXPERIMENTS["A"], probe_count=100, seed=2)),
        cache_key(
            baseline_request(BASELINE_EXPERIMENTS["60"], probe_count=100, seed=1)
        ),
        cache_key(glue_request(probe_count=100, seed=1, rounds=3)),
    }
    assert len(keys) == 6


def test_cache_key_changes_with_code_fingerprint(monkeypatch):
    request = ddos_request(DDOS_EXPERIMENTS["A"])
    before = cache_key(request)
    monkeypatch.setattr(cache_module, "_FINGERPRINT", "0" * 16)
    after = cache_key(request)
    assert before != after


def test_disk_cache_roundtrip(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.get("deadbeef") is None
    cache.put("deadbeef", {"value": 42})
    assert cache.get("deadbeef") == {"value": 42}
    assert "deadbeef" in cache
    assert cache.hits == 1 and cache.misses == 1


def test_disk_cache_treats_corruption_as_miss(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("key", [1, 2, 3])
    cache.path_for("key").write_bytes(b"not a pickle")
    assert cache.get("key") is None
    cache.put("key", [4, 5])
    assert cache.get("key") == [4, 5]


def test_disk_cache_write_is_atomic(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("key", list(range(100)))
    # No temp droppings left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["key.pkl"]
    with cache.path_for("key").open("rb") as stream:
        assert pickle.load(stream) == list(range(100))


def test_disk_cache_clear(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.clear() == 2
    assert cache.get("a") is None


def test_default_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(tmp_path / "runs"))
    assert cache_module.default_cache_dir() == tmp_path / "runs"


def test_canonical_encoding_handles_nested_dataclasses():
    request = ddos_request(DDOS_EXPERIMENTS["A"], probe_count=10, seed=3)
    encoded = cache_module._canonical(request)
    assert encoded["__dataclass__"] == "RunRequest"
    assert encoded["spec"]["__dataclass__"] == "DDoSSpec"
    assert encoded["spec"]["ttl"] == 3600
