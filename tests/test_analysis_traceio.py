"""Tests for trace export/import and the §4-style trace analyzer."""

import io

import pytest

from repro.analysis.traceio import (
    TraceFormatError,
    analyze_trace,
    export_query_log,
    import_query_log,
)
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.servers.querylog import QueryLog


def make_log() -> QueryLog:
    log = QueryLog()
    log.record(1.5, "100.64.0.1", Name.from_text("1.cachetest.nl."), RRType.AAAA, "at1")
    log.record(2.0, "8.8.8.8", Name.from_text("cachetest.nl."), RRType.NS, "at2")
    log.record(700.0, "100.64.0.1", Name.from_text("1.cachetest.nl."), RRType.AAAA, "at1")
    return log


def test_export_import_roundtrip():
    log = make_log()
    buffer = io.StringIO()
    assert export_query_log(log, buffer) == 3
    buffer.seek(0)
    loaded = import_query_log(buffer)
    assert len(loaded) == 3
    original = [(e.time, e.src, str(e.qname), e.qtype, e.server) for e in log.entries]
    restored = [(e.time, e.src, str(e.qname), e.qtype, e.server) for e in loaded.entries]
    assert original == restored


def test_import_skips_blank_lines():
    buffer = io.StringIO(
        '\n{"t":1,"src":"a","qname":"x.nl.","qtype":"A","server":"s"}\n\n'
    )
    assert len(import_query_log(buffer)) == 1


def test_import_rejects_bad_json():
    with pytest.raises(TraceFormatError) as error:
        import_query_log(io.StringIO("{not json}\n"))
    assert error.value.line_number == 1


def test_import_rejects_missing_fields():
    with pytest.raises(TraceFormatError):
        import_query_log(io.StringIO('{"t":1,"src":"a"}\n'))


def test_import_rejects_unknown_qtype():
    with pytest.raises(TraceFormatError):
        import_query_log(
            io.StringIO('{"t":1,"src":"a","qname":"x.","qtype":"BOGUS","server":"s"}\n')
        )


def make_behavior_log() -> QueryLog:
    """Two honoring sources, one early, one parallel burst source."""
    log = QueryLog()
    qname = Name.from_text("ns1.dns.nl.")
    for src, period in (("honor-1", 3650.0), ("honor-2", 3700.0), ("early", 1800.0)):
        for step in range(6):
            log.record(step * period, src, qname, RRType.A, "s")
    # Parallel-query source: bursts of 3 every TTL.
    for step in range(6):
        for offset in (0.0, 0.5, 1.0):
            log.record(step * 3650.0 + offset, "bursty", qname, RRType.A, "s")
    # Public source (on the Appendix C list) with too few queries.
    log.record(1.0, "8.8.8.8", qname, RRType.A, "s")
    return log


def test_analyze_trace_classifies_behavior():
    analysis = analyze_trace(make_behavior_log(), ttl=3600.0)
    assert analysis.analyzed_sources == 4
    assert analysis.honoring_fraction == pytest.approx(3 / 4)
    assert analysis.early_fraction == pytest.approx(1 / 4)
    assert analysis.public_sources == 1
    assert analysis.close_query_fraction > 0.2  # the burst deltas
    assert analysis.median_of_medians is not None


def test_analyze_trace_empty():
    analysis = analyze_trace(QueryLog(), ttl=3600.0)
    assert analysis.total_queries == 0
    assert analysis.close_query_fraction == 0.0
    assert analysis.median_of_medians is None


def test_analyze_simulated_experiment_trace(world):
    """End to end: run a resolver against the world, export its server
    trace, re-import, analyze."""
    from repro.resolvers.recursive import RecursiveResolver

    resolver = RecursiveResolver(
        world.sim, world.network, "100.64.0.1", world.root_hints
    )
    qname = Name.from_text("1414.cachetest.nl.")
    # Query every TTL (3600): TTL-honoring pattern.
    for step in range(5):
        world.sim.at(
            step * 3650.0, resolver.resolve, qname, RRType.AAAA, lambda o: None
        )
    world.sim.run(until=5 * 3650.0 + 30.0)
    buffer = io.StringIO()
    export_query_log(world.query_log, buffer)
    buffer.seek(0)
    analysis = analyze_trace(import_query_log(buffer), ttl=3600.0)
    assert analysis.total_queries >= 5
    assert analysis.honoring_fraction == 1.0


def test_rows_shape():
    rows = analyze_trace(make_behavior_log(), ttl=3600.0).as_rows()
    labels = [label for label, _ in rows]
    assert "Close-query fraction (<10s)" in labels
    assert "Sources on the paper's public list" in labels
