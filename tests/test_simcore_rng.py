"""Unit tests for deterministic named random streams."""

from repro.simcore.rng import RandomStreams


def test_same_name_same_instance():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_same_seed_reproduces_draws():
    first = RandomStreams(99).stream("net.loss")
    second = RandomStreams(99).stream("net.loss")
    assert [first.random() for _ in range(10)] == [
        second.random() for _ in range(10)
    ]


def test_different_names_give_different_draws():
    streams = RandomStreams(7)
    a = [streams.stream("alpha").random() for _ in range(5)]
    b = [streams.stream("beta").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_draws():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_new_consumer_does_not_perturb_existing_stream():
    plain = RandomStreams(5)
    reference = [plain.stream("main").random() for _ in range(5)]

    mixed = RandomStreams(5)
    mixed_draws = []
    for index in range(5):
        mixed_draws.append(mixed.stream("main").random())
        mixed.stream(f"other-{index}").random()  # interleaved consumer
    assert mixed_draws == reference


def test_fork_is_deterministic_and_independent():
    parent = RandomStreams(3)
    child_a = parent.fork("worker")
    child_b = RandomStreams(3).fork("worker")
    assert child_a.stream("s").random() == child_b.stream("s").random()
    assert parent.fork("worker").master_seed != parent.fork("drone").master_seed
