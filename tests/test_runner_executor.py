"""Tests for the parallel experiment executor (repro.runner.executor)."""

import pytest

from repro.core.experiments import (
    BASELINE_EXPERIMENTS,
    DDOS_EXPERIMENTS,
    run_ddos,
)
from repro.core.experiments.ddos import DDoSResult
from repro.runner import (
    DiskCache,
    RunRequest,
    TestbedSnapshot,
    baseline_request,
    cache_dump_request,
    ddos_request,
    detach_result,
    execute_request,
    glue_request,
    probe_case_request,
    resolve_jobs,
    run_many,
    software_request,
)

SMALL = 30


def test_unknown_kind_raises():
    with pytest.raises(ValueError, match="unknown request kind"):
        execute_request(RunRequest("nonsense"))


def test_resolve_jobs():
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(3) == 3


def test_execute_request_returns_detached_ddos_result():
    request = ddos_request(DDOS_EXPERIMENTS["G"], probe_count=SMALL, seed=7)
    result = execute_request(request)
    assert isinstance(result, DDoSResult)
    assert isinstance(result.testbed, TestbedSnapshot)
    # The snapshot still feeds every testbed-derived series.
    assert result.amplification() > 0
    assert result.unique_rn()
    assert result.per_probe()


def test_detach_result_matches_live_result():
    live = run_ddos(DDOS_EXPERIMENTS["G"], probe_count=SMALL, seed=7)
    detached = detach_result(live)
    assert detached.outcomes_by_round() == live.outcomes_by_round()
    assert detached.amplification() == live.amplification()
    assert detached.authoritative_load() == live.authoritative_load()
    # Idempotent.
    assert detach_result(detached) is detached


def test_run_many_preserves_request_order():
    requests = [
        ddos_request(DDOS_EXPERIMENTS["G"], probe_count=SMALL, seed=7),
        baseline_request(BASELINE_EXPERIMENTS["60"], probe_count=40, seed=7),
        software_request("bind", True, seed=7),
    ]
    results = run_many(requests, jobs=1)
    assert results[0].spec.key == "G"
    assert results[1].spec.key == "60"
    assert results[2].software == "bind" and results[2].under_attack


def test_run_many_parallel_matches_serial_mixed_kinds():
    requests = [
        software_request("bind", False, seed=7),
        software_request("unbound", True, seed=7),
        cache_dump_request("bind"),
        probe_case_request(seed=11, rounds=5),
        glue_request(probe_count=40, seed=7, rounds=2),
    ]
    serial = run_many(requests, jobs=1)
    parallel = run_many(requests, jobs=4)
    assert serial[0].as_row() == parallel[0].as_row()
    assert serial[1].as_row() == parallel[1].as_row()
    assert serial[2].ns_cached_ttl == parallel[2].ns_cached_ttl
    assert [row.auth_queries for row in serial[3].rows] == [
        row.auth_queries for row in parallel[3].rows
    ]
    assert serial[4].ns_buckets == parallel[4].ns_buckets


def test_run_many_uses_cache(tmp_path):
    cache = DiskCache(tmp_path)
    requests = [baseline_request(BASELINE_EXPERIMENTS["60"], probe_count=40)]
    first = run_many(requests, jobs=1, cache=cache)
    assert cache.misses == 1 and cache.hits == 0
    second = run_many(requests, jobs=1, cache=cache)
    assert cache.hits == 1
    assert first[0].miss_rate == second[0].miss_rate
    assert first[0].dataset == second[0].dataset
    assert first[0].table2 == second[0].table2


def test_run_many_partial_cache_hit(tmp_path):
    cache = DiskCache(tmp_path)
    first = run_many(
        [baseline_request(BASELINE_EXPERIMENTS["60"], probe_count=40)],
        cache=cache,
    )
    mixed = run_many(
        [
            baseline_request(BASELINE_EXPERIMENTS["60"], probe_count=40),
            software_request("bind", False),
        ],
        jobs=1,
        cache=cache,
    )
    assert cache.hits == 1
    assert mixed[0].table2 == first[0].table2
    assert mixed[1].software == "bind"


def test_run_many_empty_batch():
    assert run_many([], jobs=4) == []
