#!/usr/bin/env python3
"""Sweep attack intensity: how much loss can the DNS absorb?

The paper's §5.4 finding is that client failures grow much more slowly
than the attack's packet-loss rate, because caches answer some clients
and retries push queries through residual capacity. This example sweeps
loss from 0% to 95% with the paper's Experiment-E/F/H timeline and
prints failure rate and authoritative amplification per step.

Run:  python examples/ddos_resilience_sweep.py
"""

from repro import DDoSSpec, run_ddos

LOSS_STEPS = (0.0, 0.25, 0.50, 0.75, 0.90, 0.95)


def main() -> None:
    print("loss on both authoritatives -> client failures (TTL 1800 s)\n")
    print(f"{'loss':>6} {'fail before':>12} {'fail during':>12} {'amplif.':>9}")
    for loss in LOSS_STEPS:
        spec = DDoSSpec(
            key=f"sweep-{int(loss * 100)}",
            ttl=1800,
            ddos_start_min=60,
            ddos_duration_min=60,
            queries_before=6,
            total_duration_min=150,
            probe_interval_min=10,
            loss_fraction=loss,
            servers="both",
        )
        result = run_ddos(spec, probe_count=300, seed=7)
        amplification = result.amplification() if loss > 0 else 1.0
        print(
            f"{loss:>6.0%} {result.failure_fraction_before_attack():>12.1%} "
            f"{result.failure_fraction_during_attack():>12.1%} "
            f"{amplification:>8.1f}x"
        )
    print(
        "\nNote the nonlinearity the paper reports: 50% loss is nearly\n"
        "invisible to clients, 75% hurts a little, and even at 90% more\n"
        "than half of queries still succeed — while legitimate retry\n"
        "traffic at the servers multiplies."
    )


if __name__ == "__main__":
    main()
