#!/usr/bin/env python3
"""Export figure data as CSV for external plotting tools.

Runs Experiment H and writes the data behind Figures 8c (client
outcomes), 9c (latency quantiles), and 10b (authoritative load by query
kind) into ``figures/``, ready for gnuplot/matplotlib/a spreadsheet.

Run:  python examples/export_figures.py
"""

import pathlib

from repro import DDOS_EXPERIMENTS, run_ddos
from repro.analysis.export import (
    write_latency_csv,
    write_load_csv,
    write_outcomes_csv,
)


def main() -> None:
    output_dir = pathlib.Path("figures")
    output_dir.mkdir(exist_ok=True)
    spec = DDOS_EXPERIMENTS["H"]
    print(spec.describe())
    print("running (400 probes)...")
    result = run_ddos(spec, probe_count=400, seed=42)

    with open(output_dir / "fig08c_outcomes.csv", "w", newline="") as stream:
        rows = write_outcomes_csv(result.outcomes_by_round(), stream)
    print(f"figures/fig08c_outcomes.csv      ({rows} rounds)")

    with open(output_dir / "fig09c_latency.csv", "w", newline="") as stream:
        rows = write_latency_csv(result.latency_series(), stream)
    print(f"figures/fig09c_latency.csv       ({rows} rounds)")

    with open(output_dir / "fig10b_load.csv", "w", newline="") as stream:
        rows = write_load_csv(result.authoritative_load(), stream)
    print(f"figures/fig10b_load.csv          ({rows} rounds)")

    print(
        "\nPlot, for example, with gnuplot:\n"
        "  set datafile separator ','\n"
        "  plot 'figures/fig08c_outcomes.csv' using 1:2 with lines title 'OK'"
    )


if __name__ == "__main__":
    main()
