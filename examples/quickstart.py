#!/usr/bin/env python3
"""Quickstart: emulate a DDoS against a DNS zone and watch clients cope.

Runs the paper's Experiment H (90% packet loss at both authoritative
servers for an hour, 30-minute TTL) at small scale and prints the client
experience per 10-minute round, plus the retry amplification the
authoritatives absorb.

Run:  python examples/quickstart.py
"""

from repro import DDOS_EXPERIMENTS, run_ddos

def main() -> None:
    spec = DDOS_EXPERIMENTS["H"]
    print(spec.describe())
    print("simulating ~500 probes (paper used ~9k)...\n")
    result = run_ddos(spec, probe_count=500, seed=42)

    print(f"{'minute':>7} {'OK':>7} {'SERVFAIL':>9} {'no answer':>10}")
    attack_start, attack_end = spec.attack_window
    for round_index, bucket in sorted(result.outcomes_by_round().items()):
        start = round_index * spec.round_seconds
        marker = "  <- DDoS" if attack_start <= start < attack_end else ""
        print(
            f"{start / 60:>7.0f} {bucket['ok']:>7} {bucket['servfail']:>9} "
            f"{bucket['no_answer']:>10}{marker}"
        )

    print()
    before = result.failure_fraction_before_attack()
    during = result.failure_fraction_during_attack()
    print(f"failure fraction before attack: {before:6.1%}   (paper: ~4.8%)")
    print(f"failure fraction during attack: {during:6.1%}   (paper: ~40.3%)")
    print(f"authoritative load multiplier:  {result.amplification():5.1f}x  (paper: ~8.2x)")
    print(
        "\nCaching and retries together keep more than half of clients\n"
        "served through a 90% packet-loss attack — the paper's headline."
    )


if __name__ == "__main__":
    main()
