#!/usr/bin/env python3
"""Why the Root rode out its DDoS while Dyn's customers went dark (§8).

The paper's closing argument: the outcome of a DNS DDoS depends on the
zone's TTL. Root-zone data is cacheable for a day or more, so caches
bridged the 2015 root attacks; Dyn's CDN customers used 120–300 s TTLs,
so caches drained within minutes of the October 2016 attack and users
saw failures.

This example fixes the attack (90% loss on both authoritatives for an
hour) and sweeps the zone TTL, printing the failure rate clients see —
the quantitative version of "longer TTLs buy DDoS resilience".

Run:  python examples/cdn_ttl_tradeoff.py
"""

from repro import DDoSSpec, run_ddos

TTL_STEPS = (60, 300, 900, 1800, 3600)


def main() -> None:
    print("zone TTL -> client failures under a 90% loss, 60-minute attack\n")
    print(f"{'TTL':>6} {'fail during attack':>19} {'median lat (ms)':>16}")
    for ttl in TTL_STEPS:
        spec = DDoSSpec(
            key=f"ttl-{ttl}",
            ttl=ttl,
            ddos_start_min=60,
            ddos_duration_min=60,
            queries_before=6,
            total_duration_min=150,
            probe_interval_min=10,
            loss_fraction=0.90,
            servers="both",
        )
        result = run_ddos(spec, probe_count=300, seed=7)
        mid_attack_round = int(spec.attack_window[0] // spec.round_seconds) + 3
        latency = {
            row.round_index: row.median_ms for row in result.latency_series()
        }
        print(
            f"{ttl:>6} {result.failure_fraction_during_attack():>19.1%} "
            f"{latency.get(mid_attack_round, float('nan')):>16.0f}"
        )
    print(
        "\nShort CDN-style TTLs (60–300 s) leave clients exposed the moment\n"
        "caches drain; TTLs of 30+ minutes ride out most of the attack —\n"
        "the paper suggests CDN operators weigh this into DDoS planning."
    )


if __name__ == "__main__":
    main()
