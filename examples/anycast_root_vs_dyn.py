#!/usr/bin/env python3
"""Anycast under partial-site attack: why outcomes were uneven (§8).

During the Nov 2015 root DDoS, some anycast letters lost most sites
while others were untouched — and end users barely noticed. This
example serves one zone from a single anycast nameserver with six
sites, attacks three of them with 90% loss, and splits clients by the
site their resolver's catchment homes on. It then repeats the run with
the operators' classic mitigation: withdrawing the attacked sites'
routes mid-attack, re-homing everyone onto healthy sites.

Run:  python examples/anycast_root_vs_dyn.py
"""

from repro.core.experiments.anycast_study import AnycastSpec, run_anycast_study


def print_series(result, catchment: str) -> None:
    series = result.outcomes_by_round(catchment)
    row = []
    for round_index in sorted(series):
        bucket = series[round_index]
        ok = bucket["ok"] / max(1, sum(bucket.values()))
        row.append(f"{ok:4.0%}")
    print(f"  {catchment:>9}: " + " ".join(row))


def main() -> None:
    print("6 anycast sites, 3 under 90% loss for minutes 60-120\n")

    print("Served fraction per 10-minute round, by pre-attack catchment:")
    plain = run_anycast_study(probe_count=300, seed=7)
    print_series(plain, "attacked")
    print_series(plain, "healthy")
    print(
        f"\n  attack-window failures: attacked catchment "
        f"{plain.failure_during_attack('attacked'):.1%}, healthy "
        f"{plain.failure_during_attack('healthy'):.1%}"
    )

    print("\nSame attack, withdrawing the attacked sites 20 min in:")
    withdrawn = run_anycast_study(
        AnycastSpec(withdraw_after_min=20), probe_count=300, seed=7
    )
    print_series(withdrawn, "attacked")
    print(
        f"\n  attack-window failures in the attacked catchment drop to "
        f"{withdrawn.failure_during_attack('attacked'):.1%}"
    )
    print(
        "\nThe paper's point: a DNS service is as resilient as its most\n"
        "reachable replica — clients in clean catchments never notice,\n"
        "and rerouting (or more NS addresses) rescues the rest."
    )


if __name__ == "__main__":
    main()
