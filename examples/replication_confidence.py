#!/usr/bin/env python3
"""Put error bars on a reproduced claim by replicating across seeds.

The paper reports single measurement campaigns; a simulator can rerun
the world. This example replicates Experiment H (90% loss, 30-minute
TTL) across several seeds and reports mean, standard deviation, and a
95% confidence interval for the attack-window failure fraction and the
authoritative load multiplier — then checks whether the paper's numbers
fall inside the intervals.

Run:  python examples/replication_confidence.py
"""

from repro.analysis.stats import run_over_seeds
from repro.core.experiments import DDOS_EXPERIMENTS, run_ddos

PAPER_FAILURE = 0.403
PAPER_AMPLIFICATION = 8.2
SEEDS = (11, 23, 37, 41, 53)


def main() -> None:
    spec = DDOS_EXPERIMENTS["H"]
    print(f"{spec.describe()}")
    print(f"replicating across seeds {SEEDS} at 250 probes each...\n")

    sweeps = run_over_seeds(
        lambda seed: run_ddos(spec, probe_count=250, seed=seed),
        {
            "failure fraction (attack window)": (
                lambda result: result.failure_fraction_during_attack()
            ),
            "authoritative amplification": (
                lambda result: result.amplification()
            ),
        },
        seeds=SEEDS,
    )

    targets = {
        "failure fraction (attack window)": PAPER_FAILURE,
        "authoritative amplification": PAPER_AMPLIFICATION,
    }
    for name, sweep in sweeps.items():
        low, high = sweep.ci95
        paper = targets[name]
        verdict = "inside" if sweep.contains(paper) else "outside"
        print(f"{name}:")
        print(f"  mean {sweep.mean:.3f} ± {sweep.std:.3f} (std)")
        print(f"  95% CI [{low:.3f}, {high:.3f}]")
        print(f"  paper value {paper:.3f} falls {verdict} the interval\n")


if __name__ == "__main__":
    main()
