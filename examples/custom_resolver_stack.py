#!/usr/bin/env python3
"""Build a custom DNS world with the library's low-level API.

Everything the experiment runners assemble can be wired by hand: a zone
tree, authoritative servers, a serve-stale recursive, a home-router
forwarder, and a stub. This example constructs a small deployment,
kills the authoritatives mid-run, and shows serve-stale answering with
TTL 0 (the behavior the paper caught Google/OpenDNS experimenting with,
§5.3, now RFC 8767).

Run:  python examples/custom_resolver_stack.py
"""

from repro import (
    AttackWindow,
    AuthoritativeServer,
    Name,
    Network,
    RecursiveResolver,
    ResolverConfig,
    RRType,
    Simulator,
    StubResolver,
    ZoneSpec,
    build_hierarchy,
)
from repro.netem.attack import AttackSchedule
from repro.netem.link import PerHostLatency
from repro.resolvers.cache import CacheConfig
from repro.resolvers.forwarder import ForwardingResolver
from repro.servers.hierarchy import PROBE_ANSWER_PREFIX, attach_probe_synthesizer
from repro.simcore.rng import RandomStreams


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(2024)
    attacks = AttackSchedule()
    network = Network(
        sim,
        streams,
        latency=PerHostLatency(jitter=0.2),
        attacks=attacks,
        wire_format=True,  # every packet round-trips the RFC 1035 codec
    )

    # Zone tree: root -> nl -> example.nl with a 5-minute TTL.
    zones = build_hierarchy(
        [
            ZoneSpec(".", {"a.root-servers.test.": "193.0.0.1"}),
            ZoneSpec("nl.", {"ns1.dns.nl.": "193.0.1.1"}),
            ZoneSpec(
                "example.nl.",
                {"ns1.example.nl.": "192.0.2.1", "ns2.example.nl.": "192.0.2.2"},
                ns_ttl=300,
                a_ttl=300,
                negative_ttl=60,
            ),
        ]
    )
    example = zones[Name.from_text("example.nl.")]
    attach_probe_synthesizer(example, PROBE_ANSWER_PREFIX, 300)

    AuthoritativeServer(sim, network, "193.0.0.1", [zones[Name.from_text(".")]], name="root")
    AuthoritativeServer(sim, network, "193.0.1.1", [zones[Name.from_text("nl.")]], name="nl")
    AuthoritativeServer(sim, network, "192.0.2.1", [example], name="ns1")
    AuthoritativeServer(sim, network, "192.0.2.2", [example], name="ns2")

    # A serve-stale recursive (RFC 8767 style) ...
    config = ResolverConfig(cache=CacheConfig(stale_window=3600.0))
    config.serve_stale = True
    recursive = RecursiveResolver(
        sim, network, "100.64.0.1", ["193.0.0.1"], config=config, name="rn"
    )
    # ... behind a caching home-router forwarder.
    forwarder = ForwardingResolver(
        sim, network, "100.64.9.1", [recursive.address], name="cpe"
    )
    stub = StubResolver(sim, network, "10.0.0.1", 99, [forwarder.address])

    qname = Name.from_text("99.example.nl.")

    # Timeline: query at t=10 (warm), authoritatives die at t=60,
    # query again at t=120 (cache still fresh), t=400 (expired -> stale).
    sim.at(10.0, stub.query_round, qname, RRType.AAAA, 0)
    sim.at(60.0, attacks.add, AttackWindow(["192.0.2.1", "192.0.2.2"], 60.0, 10_000.0, 1.0))
    sim.at(120.0, stub.query_round, qname, RRType.AAAA, 1)
    sim.at(400.0, stub.query_round, qname, RRType.AAAA, 2)
    sim.run(until=500.0)

    print("round  status      TTL   note")
    notes = {
        0: "fresh answer from the authoritative",
        1: "cache hit while authoritatives are DEAD",
        2: "stale answer (TTL 0) after cache expiry",
    }
    for answer in stub.results:
        ttl = answer.returned_ttl if answer.returned_ttl is not None else "-"
        print(
            f"{answer.round_index:>5}  {answer.status:<10} {ttl!s:>4}   "
            f"{notes[answer.round_index]}"
        )
    print(f"\nrecursive cache stats: {recursive.cache.stats()}")


if __name__ == "__main__":
    main()
