#!/usr/bin/env python3
"""The authoritative's view of a DDoS: legitimate retries pile on (§6).

During an attack, recursives retry aggressively, re-resolve nameserver
records, and multi-level resolver deployments fan a single client query
across many exit recursives. This example runs Experiment I (90% loss,
TTL 60 s) and prints the offered load per query kind — the same series
as the paper's Figure 10c — plus the unique-recursives growth of
Figure 12 and the per-probe fan-out of Figure 11.

Run:  python examples/authoritative_amplification.py
"""

from repro import DDOS_EXPERIMENTS, run_ddos


def main() -> None:
    spec = DDOS_EXPERIMENTS["I"]
    print(spec.describe())
    result = run_ddos(spec, probe_count=400, seed=11)

    print("\nOffered queries at the authoritatives, by kind (Figure 10c):")
    kinds = ("AAAA-for-PID", "NS", "A-for-NS", "AAAA-for-NS")
    header = f"{'minute':>7}" + "".join(f"{kind:>14}" for kind in kinds)
    print(header)
    load = result.authoritative_load()
    attack_start, attack_end = spec.attack_window
    for round_index in sorted(load):
        start = round_index * spec.round_seconds
        marker = "  <- DDoS" if attack_start <= start < attack_end else ""
        row = load[round_index]
        print(
            f"{start / 60:>7.0f}"
            + "".join(f"{row.get(kind, 0):>14}" for kind in kinds)
            + marker
        )

    print(f"\noffered-load multiplier: {result.amplification():.1f}x (paper: ~8.1x)")

    print("\nUnique recursives reaching the authoritatives (Figure 12):")
    for round_index, count in sorted(result.unique_rn().items()):
        print(f"  minute {round_index * 10:>4.0f}: {count}")

    print("\nPer-probe amplification (Figure 11):")
    print(f"{'minute':>7} {'Rn med':>7} {'Rn p90':>7} {'q med':>6} {'q p90':>6} {'q max':>6}")
    for row in result.per_probe():
        print(
            f"{row.round_index * 10:>7.0f} {row.rn_median:>7.0f} "
            f"{row.rn_p90:>7.0f} {row.queries_median:>6.0f} "
            f"{row.queries_p90:>6.0f} {row.queries_max:>6.0f}"
        )


if __name__ == "__main__":
    main()
