"""The positive DNS cache: TTL-bounded RRset storage with caps and LRU.

Models the cache behaviors the paper measures (§3.1):

* full-TTL honoring (the default),
* TTL caps — ``max_ttl`` (Unbound defaults to 1 day, BIND to 1 week, some
  cloud resolvers cap at 60 s) and ``min_ttl`` overrides,
* limited size with LRU eviction,
* explicit flushes (operator action / restarts),
* stale retention beyond expiry for serve-stale resolvers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.dnscore.name import Name
from repro.dnscore.records import RRset
from repro.dnscore.rrtypes import RRType

CacheKey = Tuple[Name, RRType]


@dataclass
class CacheConfig:
    """Knobs for one cache instance."""

    max_entries: int = 100_000
    min_ttl: int = 0
    max_ttl: int = 7 * 86400  # BIND's default cap of one week
    # How long after expiry an entry remains usable for serve-stale.
    stale_window: float = 0.0

    def effective_ttl(self, ttl: int) -> int:
        """Apply the min/max caps to an incoming TTL."""
        return max(self.min_ttl, min(ttl, self.max_ttl))


class CacheEntry:
    """One cached RRset with bookkeeping.

    ``authoritative`` implements the RFC 2181 §5.4.1 credibility ranking
    the paper's Appendix A probes: data from authoritative answers ranks
    above referral/glue data; glue may steer iteration but (for most
    resolvers) is not served to clients, and never overwrites
    authoritative data that is still fresh.
    """

    __slots__ = (
        "rrset",
        "inserted_at",
        "expires_at",
        "original_ttl",
        "stored_ttl",
        "authoritative",
    )

    def __init__(
        self,
        rrset: RRset,
        inserted_at: float,
        stored_ttl: int,
        authoritative: bool = True,
    ) -> None:
        self.rrset = rrset
        self.inserted_at = inserted_at
        self.stored_ttl = stored_ttl
        self.original_ttl = rrset.ttl
        self.expires_at = inserted_at + stored_ttl
        self.authoritative = authoritative

    def remaining_ttl(self, now: float) -> int:
        """Whole seconds left before expiry (floor, min 0)."""
        return max(0, int(self.expires_at - now))

    def is_fresh(self, now: float) -> bool:
        return now < self.expires_at

    def is_usable_stale(self, now: float, window: float) -> bool:
        return self.expires_at <= now < self.expires_at + window


class DnsCache:
    """An RRset cache keyed by (name, type)."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def put(
        self, rrset: RRset, now: float, authoritative: bool = True
    ) -> CacheEntry:
        """Insert the RRset, applying TTL caps and credibility ranking.

        Lower-credibility data (glue) never replaces fresh authoritative
        data; the existing entry is returned unchanged in that case.
        """
        key = (rrset.name, rrset.rtype)
        existing = self._entries.get(key)
        if (
            existing is not None
            and existing.authoritative
            and not authoritative
            and existing.is_fresh(now)
        ):
            return existing
        stored_ttl = self.config.effective_ttl(rrset.ttl)
        entry = CacheEntry(rrset, now, stored_ttl, authoritative=authoritative)
        if existing is not None:
            del self._entries[key]
        self._entries[key] = entry
        self._evict_if_needed()
        return entry

    def _evict_if_needed(self) -> None:
        while len(self._entries) > self.config.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def remove(self, name: Name, rtype: RRType) -> None:
        self._entries.pop((name, rtype), None)

    def flush(self) -> None:
        """Drop everything (restart / operator flush)."""
        self._entries.clear()
        self.flushes += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(
        self,
        name: Name,
        rtype: RRType,
        now: float,
        require_authoritative: bool = False,
    ) -> Optional[RRset]:
        """Fresh lookup: the RRset with decremented TTL, or None.

        With ``require_authoritative`` only answer-credibility data is
        returned (what a resolver may serve to clients); without it,
        glue-credibility data is visible too (what a resolver may use to
        steer iteration). Expired entries are kept if a stale window is
        configured (they may still satisfy :meth:`get_stale`), otherwise
        dropped.
        """
        key = (name, rtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.is_fresh(now):
            if self.config.stale_window <= 0:
                del self._entries[key]
            self.misses += 1
            return None
        if require_authoritative and not entry.authoritative:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.rrset.with_ttl(entry.remaining_ttl(now))

    def peek(self, name: Name, rtype: RRType) -> Optional[CacheEntry]:
        """Entry regardless of freshness; no statistics, no LRU touch."""
        return self._entries.get((name, rtype))

    def get_stale(self, name: Name, rtype: RRType, now: float) -> Optional[RRset]:
        """Serve-stale lookup: an expired-but-in-window RRset with TTL 0.

        The draft the paper cites ([19], now RFC 8767) specifies serving
        stale data with TTL 0 when authoritatives are unreachable; the
        paper observed exactly that (1031 of 1048 stale answers had
        TTL 0, §5.3).
        """
        entry = self._entries.get((name, rtype))
        if entry is None:
            return None
        if not entry.is_usable_stale(now, self.config.stale_window):
            return None
        self.stale_hits += 1
        return entry.rrset.with_ttl(0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def contains_fresh(self, name: Name, rtype: RRType, now: float) -> bool:
        entry = self._entries.get((name, rtype))
        return entry is not None and entry.is_fresh(now)

    def dump(self, now: float) -> list:
        """Cache-dump rows like ``rndc dumpdb`` / ``unbound-control``:
        (name, rtype, remaining TTL, authoritative) for fresh entries."""
        rows = []
        for (name, rtype), entry in self._entries.items():
            if entry.is_fresh(now):
                rows.append(
                    (name, rtype, entry.remaining_ttl(now), entry.authoritative)
                )
        return rows

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
            "flushes": self.flushes,
        }
