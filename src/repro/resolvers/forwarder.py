"""First-hop forwarding resolvers ("R1" in the paper's Figure 1).

Home routers and small ISP boxes rarely run full iterative resolvers;
they forward to one or more upstream recursives, retrying the next
upstream on timeout. That per-hop retrying is one of the paper's
amplification mechanisms (§6.2): during a DDoS, a probe's single query
fans out across R1's whole upstream set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.dnscore.message import Message, make_query, make_response
from repro.dnscore.rrtypes import Rcode
from repro.fsm import forwarding as fsm
from repro.fsm.forwarding import COMPILED_FORWARDING
from repro.netem.topology import Host
from repro.netem.transport import Network, Packet
from repro.resolvers.cache import CacheConfig, DnsCache
from repro.resolvers.retry import RetryPolicy, forwarder_profile
from repro.simcore.simulator import Simulator


@dataclass
class ForwarderConfig:
    """Knobs for a forwarding resolver."""

    retry: RetryPolicy = field(default_factory=forwarder_profile)
    # Forwarders may run a small cache of their own (many CPEs do).
    cache: Optional[CacheConfig] = None
    # Rotate through upstreams on retry (True) or hammer the first (False).
    rotate_upstreams: bool = True


class _Forwarded:
    """One client query being relayed, driven by the forwarding FSM."""

    __slots__ = (
        "forwarder",
        "client",
        "client_message",
        "attempt",
        "timer",
        "done",
        "fsm_state",
        "event_payload",
    )

    def __init__(
        self,
        forwarder: "ForwardingResolver",
        client: str,
        client_message: Message,
    ) -> None:
        self.forwarder = forwarder
        self.client = client
        self.client_message = client_message
        self.attempt = 0
        self.timer: Any = None
        self.done = False
        self.event_payload: Any = None
        COMPILED_FORWARDING.begin(self)


class ForwardingResolver(Host):
    """Relays client queries to upstream recursives with retries."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        upstreams: Sequence[str],
        config: Optional[ForwarderConfig] = None,
        name: str = "",
        tracer=None,
        metrics=None,
    ) -> None:
        super().__init__(sim, network, address, name=name)
        if not upstreams:
            raise ValueError("a forwarder needs at least one upstream")
        self.upstreams = list(upstreams)
        self.config = config or ForwarderConfig()
        self.cache = DnsCache(self.config.cache) if self.config.cache else None
        self._pending: Dict[int, _Forwarded] = {}
        self.client_queries = 0
        self.upstream_queries = 0
        self.upstream_timeouts = 0
        self._trace = tracer
        self._metrics = metrics
        if metrics is not None:
            # Shared across all forwarders (get-or-create by name): the
            # registry aggregates the R1 layer, per-instance counts stay
            # on the host attributes above.
            self._m_client = metrics.counter("forwarder.client_queries")
            self._m_upstream = metrics.counter("forwarder.upstream_queries")
            self._m_timeouts = metrics.counter("forwarder.timeouts")
            self._m_cache_hits = metrics.counter("forwarder.cache_hits")

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        if packet.message.is_response:
            self._on_upstream_response(packet)
        else:
            self._on_client_query(packet)

    def _on_client_query(self, packet: Packet) -> None:
        message = packet.message
        if message.question is None:
            return
        self.client_queries += 1
        if self._metrics is not None:
            self._m_client.value += 1
        if self.cache is not None:
            cached = self.cache.get(
                message.question.qname,
                message.question.qtype,
                self.sim.now,
                require_authoritative=True,
            )
            if cached is not None:
                if self._trace is not None and message.trace_id is not None:
                    self._trace.emit(message.trace_id, "cache_hit", self.name)
                if self._metrics is not None:
                    self._m_cache_hits.value += 1
                response = make_response(
                    message, ra=True, answers=list(cached)
                )
                response.trace_id = message.trace_id
                self.send(packet.src, response)
                return
        state = _Forwarded(self, packet.src, message)
        self._dispatch(state, fsm.BEGIN)

    # ------------------------------------------------------------------
    def _dispatch(
        self, state: _Forwarded, event: str, payload: Any = None
    ) -> None:
        COMPILED_FORWARDING.dispatch(state, event, payload)

    def _send_upstream(self, state: _Forwarded) -> None:
        policy = self.config.retry
        if self.config.rotate_upstreams:
            upstream = self.upstreams[state.attempt % len(self.upstreams)]
        else:
            upstream = self.upstreams[0]
        outgoing = make_query(
            state.client_message.question.qname,
            state.client_message.question.qtype,
            rd=True,
        )
        timeout = policy.timeout_for_attempt(state.attempt)
        trace_id = state.client_message.trace_id
        if self._trace is not None and trace_id is not None:
            outgoing.trace_id = trace_id
            self._trace.emit(
                trace_id,
                "forward" if state.attempt == 0 else "retry",
                self.name,
                detail=f"upstream={upstream} attempt={state.attempt}",
            )
        state.attempt += 1
        self._pending[outgoing.msg_id] = state
        state.timer = self.sim.call_later(
            timeout, self._on_timeout, outgoing.msg_id
        )
        if self._trace is not None and trace_id is not None:
            # A timer abandoned by a late response emits a `cancelled`
            # terminator via Event.cancel() instead of leaking open.
            state.timer.span = (self._trace, trace_id, self.name)
        self.upstream_queries += 1
        if self._metrics is not None:
            self._m_upstream.value += 1
        self.send(upstream, outgoing)

    def _on_timeout(self, msg_id: int) -> None:
        state = self._pending.pop(msg_id, None)
        if state is None or state.done:
            return
        self.upstream_timeouts += 1
        if self._metrics is not None:
            self._m_timeouts.value += 1
        trace_id = state.client_message.trace_id
        if self._trace is not None and trace_id is not None:
            self._trace.emit(trace_id, "timeout", self.name)
        self._dispatch(state, fsm.TIMEOUT)

    def _on_upstream_response(self, packet: Packet) -> None:
        state = self._pending.pop(packet.message.msg_id, None)
        if state is None or state.done:
            return
        if state.timer is not None:
            state.timer.cancel()
        upstream_message = packet.message
        if upstream_message.rcode == Rcode.SERVFAIL:
            # Budget permitting, a SERVFAIL means "try the next upstream";
            # otherwise the table's fall-through row relays it.
            self._dispatch(state, fsm.UPSTREAM_SERVFAIL, upstream_message)
            return
        self._dispatch(state, fsm.UPSTREAM_FINAL, upstream_message)

    def _respond_servfail(self, state: _Forwarded) -> None:
        self._finish(
            state,
            make_response(state.client_message, rcode=Rcode.SERVFAIL, ra=True),
        )

    def _relay_response(
        self, state: _Forwarded, upstream_message: Message
    ) -> None:
        if (
            self.cache is not None
            and upstream_message.rcode == Rcode.NOERROR
            and upstream_message.answers
        ):
            rrset = upstream_message.answer_rrset()
            if rrset is not None and rrset.ttl > 0:
                self.cache.put(rrset, self.sim.now, authoritative=True)
        response = make_response(
            state.client_message,
            rcode=upstream_message.rcode,
            ra=True,
            answers=upstream_message.answers,
        )
        self._finish(state, response)

    def _finish(self, state: _Forwarded, response: Message) -> None:
        state.done = True
        response.trace_id = state.client_message.trace_id
        self.send(state.client, response)

    def flush_caches(self) -> None:
        if self.cache is not None:
            self.cache.flush()

    def stats(self) -> dict:
        return {
            "client_queries": self.client_queries,
            "upstream_queries": self.upstream_queries,
            "upstream_timeouts": self.upstream_timeouts,
        }
