"""Retry and timeout policies for iterative resolution.

The paper (§6.2, Appendix E, and Yu et al. [56]) shows recursives retry
aggressively when authoritatives are unresponsive — BIND making ~4× and
Unbound ~7–14× its normal query count — with exponential backoff. The
policy object captures: per-attempt timeout growth, the per-server try
budget, the overall resolution deadline, and whether parents are
re-queried on failure (BIND re-asks the parents, Unbound does not).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RetryPolicy:
    """Timeout/retry shape for one resolver implementation."""

    name: str = "generic"
    # First attempt timeout; subsequent attempts multiply by backoff.
    initial_timeout: float = 0.8
    backoff: float = 2.0
    max_timeout: float = 8.0
    # How many times one server may be tried for one query.
    tries_per_server: int = 3
    # Hard cap on attempts for one (qname, qtype) across all servers.
    max_total_attempts: int = 8
    # Give up on the whole resolution after this many seconds.
    resolution_deadline: float = 12.0
    # Re-query the parent zone's servers if the child zone is dead.
    requery_parent_on_failure: bool = False

    def timeout_for_attempt(self, attempt: int) -> float:
        """Timeout for the ``attempt``-th attempt (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        timeout = self.initial_timeout * (self.backoff ** attempt)
        return min(timeout, self.max_timeout)

    def total_budget(self, server_count: int) -> int:
        """Attempts allowed for a query given ``server_count`` servers."""
        if server_count <= 0:
            return 0
        return min(self.max_total_attempts, self.tries_per_server * server_count)


def bind_profile() -> RetryPolicy:
    """BIND-like: ~800 ms initial timeout, doubling, re-asks parents.

    Calibrated so that with 2 authoritatives and full loss a single
    AAAA resolution emits ~6–7 queries to the target zone before
    SERVFAIL, and parents get re-queried (paper Appendix E: BIND sends
    12 queries total vs 3 under normal operation).
    """
    return RetryPolicy(
        name="bind",
        initial_timeout=0.8,
        backoff=1.4,
        max_timeout=4.0,
        tries_per_server=4,
        max_total_attempts=8,
        resolution_deadline=11.0,
        requery_parent_on_failure=True,
    )


def unbound_profile() -> RetryPolicy:
    """Unbound-like: faster first timeout, more total attempts.

    Unbound probes servers with shorter initial timeouts and keeps
    trying the whole NS set; it also chases AAAA records for the
    nameservers themselves, which the resolver config enables
    separately (paper Appendix E: 46 queries under failure).
    """
    return RetryPolicy(
        name="unbound",
        initial_timeout=0.376,
        backoff=1.4,
        max_timeout=3.0,
        tries_per_server=5,
        max_total_attempts=12,
        resolution_deadline=14.0,
        requery_parent_on_failure=False,
    )


def forwarder_profile() -> RetryPolicy:
    """A simple forwarder's upstream retry: short, few attempts."""
    return RetryPolicy(
        name="forwarder",
        initial_timeout=1.0,
        backoff=2.0,
        max_timeout=4.0,
        tries_per_server=2,
        max_total_attempts=4,
        resolution_deadline=8.0,
        requery_parent_on_failure=False,
    )
