"""Recursive resolver stack: caches, retries, iteration, forwarding.

The components compose the way real deployments do (paper §2.1, §3.5):

* :class:`~repro.resolvers.recursive.RecursiveResolver` — a full iterative
  resolver (an "Rn"): walks from the root hints, chases referrals, caches
  positives and negatives, retries with exponential backoff, optionally
  serves stale data when authoritatives are unreachable.
* :class:`~repro.resolvers.forwarder.ForwardingResolver` — a first-hop
  "R1" (home router / small ISP box) that forwards to one or more
  upstreams, with or without its own cache.
* :class:`~repro.resolvers.pool.PublicResolverPool` — a public anycast
  service: an ingress address load-balancing across backend recursives
  with independent (fragmented) caches.
* :class:`~repro.resolvers.stub.StubResolver` — the client stub with the
  Atlas 5-second timeout.
"""

from repro.resolvers.cache import CacheConfig, CacheEntry, DnsCache
from repro.resolvers.forwarder import ForwardingResolver
from repro.resolvers.negcache import NegativeCache
from repro.resolvers.pool import PublicResolverPool
from repro.resolvers.recursive import RecursiveResolver, ResolverConfig
from repro.resolvers.retry import RetryPolicy, bind_profile, unbound_profile
from repro.resolvers.selection import ServerSelector
from repro.resolvers.stub import StubAnswer, StubResolver

__all__ = [
    "CacheConfig",
    "CacheEntry",
    "DnsCache",
    "ForwardingResolver",
    "NegativeCache",
    "PublicResolverPool",
    "RecursiveResolver",
    "ResolverConfig",
    "RetryPolicy",
    "ServerSelector",
    "StubAnswer",
    "StubResolver",
    "bind_profile",
    "unbound_profile",
]
