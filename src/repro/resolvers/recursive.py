"""The full iterative recursive resolver ("Rn" in the paper's Figure 1).

The resolver walks the zone tree from the root hints, follows referrals,
caches positive and negative answers with credibility ranking, retries
unresponsive servers with exponential backoff, optionally chases
nameserver A/AAAA records like Unbound, re-queries parents on failure like
BIND, and can serve stale data when every authoritative is unreachable.

All of the paper's server-side phenomena (Figures 10–12, 16) emerge from
these mechanisms: retry amplification, AAAA-for-NS chatter against a
60-second negative TTL, parent re-querying, and delegation re-validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dnscore.message import Message, make_query, make_response
from repro.dnscore.name import Name
from repro.dnscore.records import CNAME, NS, ResourceRecord, RRset
from repro.dnscore.rrtypes import Rcode, RRType
from repro.fsm import resolution as fsm
from repro.fsm.resolution import COMPILED_RESOLUTION
from repro.netem.topology import Host
from repro.netem.transport import Network, Packet
from repro.resolvers.cache import CacheConfig, DnsCache
from repro.resolvers.negcache import NegativeCache
from repro.resolvers.retry import RetryPolicy, bind_profile
from repro.resolvers.selection import ServerSelector
from repro.simcore.simulator import Simulator

OutcomeCallback = Callable[["Outcome"], None]

DEFAULT_NEGATIVE_TTL = 900


@dataclass
class ResolverConfig:
    """Behavioral knobs for one recursive resolver."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    retry: RetryPolicy = field(default_factory=bind_profile)
    # Serve expired entries (TTL 0) when all authoritatives fail.
    serve_stale: bool = False
    # RFC 8767's client-response timer: if a resolution with usable stale
    # data has not completed after this long, answer stale immediately
    # (real deployments use ~1.8 s, well inside the stub's 5 s timeout).
    stale_client_timeout: float = 1.8
    # Prefetch ("hammer time"): on a cache hit whose remaining TTL has
    # dropped below ``prefetch_trigger`` of the stored TTL, refresh the
    # entry in the background so popular names never expire. Unbound's
    # prefetch and BIND's prefetch option behave this way; off by
    # default to match the paper's measured population.
    prefetch: bool = False
    prefetch_trigger: float = 0.1
    # EDNS0 payload size advertised on upstream queries (None = plain
    # DNS, 512-byte responses; 1232 is the flag-day recommendation).
    edns_payload: Optional[int] = None
    # How long a failed resolution is remembered and answered SERVFAIL
    # without retrying upstream (BIND's servfail-ttl defaults to 1 s,
    # Unbound caches failures for ~5 s). Caps the retry storm a looping
    # client can trigger. 0 disables.
    servfail_cache_ttl: float = 1.0
    # Answer clients from referral/glue-credibility data (RFC 2181
    # violation a small minority of resolvers exhibit; paper Appendix A).
    serve_glue_answers: bool = False
    # Resolve addresses of NS targets that came without glue.
    chase_ns_addresses: bool = True
    # Also chase AAAA for NS names (Unbound-like; drives the paper's
    # AAAA-for-NS traffic in Figure 10).
    chase_ns_aaaa: bool = False
    # Re-query the delegation (NS and A-for-NS) authoritatively at the
    # child instead of trusting glue (harden-glue behavior).
    requery_delegation: bool = False
    max_cname_depth: int = 8
    max_subresolution_depth: int = 3


class Outcome:
    """Result of one resolution, delivered to callbacks."""

    __slots__ = ("status", "records", "from_cache", "stale", "rcode")

    OK = "ok"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    SERVFAIL = "servfail"

    def __init__(
        self,
        status: str,
        records: Optional[List[ResourceRecord]] = None,
        from_cache: bool = False,
        stale: bool = False,
    ) -> None:
        self.status = status
        self.records = records or []
        self.from_cache = from_cache
        self.stale = stale
        if status == Outcome.OK:
            self.rcode = Rcode.NOERROR
        elif status == Outcome.NXDOMAIN:
            self.rcode = Rcode.NXDOMAIN
        elif status == Outcome.NODATA:
            self.rcode = Rcode.NOERROR
        else:
            self.rcode = Rcode.SERVFAIL

    @property
    def is_success(self) -> bool:
        return self.status == Outcome.OK

    def __repr__(self) -> str:
        flags = []
        if self.from_cache:
            flags.append("cache")
        if self.stale:
            flags.append("stale")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return f"<Outcome {self.status} x{len(self.records)}{suffix}>"


class _PendingQuery:
    """One outstanding upstream query awaiting response or timeout."""

    __slots__ = ("task", "server", "timer", "sent_at")

    def __init__(self, task: "_ResolutionTask", server: str, timer, sent_at: float) -> None:
        self.task = task
        self.server = server
        self.timer = timer
        self.sent_at = sent_at


class RecursiveResolver(Host):
    """An iterative resolver with cache, retries, and client service."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        root_hints: Sequence[str],
        config: Optional[ResolverConfig] = None,
        name: str = "",
        rng=None,
        tracer=None,
        metrics=None,
    ) -> None:
        super().__init__(sim, network, address, name=name)
        if not root_hints:
            raise ValueError("a resolver needs at least one root hint")
        self.config = config or ResolverConfig()
        if self.config.serve_stale and self.config.cache.stale_window <= 0:
            # Serve-stale implies retaining entries past expiry.
            self.config.cache.stale_window = 3 * 3600.0
        self.root_hints = list(root_hints)
        self.cache = DnsCache(self.config.cache)
        self.negcache = NegativeCache()
        if rng is None:
            # Test-only fallback: real wiring (build_population) always
            # passes a stream-derived rng. Deriving from a named stream
            # keyed by address keeps rng-less resolvers deterministic
            # *and* mutually independent, where a shared Random(0) would
            # correlate every one of them.
            from repro.simcore.rng import RandomStreams

            rng = RandomStreams(0).stream(f"resolver:{address}")
        self.selector = ServerSelector(rng)
        self._tasks: Dict[Tuple[Name, RRType], _ResolutionTask] = {}
        self._pending: Dict[int, _PendingQuery] = {}
        # (qname, qtype) -> expiry of a recent SERVFAIL outcome.
        self._servfail_cache: Dict[Tuple[Name, RRType], float] = {}
        # Statistics
        self.client_queries = 0
        self.client_responses = 0
        self.upstream_queries = 0
        self.upstream_timeouts = 0
        self.upstream_responses = 0
        self.prefetches = 0
        self.tcp_fallbacks = 0
        # Observability sinks, resolved once at wiring time (None = off).
        # Instruments are shared across the Rn layer: the registry
        # get-or-creates by name, so every resolver updates the same
        # aggregate counters while per-instance stats stay above.
        self._trace = tracer
        self._metrics = metrics
        if metrics is not None:
            self._m_client = metrics.counter("recursive.client_queries")
            self._m_cache_hits = metrics.counter("recursive.cache_hits")
            self._m_cache_misses = metrics.counter("recursive.cache_misses")
            self._m_negcache_hits = metrics.counter("recursive.negcache_hits")
            self._m_upstream = metrics.counter("recursive.upstream_queries")
            self._m_timeouts = metrics.counter("recursive.upstream_timeouts")
            self._m_inflight = metrics.gauge("recursive.inflight_tasks")
            self._m_sends = metrics.histogram(
                "recursive.sends_per_resolution", (1, 2, 4, 8, 16, 32)
            )
            # TC→TCP retries: the escape hatch that keeps SLIP'd (RRL)
            # and oversized-UDP clients alive; the defense study reads
            # this to show RRL degrading legit traffic to TCP, not dark.
            self._m_tcp_fallbacks = metrics.counter("recursive.tcp_fallbacks")

    # ------------------------------------------------------------------
    # Network entry points
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        if packet.message.is_response:
            self._on_upstream_response(packet)
        else:
            self._on_client_query(packet)

    def _on_client_query(self, packet: Packet) -> None:
        message = packet.message
        if message.question is None:
            return
        self.client_queries += 1
        if self._metrics is not None:
            self._m_client.value += 1
        client = packet.src

        def deliver(outcome: Outcome) -> None:
            response = make_response(
                message,
                rcode=outcome.rcode,
                ra=True,
                answers=outcome.records,
            )
            response.trace_id = message.trace_id
            self.client_responses += 1
            self.send(client, response)

        self.resolve(
            message.question.qname,
            message.question.qtype,
            deliver,
            trace_id=message.trace_id,
        )

    def _on_upstream_response(self, packet: Packet) -> None:
        pending = self._pending.pop(packet.message.msg_id, None)
        if pending is None:
            return  # late or unsolicited
        pending.timer.cancel()
        self.upstream_responses += 1
        self.selector.observe_rtt(pending.server, self.sim.now - pending.sent_at)
        if pending.task.done:
            return
        if packet.message.tc and packet.transport == "udp":
            # Truncated UDP answer: repeat the query over TCP (RFC 7766).
            self.tcp_fallbacks += 1
            if self._metrics is not None:
                self._m_tcp_fallbacks.value += 1
            timeout = self.config.retry.timeout_for_attempt(0) * 3
            self.send_upstream(
                pending.task, pending.server, timeout, transport="tcp"
            )
            return
        pending.task.handle_response(packet.message, pending.server)

    # ------------------------------------------------------------------
    # Resolution API
    # ------------------------------------------------------------------
    def resolve(
        self,
        qname: Name,
        qtype: RRType,
        callback: OutcomeCallback,
        depth: int = 0,
        require_authoritative: Optional[bool] = None,
        trace_id: Optional[int] = None,
    ) -> None:
        """Resolve (qname, qtype); ``callback`` fires exactly once.

        Identical in-flight questions are coalesced onto one task, the
        way production resolvers deduplicate client queries.

        ``require_authoritative`` controls whether glue-credibility cache
        entries may satisfy the query. Client queries (depth 0) default to
        requiring answer credibility unless the resolver is configured to
        serve glue; internal iteration helpers (depth > 0) accept glue;
        delegation re-validation passes True explicitly.

        ``trace_id`` joins the resolution to a traced stub lifecycle. A
        task carries the trace of the query that started it; queries that
        coalesce onto an existing task emit one ``coalesced`` span and
        then share the task's fate (their own chain still terminates at
        the stub).
        """
        if require_authoritative is None:
            require_authoritative = (
                depth == 0 and not self.config.serve_glue_answers
            )
        failed_until = self._servfail_cache.get((qname, qtype))
        if failed_until is not None:
            if self.sim.now < failed_until:
                if self._trace is not None and trace_id is not None:
                    self._trace.emit(trace_id, "servfail_cached", self.name)
                callback(Outcome(Outcome.SERVFAIL, from_cache=True))
                return
            del self._servfail_cache[(qname, qtype)]
        key = (qname, qtype, require_authoritative)
        task = self._tasks.get(key)
        if task is not None and not task.done:
            if self._trace is not None and trace_id is not None:
                self._trace.emit(
                    trace_id,
                    "coalesced",
                    self.name,
                    detail=f"{qname} {qtype.name}",
                )
            task.add_callback(callback)
            return
        task = _ResolutionTask(
            self, qname, qtype, depth, require_authoritative
        )
        task.registry_key = key
        task.trace_id = trace_id
        self._tasks[key] = task
        task.add_callback(callback)
        task.start()

    def prefetch(self, qname: Name, qtype: RRType) -> bool:
        """Refresh (qname, qtype) in the background, bypassing the cache.

        Returns False if a prefetch for the question is already running.
        """
        key = (qname, qtype, "prefetch")
        task = self._tasks.get(key)
        if task is not None and not task.done:
            return False
        task = _ResolutionTask(self, qname, qtype, 0, True)
        task.skip_cache = True
        task.registry_key = key
        self._tasks[key] = task
        self.prefetches += 1
        task.add_callback(lambda outcome: None)
        task.start()
        return True

    # ------------------------------------------------------------------
    # Hooks used by tasks
    # ------------------------------------------------------------------
    def send_upstream(
        self,
        task: "_ResolutionTask",
        server: str,
        timeout: float,
        transport: str = "udp",
    ) -> None:
        message = make_query(
            task.qname,
            task.qtype,
            rd=False,
            edns_payload=self.config.edns_payload,
        )
        timer = self.sim.call_later(timeout, self._on_upstream_timeout, message.msg_id)
        trace_id = task.trace_id
        if self._trace is not None and trace_id is not None:
            message.trace_id = trace_id
            # Timers abandoned on response emit `cancelled` terminators
            # via Event.cancel() instead of leaking open retry spans.
            timer.span = (self._trace, trace_id, self.name)
            kind = (
                "retry"
                if task.round_active and task.round_attempt > 1
                else "send"
            )
            self._trace.emit(
                trace_id,
                kind,
                self.name,
                detail=(
                    f"server={server} {task.qname} {task.qtype.name}"
                    + (f" {transport}" if transport != "udp" else "")
                ),
            )
        task.sends += 1
        self._pending[message.msg_id] = _PendingQuery(task, server, timer, self.sim.now)
        task.pending_ids.add(message.msg_id)
        self.upstream_queries += 1
        if self._metrics is not None:
            self._m_upstream.value += 1
        self.send(server, message, transport)

    def _on_upstream_timeout(self, msg_id: int) -> None:
        pending = self._pending.pop(msg_id, None)
        if pending is None:
            return
        self.upstream_timeouts += 1
        if self._metrics is not None:
            self._m_timeouts.value += 1
        self.selector.observe_timeout(pending.server)
        if not pending.task.done:
            task = pending.task
            if self._trace is not None and task.trace_id is not None:
                self._trace.emit(
                    task.trace_id,
                    "timeout",
                    self.name,
                    detail=f"server={pending.server}",
                )
            task.handle_timeout()

    def cancel_task_queries(self, task: "_ResolutionTask") -> None:
        for msg_id in task.pending_ids:
            pending = self._pending.pop(msg_id, None)
            if pending is not None:
                pending.timer.cancel()
        task.pending_ids.clear()

    def task_finished(self, task: "_ResolutionTask") -> None:
        self.cancel_task_queries(task)
        if self._tasks.get(task.registry_key) is task:
            del self._tasks[task.registry_key]

    def on_delegation_learned(
        self, cut: Name, ns_targets: Sequence[Name], depth: int
    ) -> None:
        """Kick off delegation-chasing sub-resolutions (Unbound-style)."""
        if depth >= self.config.max_subresolution_depth:
            return
        now = self.sim.now
        ignore = lambda outcome: None  # noqa: E731 - fire-and-forget
        if self.config.requery_delegation:
            ns_entry = self.cache.peek(cut, RRType.NS)
            if ns_entry is not None and not ns_entry.authoritative:
                self.resolve(
                    cut,
                    RRType.NS,
                    ignore,
                    depth=depth + 1,
                    require_authoritative=True,
                )
        for target in ns_targets:
            # Only in-bailiwick nameservers are chased: the child zone can
            # answer for them authoritatively (Unbound's behavior against
            # the paper's testbed, Appendix E).
            if not target.is_subdomain_of(cut):
                continue
            if self.config.requery_delegation:
                a_entry = self.cache.peek(target, RRType.A)
                if a_entry is None or not a_entry.authoritative:
                    if self.negcache.get(target, RRType.A, now) is None:
                        self.resolve(
                            target,
                            RRType.A,
                            ignore,
                            depth=depth + 1,
                            require_authoritative=True,
                        )
            if self.config.chase_ns_aaaa:
                if (
                    not self.cache.contains_fresh(target, RRType.AAAA, now)
                    and self.negcache.get(target, RRType.AAAA, now) is None
                ):
                    self.resolve(target, RRType.AAAA, ignore, depth=depth + 1)

    def remember_servfail(self, qname: Name, qtype: RRType) -> None:
        """Record a failed resolution for the servfail-cache window."""
        ttl = self.config.servfail_cache_ttl
        if ttl > 0:
            self._servfail_cache[(qname, qtype)] = self.sim.now + ttl

    def flush_caches(self) -> None:
        """Drop all cached state (models restart / operator flush)."""
        self.cache.flush()
        self.negcache.flush()
        self._servfail_cache.clear()

    def stats(self) -> dict:
        return {
            "client_queries": self.client_queries,
            "client_responses": self.client_responses,
            "upstream_queries": self.upstream_queries,
            "upstream_responses": self.upstream_responses,
            "upstream_timeouts": self.upstream_timeouts,
            "cache": self.cache.stats(),
        }


class _ResolutionTask:
    """One (qname, qtype) resolution, driven by the table-driven FSM.

    The control flow lives in :data:`repro.fsm.resolution
    .RESOLUTION_MACHINE` — states × events → guarded transitions — and
    ``repro verify`` model-checks that table statically. The methods
    here are the transition *actions* (and event classifiers feeding
    the driver); they never change ``fsm_state`` themselves, which the
    ``fsm-discipline`` lint rule enforces.
    """

    __slots__ = (
        "r",
        "qname",
        "qtype",
        "depth",
        "require_authoritative",
        "skip_cache",
        "registry_key",
        "callbacks",
        "done",
        "fsm_state",
        "event_payload",
        "trace_id",
        "sends",
        "first_step",
        "started_at",
        "deadline",
        "hard_deadline",
        "cname_depth",
        "pending_ids",
        "current_cut",
        "round_servers",
        "round_attempt",
        "round_budget",
        "round_active",
        "requeried_cuts",
        "skip_cut_once",
        "subresolutions",
        "sub_failures",
        "sub_targets_tried",
    )

    def __init__(
        self,
        resolver: RecursiveResolver,
        qname: Name,
        qtype: RRType,
        depth: int,
        require_authoritative: bool = False,
    ) -> None:
        self.r = resolver
        self.qname = qname
        self.qtype = qtype
        self.depth = depth
        self.require_authoritative = require_authoritative
        # Prefetch tasks bypass the answer cache; the registry key keeps
        # them distinct from (and deduplicated like) ordinary tasks.
        self.skip_cache = False
        self.registry_key: tuple = (qname, qtype, require_authoritative)
        self.callbacks: List[OutcomeCallback] = []
        self.done = False
        self.event_payload: Any = None
        COMPILED_RESOLUTION.begin(self)
        # Observability: the owning trace (None untraced), total upstream
        # sends for the sends-per-resolution histogram, and a first-pass
        # flag so cache hit/miss counts once per task, not per iteration.
        self.trace_id: Optional[int] = None
        self.sends = 0
        self.first_step = True
        self.started_at = resolver.sim.now
        policy = resolver.config.retry
        self.deadline = self.started_at + policy.resolution_deadline
        # The post-failure parent re-query (BIND) may run past the soft
        # deadline, but never past this hard stop.
        self.hard_deadline = self.started_at + policy.resolution_deadline * 1.6
        self.cname_depth = 0
        self.pending_ids: Set[int] = set()
        # Per-round query state
        self.current_cut: Optional[Name] = None
        self.round_servers: List[str] = []
        self.round_attempt = 0
        self.round_budget = 0
        self.round_active = False
        # Failure-path bookkeeping
        self.requeried_cuts: Set[Name] = set()
        self.skip_cut_once: Optional[Name] = None
        self.subresolutions = 0
        self.sub_failures = 0
        self.sub_targets_tried: Set[Name] = set()

    # ------------------------------------------------------------------
    def add_callback(self, callback: OutcomeCallback) -> None:
        self.callbacks.append(callback)

    def _dispatch(self, event: str, payload: Any = None) -> None:
        COMPILED_RESOLUTION.dispatch(self, event, payload)

    def start(self) -> None:
        if self.r._metrics is not None:
            self.r._m_inflight.inc()
        # RFC 8767 client-response timer: when stale data is on hand, an
        # unresponsive resolution answers stale quickly rather than making
        # the client wait out the full retry schedule.
        if self.r.config.serve_stale:
            entry = self.r.cache.peek(self.qname, self.qtype)
            if entry is not None and entry.is_usable_stale(
                self.r.sim.now, self.r.config.cache.stale_window
            ):
                self.r.sim.call_later(
                    self.r.config.stale_client_timeout, self._stale_timer
                )
        self._dispatch(fsm.BEGIN)

    def _maybe_prefetch(self, now: float) -> None:
        """Kick a background refresh when the hit entry is near expiry."""
        config = self.r.config
        if not config.prefetch or self.depth > 0:
            return
        entry = self.r.cache.peek(self.qname, self.qtype)
        if entry is None or entry.stored_ttl <= 0:
            return
        if entry.remaining_ttl(now) < config.prefetch_trigger * entry.stored_ttl:
            self.r.prefetch(self.qname, self.qtype)

    def _stale_timer(self) -> None:
        self._dispatch(fsm.STALE_TIMER)

    # ------------------------------------------------------------------
    # Main iteration step (the LOOKUP actions): consult the caches and
    # locate servers, then emit the event describing what was found.
    # ------------------------------------------------------------------
    def _step(self) -> None:
        now = self.r.sim.now
        if now >= self.hard_deadline:
            self._dispatch(fsm.HARD_DEADLINE)
            return

        first_step = self.first_step
        self.first_step = False
        if not self.skip_cache:
            rrset = self.r.cache.get(
                self.qname,
                self.qtype,
                now,
                require_authoritative=self.require_authoritative,
            )
            if rrset is not None:
                if self.r._trace is not None and self.trace_id is not None:
                    self.r._trace.emit(self.trace_id, "cache_hit", self.r.name)
                if first_step and self.r._metrics is not None:
                    self.r._m_cache_hits.value += 1
                self._maybe_prefetch(now)
                self._dispatch(
                    fsm.CACHE_HIT,
                    Outcome(Outcome.OK, list(rrset), from_cache=True),
                )
                return
            if first_step and self.r._metrics is not None:
                self.r._m_cache_misses.value += 1
            if first_step and self.r._trace is not None and self.trace_id is not None:
                self.r._trace.emit(self.trace_id, "cache_miss", self.r.name)

            negative = self.r.negcache.get(self.qname, self.qtype, now)
            if negative is not None:
                status = (
                    Outcome.NXDOMAIN
                    if negative == Rcode.NXDOMAIN
                    else Outcome.NODATA
                )
                if self.r._trace is not None and self.trace_id is not None:
                    self.r._trace.emit(
                        self.trace_id, "negcache_hit", self.r.name
                    )
                if self.r._metrics is not None:
                    self.r._m_negcache_hits.value += 1
                self._dispatch(fsm.NEG_HIT, Outcome(status, from_cache=True))
                return

        if self.qtype != RRType.CNAME:
            cname = self.r.cache.get(self.qname, RRType.CNAME, now)
            if cname is not None:
                if self.r._trace is not None and self.trace_id is not None:
                    self.r._trace.emit(self.trace_id, "cname", self.r.name)
                self.cname_depth += 1
                self._dispatch(fsm.CNAME, cname)
                return

        cut, ns_targets, addresses, missing = self._locate(now)
        self.skip_cut_once = None
        if addresses:
            self.current_cut = cut
            self._dispatch(fsm.HAVE_SERVERS, addresses)
            return
        if (
            missing
            and self.r.config.chase_ns_addresses
            and self.depth < self.r.config.max_subresolution_depth
        ):
            self._dispatch(fsm.NEED_GLUE, (cut, missing))
            return
        self._dispatch(fsm.EXHAUSTED)

    def _locate(
        self, now: float
    ) -> Tuple[Name, List[Name], List[str], List[Name]]:
        """Deepest usable zone cut: (cut, ns targets, addresses, missing)."""
        for ancestor in self.qname.ancestors():
            if ancestor.is_root:
                break
            if self.skip_cut_once is not None and ancestor == self.skip_cut_once:
                continue
            ns_rrset = self.r.cache.get(ancestor, RRType.NS, now)
            if ns_rrset is None:
                continue
            targets = [
                record.rdata.target
                for record in ns_rrset
                if isinstance(record.rdata, NS)
            ]
            addresses: List[str] = []
            missing: List[Name] = []
            for target in targets:
                a_rrset = self.r.cache.get(target, RRType.A, now)
                if a_rrset is not None:
                    addresses.extend(record.rdata.address for record in a_rrset)
                elif self.r.negcache.get(target, RRType.A, now) is None:
                    missing.append(target)
            if addresses or missing:
                return ancestor, targets, addresses, missing
            # A cut whose servers are entirely unresolvable: fall through
            # to shallower cuts (ultimately the root).
        return Name(()), [], list(self.r.root_hints), []

    # ------------------------------------------------------------------
    # Query round against one server set
    # ------------------------------------------------------------------
    def _begin_round(self, addresses: List[str]) -> None:
        unique = list(dict.fromkeys(addresses))
        self.round_servers = self.r.selector.order(unique)
        self.round_attempt = 0
        self.round_budget = self.r.config.retry.total_budget(len(unique))
        self.round_active = True
        self._dispatch(fsm.TRY)

    def _send_attempt(self) -> None:
        server = self.round_servers[self.round_attempt % len(self.round_servers)]
        timeout = self.r.config.retry.timeout_for_attempt(self.round_attempt)
        self.round_attempt += 1
        self.r.send_upstream(self, server, timeout)

    def handle_timeout(self) -> None:
        self._dispatch(fsm.TIMEOUT)

    # ------------------------------------------------------------------
    # Response classification: decide which event the message is, apply
    # the state-independent cache effects, then dispatch.
    # ------------------------------------------------------------------
    def handle_response(self, message: Message, server: str) -> None:
        if self.done:
            return
        now = self.r.sim.now
        if message.rcode in (Rcode.SERVFAIL, Rcode.REFUSED, Rcode.NOTIMP):
            self._dispatch(fsm.LAME)
            return
        if message.rcode == Rcode.NXDOMAIN:
            ttl = message.soa_minimum_ttl()
            self.r.negcache.put(
                self.qname,
                self.qtype,
                Rcode.NXDOMAIN,
                ttl if ttl is not None else DEFAULT_NEGATIVE_TTL,
                now,
            )
            self._dispatch(fsm.NXDOMAIN, message)
            return
        if message.rcode != Rcode.NOERROR:
            self._dispatch(fsm.LAME)
            return

        answer = message.answer_rrset()
        if answer is not None:
            entry = self.r.cache.put(answer, now, authoritative=message.aa)
            served = entry.rrset.with_ttl(entry.remaining_ttl(now))
            self._dispatch(fsm.ANSWER, Outcome(Outcome.OK, list(served)))
            return

        cname_records = [
            record
            for record in message.answers
            if record.rtype == RRType.CNAME and record.name == self.qname
        ]
        if cname_records and self.qtype != RRType.CNAME:
            cname_rrset = RRset(cname_records)
            self.r.cache.put(cname_rrset, now, authoritative=message.aa)
            self.cname_depth += 1
            self._dispatch(fsm.CNAME, cname_rrset)
            return

        if message.is_referral():
            ns_records = [
                record
                for record in message.authority
                if record.rtype == RRType.NS
            ]
            cut = ns_records[0].name
            if not self.qname.is_subdomain_of(cut):
                self._dispatch(fsm.LAME)  # referral for an unrelated zone
                return
            if self.current_cut is not None and not cut.is_subdomain_of(
                self.current_cut
            ):
                self._dispatch(fsm.LAME)  # upward referral
                return
            if self.current_cut is not None and cut == self.current_cut:
                # The cut referring to itself means the server is lame
                # (it should have answered authoritatively).
                self._dispatch(fsm.LAME)
                return
            self._dispatch(fsm.REFERRAL, (message, ns_records, cut))
            return

        # Authoritative empty answer: NODATA.
        if message.aa:
            ttl = message.soa_minimum_ttl()
            self.r.negcache.put(
                self.qname,
                self.qtype,
                Rcode.NOERROR,
                ttl if ttl is not None else DEFAULT_NEGATIVE_TTL,
                now,
            )
            self._dispatch(fsm.NODATA, message)
            return

        # Anything else (empty non-authoritative, upward referral) is lame.
        self._dispatch(fsm.LAME)

    def _accept_referral(
        self, payload: Tuple[Message, List[ResourceRecord], Name]
    ) -> None:
        message, ns_records, cut = payload
        now = self.r.sim.now
        if self.r._trace is not None and self.trace_id is not None:
            self.r._trace.emit(
                self.trace_id, "referral", self.r.name, detail=f"cut={cut}"
            )
        self.r.cache.put(RRset(ns_records), now, authoritative=False)
        by_key: Dict[Tuple[Name, RRType], List[ResourceRecord]] = {}
        for record in message.additional:
            if record.rtype in (RRType.A, RRType.AAAA):
                by_key.setdefault((record.name, record.rtype), []).append(record)
        for records in by_key.values():
            self.r.cache.put(RRset(records), now, authoritative=False)

        targets = [record.rdata.target for record in ns_records]
        self.r.cancel_task_queries(self)
        self.round_active = False
        self.r.on_delegation_learned(cut, targets, self.depth)
        self._step()

    def _follow_cname(self, cname_rrset: RRset) -> None:
        # ``cname_depth`` was already advanced by the emitter, so the
        # table's ``cname_ok`` guard saw the post-increment depth.
        target = cname_rrset.records[0].rdata.target
        self.qname = target
        self.current_cut = None
        self.r.cancel_task_queries(self)
        self.round_active = False
        self._step()

    def _fail_cname_loop(self) -> None:
        self._finish(Outcome(Outcome.SERVFAIL))

    # ------------------------------------------------------------------
    # Missing NS addresses
    # ------------------------------------------------------------------
    def _chase_glue(self, payload: Tuple[Name, List[Name]]) -> None:
        _cut, missing = payload
        fresh_targets = [
            target for target in missing if target not in self.sub_targets_tried
        ]
        self.subresolutions = len(fresh_targets)
        self.sub_failures = 0
        for target in fresh_targets:
            self.sub_targets_tried.add(target)
            self.r.resolve(
                target,
                RRType.A,
                self._on_subresolution,
                self.depth + 1,
                trace_id=self.trace_id,
            )

    def _on_subresolution(self, outcome: Outcome) -> None:
        if self.done:
            return
        self.subresolutions -= 1
        self._dispatch(fsm.SUB_OK if outcome.is_success else fsm.SUB_FAIL)

    def _count_sub_failure(self) -> None:
        self.sub_failures += 1

    def _sub_chase_failed(self) -> None:
        # The last outstanding chase failed: re-enter the lookup, which
        # will fall through to the exhaustion tail if nothing was learned.
        self.sub_failures += 1
        self._step()

    # ------------------------------------------------------------------
    # Failure handling: parent re-query, serve-stale, SERVFAIL
    # ------------------------------------------------------------------
    def _requery_parent(self) -> None:
        # BIND behavior: go back to the parents for the delegation, then
        # give the child's servers one more (deadline-bounded) round.
        self.round_active = False
        now = self.r.sim.now
        policy = self.r.config.retry
        cut = self.current_cut
        assert cut is not None  # the can_requery_parent guard checked
        self.requeried_cuts.add(cut)
        self.skip_cut_once = cut
        self.current_cut = None
        self.deadline = min(
            self.hard_deadline, now + policy.resolution_deadline * 0.5
        )
        self._step()

    def _finish_stale(self) -> None:
        self.round_active = False
        stale = self.r.cache.get_stale(self.qname, self.qtype, self.r.sim.now)
        assert stale is not None  # the stale guard peeked at the entry
        if self.r._trace is not None and self.trace_id is not None:
            self.r._trace.emit(self.trace_id, "stale", self.r.name)
        self._finish(Outcome(Outcome.OK, list(stale), stale=True))

    def _finish_servfail(self) -> None:
        self.round_active = False
        if self.r._trace is not None and self.trace_id is not None:
            self.r._trace.emit(
                self.trace_id,
                "give_up",
                self.r.name,
                detail=f"sends={self.sends}",
            )
        self.r.remember_servfail(self.qname, self.qtype)
        self._finish(Outcome(Outcome.SERVFAIL))

    def _finish_answer(self, outcome: Outcome) -> None:
        self._finish(outcome)

    def _finish_nxdomain(self, message: Message) -> None:
        self._finish(Outcome(Outcome.NXDOMAIN))

    def _finish_nodata(self, message: Message) -> None:
        self._finish(Outcome(Outcome.NODATA))

    # ------------------------------------------------------------------
    def _finish(self, outcome: Outcome) -> None:
        if self.done:
            return
        self.done = True
        if self.r._metrics is not None:
            self.r._m_inflight.dec()
            self.r._m_sends.observe(self.sends)
        self.r.task_finished(self)
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(outcome)
