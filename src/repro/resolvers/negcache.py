"""Negative caching per RFC 2308.

NXDOMAIN and NODATA answers are cached for min(SOA TTL, SOA.minimum).
The paper's test zone sets this to 60 s, which is why nonexistent
AAAA-for-NS queries hammer the authoritatives far more than positive
queries during a DDoS (§6.1, Figure 10).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import Rcode, RRType

NegKey = Tuple[Name, RRType]


class NegativeEntry:
    """A cached negative answer."""

    __slots__ = ("rcode", "inserted_at", "expires_at")

    def __init__(self, rcode: Rcode, inserted_at: float, ttl: int) -> None:
        self.rcode = rcode
        self.inserted_at = inserted_at
        self.expires_at = inserted_at + ttl

    def is_fresh(self, now: float) -> bool:
        return now < self.expires_at


class NegativeCache:
    """Caches NXDOMAIN / NODATA outcomes keyed by (name, type).

    NXDOMAIN is name-wide in principle; we key by (name, type) which is
    how type-keyed caches (Unbound's msg cache) behave and is strictly
    more conservative (never serves a wrong negative).
    """

    def __init__(self, max_ttl: int = 3600, max_entries: int = 100_000) -> None:
        self.max_ttl = max_ttl
        self.max_entries = max_entries
        self._entries: Dict[NegKey, NegativeEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, name: Name, rtype: RRType, rcode: Rcode, ttl: int, now: float) -> None:
        if rcode not in (Rcode.NXDOMAIN, Rcode.NOERROR):
            raise ValueError(f"not a cacheable negative rcode: {rcode}")
        ttl = min(ttl, self.max_ttl)
        if len(self._entries) >= self.max_entries:
            # Negative entries are short-lived; dropping the oldest is fine.
            self._entries.pop(next(iter(self._entries)))
        self._entries[(name, rtype)] = NegativeEntry(rcode, now, ttl)

    def get(self, name: Name, rtype: RRType, now: float) -> Optional[Rcode]:
        entry = self._entries.get((name, rtype))
        if entry is None or not entry.is_fresh(now):
            if entry is not None:
                del self._entries[(name, rtype)]
            self.misses += 1
            return None
        self.hits += 1
        return entry.rcode

    def flush(self) -> None:
        self._entries.clear()
