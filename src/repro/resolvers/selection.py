"""Authoritative server selection: smoothed-RTT with exploration.

Müller et al. (the authors' companion study [27]) found recursives prefer
low-latency authoritatives but keep querying all of them for diversity.
We reproduce that with BIND-style SRTT selection: pick the lowest
smoothed RTT most of the time, explore others occasionally, decay
penalties so failed servers are eventually retried. (The decay keeps a DDoS
survivor pool: resilience "as the strongest individual authoritative",
paper §8.)
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence


class ServerSelector:
    """Per-resolver SRTT table over authoritative server addresses."""

    # A timeout charges the server this RTT estimate (seconds).
    TIMEOUT_PENALTY = 1.5
    # Fraction of selections that explore a non-best server.
    EXPLORE_PROBABILITY = 0.05
    # Multiplicative decay applied to all estimates on each selection,
    # slowly forgetting stale information (BIND decays SRTTs similarly).
    DECAY = 0.98

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._srtt: Dict[str, float] = {}

    def observe_rtt(self, server: str, rtt: float) -> None:
        """Fold a measured RTT into the server's estimate (EWMA 0.7/0.3)."""
        previous = self._srtt.get(server)
        if previous is None:
            self._srtt[server] = rtt
        else:
            self._srtt[server] = 0.7 * previous + 0.3 * rtt

    def observe_timeout(self, server: str) -> None:
        """Penalize a server that failed to answer."""
        previous = self._srtt.get(server, self.TIMEOUT_PENALTY)
        self._srtt[server] = max(previous * 2.0, self.TIMEOUT_PENALTY)

    def estimate(self, server: str) -> float:
        return self._srtt.get(server, 0.0)

    def order(self, servers: Sequence[str]) -> List[str]:
        """Servers best-first: unknown servers first (optimistic), then by
        SRTT; a small exploration chance promotes a random server."""
        if not servers:
            return []
        for server in servers:
            if server in self._srtt:
                self._srtt[server] *= self.DECAY
        ordered = sorted(servers, key=lambda server: self._srtt.get(server, 0.0))
        if len(ordered) > 1 and self._rng.random() < self.EXPLORE_PROBABILITY:
            index = self._rng.randrange(1, len(ordered))
            ordered[0], ordered[index] = ordered[index], ordered[0]
        return ordered

    def pick(self, servers: Sequence[str]) -> Optional[str]:
        ordered = self.order(servers)
        return ordered[0] if ordered else None
