"""The client stub resolver with the RIPE Atlas measurement discipline.

Atlas probes query each of their local recursives independently and
report "no answer" after a 5-second timeout (paper §3.2). Each
(probe, recursive) pair is one vantage point; the stub records one
:class:`StubAnswer` row per VP per probing round, which is the raw
material for every client-side table and figure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dnscore.message import make_query
from repro.dnscore.name import Name
from repro.dnscore.records import AAAA
from repro.dnscore.rrtypes import Rcode, RRType
from repro.netem.topology import Host
from repro.netem.transport import Network, Packet
from repro.simcore.simulator import Simulator

ATLAS_TIMEOUT = 5.0


class StubAnswer:
    """One VP observation: a query and what (if anything) came back."""

    __slots__ = (
        "probe_id",
        "resolver",
        "round_index",
        "sent_at",
        "answered_at",
        "status",
        "rcode",
        "returned_ttl",
        "serial",
        "encoded_ttl",
        "record_count",
        "trace_id",
    )

    OK = "ok"
    SERVFAIL = "servfail"
    NXDOMAIN = "nxdomain"
    NODATA = "nodata"
    NO_ANSWER = "no-answer"

    def __init__(
        self,
        probe_id: int,
        resolver: str,
        round_index: int,
        sent_at: float,
    ) -> None:
        self.probe_id = probe_id
        self.resolver = resolver
        self.round_index = round_index
        self.sent_at = sent_at
        self.answered_at: Optional[float] = None
        self.status = StubAnswer.NO_ANSWER
        self.rcode: Optional[Rcode] = None
        self.returned_ttl: Optional[int] = None
        self.serial: Optional[int] = None
        self.encoded_ttl: Optional[int] = None
        self.record_count = 0
        self.trace_id: Optional[int] = None

    @property
    def latency(self) -> Optional[float]:
        if self.answered_at is None:
            return None
        return self.answered_at - self.sent_at

    @property
    def is_success(self) -> bool:
        return self.status == StubAnswer.OK

    def __repr__(self) -> str:
        return (
            f"<StubAnswer p{self.probe_id} via {self.resolver} "
            f"round={self.round_index} {self.status} serial={self.serial}>"
        )


class StubResolver(Host):
    """A probe's stub: queries local recursives, 5 s timeout, no retry."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        probe_id: int,
        recursives: Sequence[str],
        results: Optional[List[StubAnswer]] = None,
        timeout: float = ATLAS_TIMEOUT,
        name: str = "",
        tracer=None,
        metrics=None,
    ) -> None:
        super().__init__(sim, network, address, name=name or f"probe{probe_id}")
        if not recursives:
            raise ValueError("a stub needs at least one recursive")
        self.probe_id = probe_id
        self.recursives = list(recursives)
        self.timeout = timeout
        self.results = results if results is not None else []
        self._pending: Dict[int, StubAnswer] = {}
        self._trace = tracer
        # Metrics instruments are resolved once here; per-query updates are
        # plain attribute arithmetic (zero-cost contract: self._metrics is
        # None in unmetered runs and each update site guards on that).
        self._metrics = metrics
        if metrics is not None:
            self._queries_counter = metrics.counter("stub.queries")
            self._outcome_family = metrics.family("stub.outcome")

    # ------------------------------------------------------------------
    def query_round(self, qname: Name, qtype: RRType, round_index: int) -> None:
        """Send one query to every local recursive (one VP each)."""
        for resolver in self.recursives:
            self.query_one(qname, qtype, round_index, resolver)

    def query_one(
        self, qname: Name, qtype: RRType, round_index: int, resolver: str
    ) -> StubAnswer:
        """Send one query to one recursive and track its outcome."""
        message = make_query(qname, qtype, rd=True)
        answer = StubAnswer(self.probe_id, resolver, round_index, self.sim.now)
        if self._trace is not None:
            trace_id = self._trace.new_trace()
            message.trace_id = trace_id
            answer.trace_id = trace_id
            self._trace.emit(
                trace_id,
                "issue",
                self.name,
                vp=f"p{self.probe_id}:{resolver}",
                detail=f"{qname} {qtype.name} round={round_index}",
            )
        if self._metrics is not None:
            self._queries_counter.value += 1
        self.results.append(answer)
        self._pending[message.msg_id] = answer
        self.sim.call_later(self.timeout, self._on_timeout, message.msg_id)
        self.send(resolver, message)
        return answer

    # Span terminators and metric labels per StubAnswer status. The label
    # keys match responses_by_round()'s buckets exactly so per-round
    # snapshots reconcile with the client-outcome series.
    _TERMINALS = {
        StubAnswer.OK: ("answer", "ok"),
        StubAnswer.SERVFAIL: ("servfail", "servfail"),
        StubAnswer.NXDOMAIN: ("nxdomain", "error"),
        StubAnswer.NODATA: ("nodata", "error"),
        StubAnswer.NO_ANSWER: ("no_answer", "no_answer"),
    }

    def _record_outcome(self, answer: StubAnswer) -> None:
        """Emit the terminal span and outcome metric for a settled query."""
        kind, outcome = self._TERMINALS[answer.status]
        if self._trace is not None and answer.trace_id is not None:
            self._trace.emit(
                answer.trace_id,
                kind,
                self.name,
                vp=f"p{answer.probe_id}:{answer.resolver}",
            )
        if self._metrics is not None:
            self._outcome_family.inc((outcome, answer.round_index))

    def _on_timeout(self, msg_id: int) -> None:
        answer = self._pending.pop(msg_id, None)
        if answer is None:
            return
        answer.status = StubAnswer.NO_ANSWER
        if self._trace is not None or self._metrics is not None:
            self._record_outcome(answer)

    def on_packet(self, packet: Packet) -> None:
        message = packet.message
        if not message.is_response:
            return
        answer = self._pending.pop(message.msg_id, None)
        if answer is None:
            return  # response after the 5 s timeout: probe already gave up
        answer.answered_at = self.sim.now
        answer.rcode = message.rcode
        if message.rcode == Rcode.SERVFAIL or message.rcode == Rcode.REFUSED:
            answer.status = StubAnswer.SERVFAIL
        elif message.rcode == Rcode.NXDOMAIN:
            answer.status = StubAnswer.NXDOMAIN
        elif not message.answers:
            answer.status = StubAnswer.NODATA
        else:
            answer.status = StubAnswer.OK
            answer.record_count = len(message.answers)
            rrset = message.answer_rrset()
            records = list(rrset) if rrset is not None else message.answers
            answer.returned_ttl = min(record.ttl for record in records)
            for record in records:
                if isinstance(record.rdata, AAAA):
                    serial, _probe, encoded_ttl = record.rdata.fields()
                    answer.serial = serial
                    answer.encoded_ttl = encoded_ttl
                    break
        if self._trace is not None or self._metrics is not None:
            self._record_outcome(answer)
