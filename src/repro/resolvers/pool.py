"""Public resolver services: an anycast ingress over fragmented backends.

Large public DNS services (Google, OpenDNS, Quad9, ...) are "many
separate recursives behind a load balancer or on IP anycast" (paper
§3.1/§3.5). Caches on the backends are independent, so consecutive
queries from the same client can hit different caches — the cache
*fragmentation* the paper detects via decreasing serial numbers (CCdec)
and blames for about half of all cache misses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dnscore.message import make_response
from repro.netem.topology import Host
from repro.netem.transport import Network, Packet
from repro.resolvers.recursive import Outcome, RecursiveResolver, ResolverConfig
from repro.simcore.simulator import Simulator


@dataclass
class PoolConfig:
    """Shape of one public resolver deployment."""

    backend_count: int = 8
    # Per-query backend choice: "random" spreads every query (heavy
    # fragmentation, Google-like), "sticky" hashes the client with
    # occasional re-hashing (milder fragmentation).
    balancing: str = "random"
    # Probability a sticky client is re-assigned on a given query.
    sticky_rebalance: float = 0.05
    # Internal LB forwarding delay (one way, seconds).
    internal_delay: float = 0.0005
    backend_config: ResolverConfig = field(default_factory=ResolverConfig)


class PublicResolverPool(Host):
    """The ingress address of a public resolver service."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        backend_addresses: Sequence[str],
        root_hints: Sequence[str],
        config: Optional[PoolConfig] = None,
        name: str = "",
        rng: Optional[random.Random] = None,
        backend_config_factory=None,
        tracer=None,
        metrics=None,
    ) -> None:
        super().__init__(sim, network, address, name=name)
        self.config = config or PoolConfig()
        if rng is None:
            # Test-only fallback (see RecursiveResolver): derived from a
            # named stream keyed by the ingress address so rng-less pools
            # stay deterministic without correlating with each other.
            from repro.simcore.rng import RandomStreams

            rng = RandomStreams(0).stream(f"pool:{address}")
        self._rng = rng
        self.backends: List[RecursiveResolver] = []
        for index, backend_address in enumerate(backend_addresses):
            backend_config = (
                backend_config_factory(index)
                if backend_config_factory is not None
                else self.config.backend_config
            )
            backend = RecursiveResolver(
                sim,
                network,
                backend_address,
                root_hints,
                config=backend_config,
                name=f"{name or address}-be{index}",
                rng=random.Random(self._rng.getrandbits(64)),
                tracer=tracer,
                metrics=metrics,
            )
            self.backends.append(backend)
        if not self.backends:
            raise ValueError("a pool needs at least one backend")
        self._sticky: Dict[str, int] = {}
        self.client_queries = 0
        self._trace = tracer
        self._metrics = metrics
        if metrics is not None:
            self._m_client = metrics.counter("pool.client_queries")

    # ------------------------------------------------------------------
    def _pick_backend(self, client: str) -> RecursiveResolver:
        if self.config.balancing == "random":
            index = self._rng.randrange(len(self.backends))
            return self.backends[index]
        if self.config.balancing == "sticky":
            index = self._sticky.get(client)
            if index is None or self._rng.random() < self.config.sticky_rebalance:
                index = self._rng.randrange(len(self.backends))
                self._sticky[client] = index
            return self.backends[index]
        raise ValueError(f"unknown balancing mode {self.config.balancing!r}")

    def on_packet(self, packet: Packet) -> None:
        message = packet.message
        if message.is_response or message.question is None:
            return
        self.client_queries += 1
        if self._metrics is not None:
            self._m_client.value += 1
        client = packet.src
        backend = self._pick_backend(client)
        if self._trace is not None and message.trace_id is not None:
            self._trace.emit(
                message.trace_id,
                "pool_dispatch",
                self.name,
                detail=f"backend={backend.name}",
            )

        def deliver(outcome: Outcome) -> None:
            response = make_response(
                message,
                rcode=outcome.rcode,
                ra=True,
                answers=outcome.records,
            )
            response.trace_id = message.trace_id
            # The answer returns from the anycast ingress address.
            self.send(client, response)

        def start() -> None:
            # The backend serves this client query (handed over by the
            # load balancer), so account it there too.
            backend.client_queries += 1
            backend.resolve(
                message.question.qname,
                message.question.qtype,
                deliver,
                trace_id=message.trace_id,
            )

        self.sim.call_later(self.config.internal_delay, start)

    # ------------------------------------------------------------------
    def flush_caches(self) -> None:
        for backend in self.backends:
            backend.flush_caches()

    def stats(self) -> dict:
        return {
            "client_queries": self.client_queries,
            "backends": [backend.stats() for backend in self.backends],
        }
