"""Failure shapes and retry policy for the fault-tolerant executor.

The paper's thesis is that DNS survives DDoS because every layer fails
open — retries, caching, and redundancy absorb damage instead of
propagating it. The batch executor applies the same discipline to its
own orchestration: a worker exception or a killed worker process must
not discard the rest of the battery. These are the types that carry
that policy and its outcomes:

* :class:`RetryPolicy` — a bounded, deterministic retry schedule. The
  schedule is expressed purely in *attempt counts* (never wall-clock
  sleeps), so a battery behaves identically on a loaded CI box and a
  fast workstation.
* :class:`RunFailure` — the structured ledger entry produced when every
  rung of the ladder is exhausted: request index and kind, cache key,
  attempt count, and the worker traceback.
* :exc:`RunFailureError` — raised under fail-fast (the default); wraps
  the ledger so callers still see *which* request died and why instead
  of a bare exception bubbling out of the pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry ladder for one batch (counts, never clocks).

    ``max_attempts`` is the total execution budget per request across
    every rung. With ``serial_fallback`` enabled, the final attempt of a
    request that failed with a *clean* exception runs in-process in the
    parent — the last rung, immune to pool machinery. Requests
    implicated in a worker crash (``BrokenProcessPool``) are never run
    in-process: a request that can kill a worker could kill the parent.

    ``max_pool_rebuilds`` bounds how many times the shared pool is
    rebuilt after a crash before the executor degrades to quarantine
    mode (one single-worker pool per request, so a repeat offender only
    takes itself down and blame is exact).
    """

    max_attempts: int = 3
    serial_fallback: bool = True
    max_pool_rebuilds: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0: {self.max_pool_rebuilds}"
            )


@dataclass
class RunFailure:
    """One exhausted request: the failure ledger entry.

    Under ``keep_going`` these occupy the failed request's slot in the
    ``run_many`` result list, so a battery stays index-aligned while the
    caller decides what to do about the holes.
    """

    index: int
    kind: str
    key: Optional[str]
    attempts: int
    error_type: str
    message: str
    traceback: str

    def describe(self) -> str:
        return (
            f"request #{self.index} ({self.kind}): {self.error_type}: "
            f"{self.message} [after {self.attempts} attempts]"
        )


class RunFailureError(RuntimeError):
    """Raised under fail-fast once a request exhausts its retry budget.

    Carries the structured ledger (``failures``); completed runs have
    already been checkpointed to the cache by the time this is raised,
    so a rerun resumes from where the battery died.
    """

    def __init__(self, failures: List[RunFailure]) -> None:
        self.failures = failures
        super().__init__("; ".join(f.describe() for f in failures))
