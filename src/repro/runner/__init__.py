"""Parallel experiment execution with a persistent result cache.

The paper's headline numbers aggregate dozens of *independent* emulation
runs (DDoS scenarios A–I, five caching baselines, TTL/defense ablations,
parameter sweeps). Each run is a deterministic function of
``(spec, population, seed, code version)``, which makes the battery
embarrassingly parallel and perfectly cacheable:

* :func:`run_many` fans :class:`RunRequest` batches out over a
  ``ProcessPoolExecutor`` (``jobs=N``, default ``os.cpu_count()``) and
  returns results in request order, so parallel output is identical to
  serial output.
* :class:`DiskCache` is a content-addressed on-disk store keyed by a
  stable hash of the request plus a fingerprint of the ``repro`` source
  tree, so reports, sweeps, and benchmarks skip already-computed runs
  across sessions and automatically invalidate when the code changes.

See DESIGN.md §7 for the architecture notes and §11 for the failure
ladder, checkpoint/resume semantics, and executor telemetry.
"""

from repro.runner.cache import (
    MISS,
    ClearStats,
    DiskCache,
    cache_key,
    code_fingerprint,
    default_cache_dir,
)
from repro.runner.executor import (
    ChaosFailure,
    RunRequest,
    baseline_request,
    cache_dump_request,
    chaos_request,
    ddos_request,
    execute_request,
    glue_request,
    probe_case_request,
    resolve_jobs,
    run_many,
    runner_metrics,
    software_request,
)
from repro.runner.failures import RetryPolicy, RunFailure, RunFailureError
from repro.runner.results import TestbedSnapshot, detach_result

__all__ = [
    "ChaosFailure",
    "ClearStats",
    "DiskCache",
    "MISS",
    "RetryPolicy",
    "RunFailure",
    "RunFailureError",
    "RunRequest",
    "TestbedSnapshot",
    "baseline_request",
    "cache_dump_request",
    "cache_key",
    "chaos_request",
    "code_fingerprint",
    "ddos_request",
    "default_cache_dir",
    "detach_result",
    "execute_request",
    "glue_request",
    "probe_case_request",
    "resolve_jobs",
    "run_many",
    "runner_metrics",
    "software_request",
]
