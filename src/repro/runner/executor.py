"""Process-parallel, fault-tolerant execution of independent runs.

Every run in a batch is independent (fresh testbed, own RNG streams
derived from the request seed), so the executor is free to run them in
any order on any worker: results are slotted back by request index,
making ``jobs=N`` output identical to ``jobs=1`` output. Workers return
detached (picklable) results — see :mod:`repro.runner.results` — which is
also the shape the disk cache stores, so cold runs, warm-cache runs, and
parallel runs all hand the caller equal objects.

Robustness mirrors the paper's layered-defense shape. Completions are
*streamed*: each result is checkpointed to the :class:`DiskCache` the
moment it finishes, so a killed batch resumes from checkpoint instead of
from zero. Failures descend a bounded, deterministic ladder (see
:class:`~repro.runner.failures.RetryPolicy`):

1. clean worker exceptions are retried in the shared pool;
2. a crashed worker (``BrokenProcessPool``) rebuilds the pool, and a
   pool that keeps dying degrades to *quarantine* — one single-worker
   pool per request, so a repeat offender only takes itself down;
3. the final attempt of a cleanly-failing request runs in-process
   (serial) in the parent — the last rung;
4. only then is a structured
   :class:`~repro.runner.failures.RunFailure` surfaced: raised inside a
   :exc:`~repro.runner.failures.RunFailureError` under fail-fast, or
   slotted into the result list under ``keep_going`` so the rest of the
   battery completes around the poisoned run.

Executor telemetry (retries, worker crashes, serial fallbacks,
checkpointed results, in-flight gauge) flows through a
:class:`repro.obs.MetricsRegistry` — :func:`runner_metrics` by default —
so robustness is observable, not silent.
"""

from __future__ import annotations

import os
import signal
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.attackload import AttackLoadSpec
from repro.clients.population import PopulationConfig
from repro.core.experiments.baseline import (
    BaselineSpec,
    run_baseline,
)
from repro.core.experiments.ddos import DDoSSpec, run_ddos
from repro.defense import DefenseSpec
from repro.obs import MetricsRegistry, ObsSpec
from repro.runner.cache import MISS, DiskCache, cache_key
from repro.runner.failures import RetryPolicy, RunFailure, RunFailureError
from repro.runner.results import detach_result
from repro.simcore.events import DEFAULT_QUEUE_BACKEND

KIND_DDOS = "ddos"
KIND_BASELINE = "baseline"
KIND_GLUE = "glue"
KIND_CACHE_DUMP = "cache_dump"
KIND_SOFTWARE = "software"
KIND_PROBE_CASE = "probe_case"
KIND_CHAOS = "chaos"

#: Process-wide default registry for executor telemetry. ``run_many``
#: accepts an explicit registry for isolated accounting (tests, CLI);
#: everything else accumulates here, like a process metrics endpoint.
_RUNNER_METRICS = MetricsRegistry()


def runner_metrics() -> MetricsRegistry:
    """The default registry executor telemetry accumulates into."""
    return _RUNNER_METRICS


class ChaosFailure(RuntimeError):
    """The injected failure raised by ``chaos`` requests."""


@dataclass(frozen=True)
class RunRequest:
    """One independent experiment run, fully described and hashable.

    ``kind`` selects the experiment runner; ``spec`` is the matching spec
    dataclass. The tuple of fields is everything a worker process needs,
    and (with the code fingerprint) everything that determines the
    result — which is what makes these requests cacheable.
    """

    kind: str
    spec: Any = None
    probe_count: int = 400
    seed: int = 42
    wire_format: bool = False
    population: Optional[PopulationConfig] = None
    # Runner-specific keyword arguments as a sorted tuple of pairs, so
    # requests stay hashable and canonically serializable for cache keys.
    options: Tuple[Tuple[str, Any], ...] = ()
    # Observability layers for this run (frozen, so hashable/cacheable).
    # Part of the cache key: a traced run and an untraced run of the same
    # spec are different artifacts.
    obs: Optional[ObsSpec] = None
    # Adversarial traffic and authoritative defenses (frozen specs, like
    # obs): both participate in the cache key, so armed and unarmed runs
    # of the same scenario are different artifacts.
    attack_load: Optional[AttackLoadSpec] = None
    defense: Optional[DefenseSpec] = None
    # Event-queue backend for the simulator kernel. Every backend
    # produces identical event ordering (and therefore identical
    # results); the field participates in the cache key as the
    # *requested* name, so "auto" keys the same on every machine
    # regardless of which concrete backend it resolves to.
    queue_backend: str = DEFAULT_QUEUE_BACKEND

    def option_kwargs(self) -> Dict[str, Any]:
        return dict(self.options)


def ddos_request(
    spec: DDoSSpec,
    probe_count: int = 400,
    seed: int = 42,
    population: Optional[PopulationConfig] = None,
    wire_format: bool = False,
    obs: Optional[ObsSpec] = None,
    attack_load: Optional[AttackLoadSpec] = None,
    defense: Optional[DefenseSpec] = None,
    queue_backend: str = DEFAULT_QUEUE_BACKEND,
) -> RunRequest:
    return RunRequest(
        KIND_DDOS,
        spec,
        probe_count,
        seed,
        wire_format,
        population,
        obs=obs,
        attack_load=attack_load,
        defense=defense,
        queue_backend=queue_backend,
    )


def baseline_request(
    spec: BaselineSpec,
    probe_count: int = 600,
    seed: int = 42,
    population: Optional[PopulationConfig] = None,
    wire_format: bool = False,
    obs: Optional[ObsSpec] = None,
    queue_backend: str = DEFAULT_QUEUE_BACKEND,
) -> RunRequest:
    return RunRequest(
        KIND_BASELINE,
        spec,
        probe_count,
        seed,
        wire_format,
        population,
        obs=obs,
        queue_backend=queue_backend,
    )


def glue_request(
    probe_count: int = 800, seed: int = 42, **options: Any
) -> RunRequest:
    return RunRequest(
        KIND_GLUE,
        probe_count=probe_count,
        seed=seed,
        options=tuple(sorted(options.items())),
    )


def cache_dump_request(software: str = "bind", **options: Any) -> RunRequest:
    options["software"] = software
    return RunRequest(KIND_CACHE_DUMP, options=tuple(sorted(options.items())))


def software_request(
    software: str = "bind", under_attack: bool = False, seed: int = 7
) -> RunRequest:
    return RunRequest(
        KIND_SOFTWARE,
        seed=seed,
        options=(("software", software), ("under_attack", under_attack)),
    )


def probe_case_request(seed: int = 11, **options: Any) -> RunRequest:
    return RunRequest(
        KIND_PROBE_CASE, seed=seed, options=tuple(sorted(options.items()))
    )


def chaos_request(
    mode: str = "raise",
    seed: int = 0,
    token: str = "chaos",
    state_file: Optional[str] = None,
    fail_times: int = 0,
) -> RunRequest:
    """A fault-injection request for exercising the failure ladder.

    ``mode`` selects the behavior: ``"ok"`` returns a small deterministic
    result; ``"raise"`` raises :exc:`ChaosFailure` in the worker;
    ``"kill"`` SIGKILLs the worker process (→ ``BrokenProcessPool``).
    With ``state_file`` set, the request is *flaky*: the first
    ``fail_times`` executions (counted in the file, shared across
    processes) perform the failure mode, later ones succeed — the shape
    that exercises retry-then-succeed. Used by the chaos smoke step in
    CI and the failure-path tests.
    """
    options: Dict[str, Any] = {"mode": mode, "token": token}
    if state_file is not None:
        options["state_file"] = state_file
        options["fail_times"] = fail_times
    return RunRequest(
        KIND_CHAOS, seed=seed, options=tuple(sorted(options.items()))
    )


def _run_chaos(seed: int, options: Dict[str, Any]) -> Dict[str, Any]:
    """Execute a ``chaos`` request's injected behavior in the worker."""
    mode = options.get("mode", "raise")
    state_file = options.get("state_file")
    injecting = mode != "ok"
    if injecting and state_file is not None:
        # Flaky: count executions in the shared file; only the first
        # `fail_times` of them actually fail.
        prior = 0
        if os.path.exists(state_file):
            prior = os.path.getsize(state_file)
        with open(state_file, "ab") as stream:
            stream.write(b".")
        injecting = prior < int(options.get("fail_times", 0))
    if injecting:
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise ChaosFailure(f"injected failure ({options.get('token')})")
    return {"chaos": options.get("token"), "seed": seed}


def execute_request(request: RunRequest) -> Any:
    """Run one request to completion and return the detached result.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it by reference; also the serial fallback, so both paths share
    one code path per experiment kind.
    """
    kind = request.kind
    if kind == KIND_DDOS:
        result = run_ddos(
            request.spec,
            probe_count=request.probe_count,
            seed=request.seed,
            population=request.population,
            wire_format=request.wire_format,
            obs=request.obs,
            attack_load=request.attack_load,
            defense=request.defense,
            queue_backend=request.queue_backend,
        )
    elif kind == KIND_BASELINE:
        result = run_baseline(
            request.spec,
            probe_count=request.probe_count,
            seed=request.seed,
            population=request.population,
            wire_format=request.wire_format,
            obs=request.obs,
            queue_backend=request.queue_backend,
        )
    elif kind == KIND_GLUE:
        from repro.core.experiments.glue import run_glue_experiment

        result = run_glue_experiment(
            probe_count=request.probe_count,
            seed=request.seed,
            queue_backend=request.queue_backend,
            **request.option_kwargs(),
        )
    elif kind == KIND_CACHE_DUMP:
        from repro.core.experiments.glue import run_cache_dump_study

        result = run_cache_dump_study(**request.option_kwargs())
    elif kind == KIND_SOFTWARE:
        from repro.core.experiments.software import run_software_study

        options = request.option_kwargs()
        result = run_software_study(
            options["software"], options["under_attack"], seed=request.seed
        )
    elif kind == KIND_PROBE_CASE:
        from repro.core.experiments.probe_case import run_probe_case

        result = run_probe_case(seed=request.seed, **request.option_kwargs())
    elif kind == KIND_CHAOS:
        result = _run_chaos(request.seed, request.option_kwargs())
    else:
        raise ValueError(f"unknown request kind {request.kind!r}")
    return detach_result(result)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/0 means all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_many(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    cache: Optional[DiskCache] = None,
    *,
    policy: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    metrics: Optional[MetricsRegistry] = None,
) -> List[Any]:
    """Execute a batch of runs, in parallel, through the cache.

    Results come back in request order regardless of worker scheduling.
    Cache hits are never re-run; misses are executed (fanned out when
    ``jobs > 1`` and more than one run is pending) and each result is
    checkpointed to ``cache`` the moment it completes, so an interrupted
    batch resumes from its last completion.

    Failures descend the :class:`RetryPolicy` ladder (pool retries →
    pool rebuild/quarantine after crashes → final in-process attempt).
    A request that exhausts the ladder either aborts the batch with a
    :exc:`RunFailureError` (default) or, under ``keep_going``, leaves a
    :class:`RunFailure` ledger entry in its result slot while the rest
    of the battery completes. Telemetry (retries, crashes, serial
    fallbacks, checkpoints, in-flight gauge) lands in ``metrics``
    (default: the process-wide :func:`runner_metrics` registry).
    """
    jobs = resolve_jobs(jobs)
    active_policy = policy if policy is not None else RetryPolicy()
    registry = metrics if metrics is not None else _RUNNER_METRICS
    retries = registry.counter("runner.retries")
    crashes = registry.counter("runner.worker_crashes")
    serial_fallbacks = registry.counter("runner.serial_fallbacks")
    checkpointed = registry.counter("runner.checkpointed")
    inflight = registry.gauge("runner.inflight")

    total = len(requests)
    results: List[Any] = [None] * total
    resolved = [False] * total
    attempts = [0] * total
    failures: List[RunFailure] = []

    pending: List[int] = []
    keys: List[Optional[str]] = [None] * total
    for index, request in enumerate(requests):
        if cache is not None:
            key = cache_key(request)
            keys[index] = key
            hit = cache.get(key)
            if hit is not MISS:
                results[index] = hit
                resolved[index] = True
                continue
        pending.append(index)

    # Attempts a cleanly-failing request may spend in worker pools; the
    # final one is reserved for the in-process rung when enabled.
    pool_budget = active_policy.max_attempts - (
        1 if active_policy.serial_fallback else 0
    )

    def begin_attempt(index: int) -> None:
        attempts[index] += 1
        if attempts[index] > 1:
            retries.inc()

    def checkpoint(index: int, value: Any) -> None:
        """Record a completion and write it through to the cache now."""
        results[index] = value
        resolved[index] = True
        if cache is not None:
            key = keys[index]
            assert key is not None  # computed during the scan above
            cache.put(key, value)
            checkpointed.inc()

    def fail(index: int, error: BaseException, trace: str) -> None:
        failure = RunFailure(
            index=index,
            kind=requests[index].kind,
            key=keys[index],
            attempts=attempts[index],
            error_type=type(error).__name__,
            message=str(error),
            traceback=trace,
        )
        results[index] = failure
        resolved[index] = True
        failures.append(failure)
        if not keep_going:
            raise RunFailureError([failure])

    def serial_final(index: int) -> None:
        """The last rung: one in-process attempt in the parent."""
        serial_fallbacks.inc()
        begin_attempt(index)
        inflight.inc()
        try:
            value = execute_request(requests[index])
        except Exception as error:
            fail(index, error, traceback_module.format_exc())
        else:
            checkpoint(index, value)
        finally:
            inflight.dec()

    def run_serial(index: int) -> None:
        """Pure in-process execution with in-process retries (jobs=1)."""
        while not resolved[index]:
            begin_attempt(index)
            inflight.inc()
            try:
                value = execute_request(requests[index])
            except Exception as error:
                if attempts[index] >= active_policy.max_attempts:
                    fail(index, error, traceback_module.format_exc())
            else:
                checkpoint(index, value)
            finally:
                inflight.dec()

    def pool_wave(indices: List[int]) -> None:
        """One shared-pool pass: stream completions, retry clean failures.

        Raises ``BrokenProcessPool`` (after harvesting any completions
        that beat the crash) when a worker dies; the caller owns the
        rebuild/quarantine decision.
        """
        workers = min(jobs, len(indices))
        pool = ProcessPoolExecutor(max_workers=workers)
        outstanding: Dict[Future[Any], int] = {}
        try:
            for index in indices:
                begin_attempt(index)
                outstanding[pool.submit(execute_request, requests[index])] = index
                inflight.inc()
            while outstanding:
                done, _ = wait(set(outstanding), return_when=FIRST_COMPLETED)
                for future in done:
                    index = outstanding.pop(future)
                    inflight.dec()
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as error:
                        if attempts[index] < pool_budget:
                            begin_attempt(index)
                            outstanding[
                                pool.submit(execute_request, requests[index])
                            ] = index
                            inflight.inc()
                        elif (
                            active_policy.serial_fallback
                            and attempts[index] < active_policy.max_attempts
                        ):
                            serial_final(index)
                        else:
                            fail(index, error, traceback_module.format_exc())
                    else:
                        checkpoint(index, value)
            pool.shutdown(wait=True)
        except BaseException:
            # Harvest completions that beat a crash: their results are
            # already set on the futures even though the pool is broken.
            for future, index in outstanding.items():
                if future.done() and not resolved[index]:
                    try:
                        value = future.result()
                    except BaseException:
                        continue
                    checkpoint(index, value)
            inflight.dec(len(outstanding))
            pool.shutdown(wait=False, cancel_futures=True)
            raise

    def quarantine(index: int) -> None:
        """Isolated single-worker pools: exact blame for crashers."""
        while not resolved[index]:
            begin_attempt(index)
            inflight.inc()
            try:
                with ProcessPoolExecutor(max_workers=1) as isolated:
                    value = isolated.submit(
                        execute_request, requests[index]
                    ).result()
            except BrokenProcessPool as error:
                crashes.inc()
                # Never run a crash-implicated request in-process: a
                # request that can kill a worker could kill the parent.
                if attempts[index] >= active_policy.max_attempts:
                    fail(
                        index,
                        error,
                        "worker process died before returning a result",
                    )
            except Exception as error:
                if (
                    active_policy.serial_fallback
                    and attempts[index] == active_policy.max_attempts - 1
                ):
                    serial_final(index)
                elif attempts[index] >= active_policy.max_attempts:
                    fail(index, error, traceback_module.format_exc())
            else:
                checkpoint(index, value)
            finally:
                inflight.dec()

    if not pending:
        return results

    if jobs <= 1 or len(pending) == 1:
        for index in pending:
            run_serial(index)
        return results

    rebuilds = 0
    while True:
        unresolved = [index for index in pending if not resolved[index]]
        if not unresolved:
            break
        try:
            pool_wave(unresolved)
        except BrokenProcessPool:
            crashes.inc()
            rebuilds += 1
            if rebuilds > active_policy.max_pool_rebuilds:
                for index in pending:
                    if not resolved[index]:
                        quarantine(index)
                break

    return results
