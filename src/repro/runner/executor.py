"""Process-parallel execution of independent experiment runs.

Every run in a batch is independent (fresh testbed, own RNG streams
derived from the request seed), so the executor is free to run them in
any order on any worker: results are slotted back by request index,
making ``jobs=N`` output identical to ``jobs=1`` output. Workers return
detached (picklable) results — see :mod:`repro.runner.results` — which is
also the shape the disk cache stores, so cold runs, warm-cache runs, and
parallel runs all hand the caller equal objects.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.attackload import AttackLoadSpec
from repro.clients.population import PopulationConfig
from repro.core.experiments.baseline import (
    BaselineSpec,
    run_baseline,
)
from repro.core.experiments.ddos import DDoSSpec, run_ddos
from repro.defense import DefenseSpec
from repro.obs import ObsSpec
from repro.runner.cache import DiskCache, cache_key
from repro.runner.results import detach_result

KIND_DDOS = "ddos"
KIND_BASELINE = "baseline"
KIND_GLUE = "glue"
KIND_CACHE_DUMP = "cache_dump"
KIND_SOFTWARE = "software"
KIND_PROBE_CASE = "probe_case"


@dataclass(frozen=True)
class RunRequest:
    """One independent experiment run, fully described and hashable.

    ``kind`` selects the experiment runner; ``spec`` is the matching spec
    dataclass. The tuple of fields is everything a worker process needs,
    and (with the code fingerprint) everything that determines the
    result — which is what makes these requests cacheable.
    """

    kind: str
    spec: Any = None
    probe_count: int = 400
    seed: int = 42
    wire_format: bool = False
    population: Optional[PopulationConfig] = None
    # Runner-specific keyword arguments as a sorted tuple of pairs, so
    # requests stay hashable and canonically serializable for cache keys.
    options: Tuple[Tuple[str, Any], ...] = ()
    # Observability layers for this run (frozen, so hashable/cacheable).
    # Part of the cache key: a traced run and an untraced run of the same
    # spec are different artifacts.
    obs: Optional[ObsSpec] = None
    # Adversarial traffic and authoritative defenses (frozen specs, like
    # obs): both participate in the cache key, so armed and unarmed runs
    # of the same scenario are different artifacts.
    attack_load: Optional[AttackLoadSpec] = None
    defense: Optional[DefenseSpec] = None

    def option_kwargs(self) -> Dict[str, Any]:
        return dict(self.options)


def ddos_request(
    spec: DDoSSpec,
    probe_count: int = 400,
    seed: int = 42,
    population: Optional[PopulationConfig] = None,
    wire_format: bool = False,
    obs: Optional[ObsSpec] = None,
    attack_load: Optional[AttackLoadSpec] = None,
    defense: Optional[DefenseSpec] = None,
) -> RunRequest:
    return RunRequest(
        KIND_DDOS,
        spec,
        probe_count,
        seed,
        wire_format,
        population,
        obs=obs,
        attack_load=attack_load,
        defense=defense,
    )


def baseline_request(
    spec: BaselineSpec,
    probe_count: int = 600,
    seed: int = 42,
    population: Optional[PopulationConfig] = None,
    wire_format: bool = False,
    obs: Optional[ObsSpec] = None,
) -> RunRequest:
    return RunRequest(
        KIND_BASELINE,
        spec,
        probe_count,
        seed,
        wire_format,
        population,
        obs=obs,
    )


def glue_request(
    probe_count: int = 800, seed: int = 42, **options: Any
) -> RunRequest:
    return RunRequest(
        KIND_GLUE,
        probe_count=probe_count,
        seed=seed,
        options=tuple(sorted(options.items())),
    )


def cache_dump_request(software: str = "bind", **options: Any) -> RunRequest:
    options["software"] = software
    return RunRequest(KIND_CACHE_DUMP, options=tuple(sorted(options.items())))


def software_request(
    software: str = "bind", under_attack: bool = False, seed: int = 7
) -> RunRequest:
    return RunRequest(
        KIND_SOFTWARE,
        seed=seed,
        options=(("software", software), ("under_attack", under_attack)),
    )


def probe_case_request(seed: int = 11, **options: Any) -> RunRequest:
    return RunRequest(
        KIND_PROBE_CASE, seed=seed, options=tuple(sorted(options.items()))
    )


def execute_request(request: RunRequest) -> Any:
    """Run one request to completion and return the detached result.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it by reference; also the serial fallback, so both paths share
    one code path per experiment kind.
    """
    kind = request.kind
    if kind == KIND_DDOS:
        result = run_ddos(
            request.spec,
            probe_count=request.probe_count,
            seed=request.seed,
            population=request.population,
            wire_format=request.wire_format,
            obs=request.obs,
            attack_load=request.attack_load,
            defense=request.defense,
        )
    elif kind == KIND_BASELINE:
        result = run_baseline(
            request.spec,
            probe_count=request.probe_count,
            seed=request.seed,
            population=request.population,
            wire_format=request.wire_format,
            obs=request.obs,
        )
    elif kind == KIND_GLUE:
        from repro.core.experiments.glue import run_glue_experiment

        result = run_glue_experiment(
            probe_count=request.probe_count,
            seed=request.seed,
            **request.option_kwargs(),
        )
    elif kind == KIND_CACHE_DUMP:
        from repro.core.experiments.glue import run_cache_dump_study

        result = run_cache_dump_study(**request.option_kwargs())
    elif kind == KIND_SOFTWARE:
        from repro.core.experiments.software import run_software_study

        options = request.option_kwargs()
        result = run_software_study(
            options["software"], options["under_attack"], seed=request.seed
        )
    elif kind == KIND_PROBE_CASE:
        from repro.core.experiments.probe_case import run_probe_case

        result = run_probe_case(seed=request.seed, **request.option_kwargs())
    else:
        raise ValueError(f"unknown request kind {request.kind!r}")
    return detach_result(result)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/0 means all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_many(
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    cache: Optional[DiskCache] = None,
) -> List[Any]:
    """Execute a batch of runs, in parallel, through the cache.

    Results come back in request order regardless of worker scheduling.
    Cache hits are never re-run; misses are executed (fanned out when
    ``jobs > 1`` and more than one run is pending) and written back.
    """
    jobs = resolve_jobs(jobs)
    results: List[Any] = [None] * len(requests)

    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(requests)
    for index, request in enumerate(requests):
        if cache is not None:
            key = cache_key(request)
            keys[index] = key
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
                continue
        pending.append(index)

    if pending:
        if jobs <= 1 or len(pending) == 1:
            for index in pending:
                results[index] = execute_request(requests[index])
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    index: pool.submit(execute_request, requests[index])
                    for index in pending
                }
                for index, future in futures.items():
                    results[index] = future.result()
        if cache is not None:
            for index in pending:
                pending_key = keys[index]
                assert pending_key is not None  # set during the scan above
                cache.put(pending_key, results[index])

    return results
