"""Picklable result shapes for cross-process and cross-session transport.

:class:`~repro.core.experiments.baseline.BaselineResult` is already a
plain bundle of dataclasses, but
:class:`~repro.core.experiments.ddos.DDoSResult` carries the live
:class:`~repro.core.testbed.Testbed` it ran in — megabytes of wired
simulator state full of bound callbacks that neither pickle nor belong in
a result cache. Every derived series the analysis code reads off the
testbed comes from exactly three attributes, so :class:`TestbedSnapshot`
captures those and stands in for the testbed on detached results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.core.experiments.ddos import DDoSResult
from repro.dnscore.name import Name
from repro.servers.querylog import QueryLog


@dataclass
class TestbedSnapshot:
    """The slice of a :class:`Testbed` that survives the run.

    Duck-types the testbed for every consumer of a finished
    :class:`DDoSResult`: the offered-load query log (Figures 10–12,
    trace export) plus the zone origin and NS names used to classify
    queries, and — when the run enabled observability — the emitted
    spans, per-round metric snapshots, and kernel profile. Span and
    snapshot records use ``__slots__`` and pickle natively, so telemetry
    survives both the worker boundary and the disk cache.
    """

    # Not a pytest test class, despite the name.
    __test__ = False

    origin: Name
    test_ns_names: List[Name]
    offered_query_log: QueryLog
    spans: List[Any] = field(default_factory=list, repr=False)
    metric_snapshots: List[Any] = field(default_factory=list, repr=False)
    # Flight-recorder timeline points (repro.obs.timeline); empty unless
    # the run carried a TimelineSpec.
    timeline_points: List[Any] = field(default_factory=list, repr=False)
    # Per-source SourceSketch (plain ints/lists, pickles natively); None
    # unless the run carried a TimelineSpec with sketching on.
    source_sketch: Optional[Any] = field(default=None, repr=False)
    profile: Optional[Dict[str, Any]] = field(default=None, repr=False)
    # Defense/attack counter dicts (None when those subsystems are off),
    # mirroring the live testbed's properties of the same names.
    defense_stats: Optional[Dict[str, Any]] = field(default=None, repr=False)
    attack_stats: Optional[Dict[str, Any]] = field(default=None, repr=False)

    @classmethod
    def from_testbed(cls, testbed: Any) -> "TestbedSnapshot":
        return cls(
            origin=testbed.origin,
            test_ns_names=list(testbed.test_ns_names),
            offered_query_log=testbed.offered_query_log,
            spans=list(testbed.spans),
            metric_snapshots=list(testbed.metric_snapshots),
            timeline_points=list(testbed.timeline_points),
            source_sketch=testbed.source_sketch,
            profile=testbed.profile_summary(),
            defense_stats=testbed.defense_stats,
            attack_stats=testbed.attack_stats,
        )

    # Match the live testbed's accessor so consumers need not care which
    # shape they hold.
    def profile_summary(self) -> Optional[Dict[str, Any]]:
        return self.profile


def detach_result(result: Any) -> Any:
    """Return a picklable equivalent of an experiment result.

    DDoS results have their testbed replaced by a
    :class:`TestbedSnapshot`; everything else passes through unchanged.
    Idempotent, so cached and freshly-computed results take the same
    shape.
    """
    if isinstance(result, DDoSResult) and not isinstance(
        result.testbed, TestbedSnapshot
    ):
        return replace(
            result, testbed=TestbedSnapshot.from_testbed(result.testbed)
        )
    return result
