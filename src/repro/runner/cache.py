"""Persistent, content-addressed result cache.

Every experiment run is a pure function of its request — spec fields,
population size/shape, seed, wire format — and of the simulator code
itself. The cache key is a SHA-256 over a canonical JSON encoding of the
request plus :func:`code_fingerprint`, a digest of every ``.py`` file in
the ``repro`` package. Editing any source file therefore invalidates the
whole cache (conservative but sound: a kernel tweak can shift every
derived number), while re-running the same battery across sessions is a
pure disk read.

Entries are pickles written atomically (temp file + rename) so a killed
run never leaves a truncated entry behind; unreadable entries are treated
as misses and overwritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
from typing import Any, Optional, Union

import repro

_FINGERPRINT: Optional[str] = None

CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-runs"


def code_fingerprint() -> str:
    """Digest of the installed ``repro`` source tree (cached per process)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def _canonical(value: Any) -> Any:
    """Reduce a request component to JSON-encodable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                field.name: _canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cache_key(request: Any) -> str:
    """Stable content hash for a :class:`~repro.runner.executor.RunRequest`."""
    payload = json.dumps(
        {"request": _canonical(request), "code": code_fingerprint()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class DiskCache:
    """Pickle store addressed by :func:`cache_key` digests."""

    def __init__(
        self, root: Union[str, "os.PathLike[str]", None] = None
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Load a cached result, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open("rb") as stream:
                value = pickle.load(stream)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # A truncated or stale-format entry is just a miss; the next
            # put() replaces it.
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store a result atomically (write-to-temp, then rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(descriptor, "wb") as stream:
                pickle.dump(value, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
