"""Persistent, content-addressed result cache.

Every experiment run is a pure function of its request — spec fields,
population size/shape, seed, wire format — and of the simulator code
itself. The cache key is a SHA-256 over a canonical JSON encoding of the
request plus :func:`code_fingerprint`, a digest of every ``.py`` file in
the ``repro`` package. Editing any source file therefore invalidates the
whole cache (conservative but sound: a kernel tweak can shift every
derived number), while re-running the same battery across sessions is a
pure disk read.

Entries are pickles written atomically (temp file + rename) so a killed
run never leaves a truncated entry behind; unreadable entries are treated
as misses and overwritten.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import time
from typing import Any, NamedTuple, Optional, Union

import repro

_FINGERPRINT: Optional[str] = None

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Prefix of the atomic-write staging files (`.tmp-XXXX.pkl`).
TEMP_PREFIX = ".tmp-"

#: A staging file older than this is an orphan from a killed ``put()``
#: (a live write lasts milliseconds) and is swept opportunistically.
TEMP_SWEEP_AGE_SECONDS = 3600.0


class _MissSentinel:
    """Distinct cache-miss marker so ``None`` is a storable value."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<MISS>"

    def __bool__(self) -> bool:
        return False


#: Returned by :meth:`DiskCache.get` on a miss. Test with ``is MISS`` —
#: a legitimately-``None`` cached result must not read as a miss.
MISS = _MissSentinel()


class ClearStats(NamedTuple):
    """What :meth:`DiskCache.clear` removed."""

    entries: int
    temps: int


def default_cache_dir() -> pathlib.Path:
    """Resolve the cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-runs"


def code_fingerprint() -> str:
    """Digest of the installed ``repro`` source tree (cached per process)."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def _canonical(value: Any) -> Any:
    """Reduce a request component to JSON-encodable canonical form.

    Every encoding must be stable across *processes*: set iteration
    follows the per-process string hash seed and default ``repr`` embeds
    an object address, so both are canonicalized explicitly. Types with
    no stable encoding raise ``TypeError`` instead of silently keying on
    an address — a wrong cache key defeats the cache without any error.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                field.name: _canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        # Before the scalar check: IntEnum/StrEnum subclass int/str, and
        # two enums may share a value while meaning different things.
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [_canonical(item) for item in value]
        items.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {"__set__": items}
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot build a stable cache key from {type(value).__name__!r} "
        f"({value!r}); add an explicit canonical encoding to _canonical"
    )


def cache_key(request: Any) -> str:
    """Stable content hash for a :class:`~repro.runner.executor.RunRequest`."""
    payload = json.dumps(
        {"request": _canonical(request), "code": code_fingerprint()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class DiskCache:
    """Pickle store addressed by :func:`cache_key` digests."""

    def __init__(
        self, root: Union[str, "os.PathLike[str]", None] = None
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Load a cached result, or :data:`MISS` on miss/corruption.

        The sentinel (not ``None``) marks the miss so a run whose
        detached result is legitimately ``None`` still reads as a hit.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as stream:
                value = pickle.load(stream)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except Exception:
            # A truncated or stale-format entry is just a miss; the next
            # put() replaces it.
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store a result atomically (write-to-temp, then rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.root, prefix=TEMP_PREFIX, suffix=".pkl"
        )
        try:
            with os.fdopen(descriptor, "wb") as stream:
                pickle.dump(value, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        # A put() killed between mkstemp and replace leaves its staging
        # file behind forever; sweep aged orphans while we are here.
        self.sweep_temps(min_age_seconds=TEMP_SWEEP_AGE_SECONDS)

    def sweep_temps(self, min_age_seconds: Optional[float] = None) -> int:
        """Remove orphaned ``.tmp-*.pkl`` staging files; returns count.

        With ``min_age_seconds`` set, only files at least that old are
        removed — young staging files may belong to a concurrent
        ``put()`` whose ``os.replace`` has not happened yet.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        # Wall clock on purpose: file ages are an OS artifact, not
        # simulation state.
        now = time.time()  # repro-lint: allow[determinism]
        for path in self.root.glob(TEMP_PREFIX + "*.pkl"):
            if min_age_seconds is not None:
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age < min_age_seconds:
                    continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> ClearStats:
        """Delete every entry and staging file; reports both counts."""
        entries = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                if path.name.startswith(TEMP_PREFIX):
                    continue  # counted by the temp sweep below
                path.unlink(missing_ok=True)
                entries += 1
        temps = self.sweep_temps()
        return ClearStats(entries=entries, temps=temps)
