"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro ddos H --probes 500
    python -m repro ddos H --trace spans.jsonl --metrics-out metrics.jsonl
    python -m repro analyze-trace spans.jsonl --mode trace-summary
    python -m repro profile H --probes 200
    python -m repro baseline 1800 --probes 600
    python -m repro software --attack
    python -m repro glue
    python -m repro probe-case
    python -m repro report --jobs 4 --cache-dir .repro-cache
    python -m repro sweep --jobs 0 --cache-dir .repro-cache
    python -m repro defense-study --jobs 0 --intensities 2,4,10
    python -m repro lint --format json
    python -m repro verify --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, List, Sequence

from repro.analysis.figures import render_timeseries_table
from repro.analysis.tables import render_kv_table
from repro.core.experiments import (
    BASELINE_EXPERIMENTS,
    DDOS_EXPERIMENTS,
    run_cache_dump_study,
    run_glue_experiment,
    run_probe_case,
    run_software_study,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner import RunFailure


def _make_cache(args: argparse.Namespace):
    """Build the optional persistent result cache from ``--cache-dir``."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.runner import DiskCache

    cache = DiskCache(args.cache_dir)
    try:
        cache.root.mkdir(parents=True, exist_ok=True)
    except (FileExistsError, NotADirectoryError):
        raise SystemExit(f"error: --cache-dir {args.cache_dir!r} is not a directory")
    return cache


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="trace every query lifecycle and write the spans as JSONL",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="collect component metrics and write per-round snapshots as JSONL",
    )
    parser.add_argument(
        "--timeline",
        metavar="PATH",
        help=(
            "record sim-time telemetry timelines (flight recorder + "
            "per-source sketches) and write the points as JSONL; render "
            "with 'repro timeline PATH'"
        ),
    )
    parser.add_argument(
        "--timeline-interval",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="flight-recorder sampling cadence in sim seconds (default: 60)",
    )


def _obs_spec(args: argparse.Namespace):
    """Build the run's ``ObsSpec`` from the observability flags."""
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics_out", None)
    timeline = getattr(args, "timeline", None)
    if trace is None and metrics is None and timeline is None:
        return None
    from repro.obs import ObsSpec, TimelineSpec

    timeline_spec = (
        TimelineSpec(interval=args.timeline_interval)
        if timeline is not None
        else None
    )
    return ObsSpec(
        trace=trace is not None,
        metrics=metrics is not None,
        timeline=timeline_spec,
    )


def _write_obs_outputs(args, spans, snapshots, timeline_points=(), run=None) -> None:
    if getattr(args, "trace", None):
        from repro.obs import export_spans

        with open(args.trace, "w", encoding="utf-8") as stream:
            rows = export_spans(spans, stream, run=run)
        print(f"wrote {rows} spans to {args.trace}")
    if getattr(args, "metrics_out", None):
        from repro.obs import export_metrics

        with open(args.metrics_out, "w", encoding="utf-8") as stream:
            rows = export_metrics(snapshots, stream, run=run)
        print(f"wrote {rows} metric snapshots to {args.metrics_out}")
    if getattr(args, "timeline", None):
        from repro.obs import export_timeline

        with open(args.timeline, "w", encoding="utf-8") as stream:
            rows = export_timeline(timeline_points, stream, run=run)
        print(f"wrote {rows} timeline points to {args.timeline}")


def _add_queue_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--queue-backend",
        choices=("auto", "heap", "wheel", "calendar", "native"),
        default="auto",  # == repro.simcore.events.DEFAULT_QUEUE_BACKEND
        help=(
            "simulator event-queue backend; every backend produces "
            "identical results, this only changes wall time (default: "
            "auto = native C kernel if built, else timer wheel)"
        ),
    )


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent runs (default: all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persistent result cache; reruns with unchanged code are instant",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help=(
            "finish the rest of the battery when a run fails after "
            "retries; failures are listed in a ledger and the exit "
            "status is 1 (default: abort on the first exhausted run)"
        ),
    )


def _print_failure_ledger(failures: Sequence["RunFailure"]) -> None:
    """Report exhausted runs on stderr, one ledger line per failure."""
    print(
        f"\nfailure ledger: {len(failures)} run(s) failed after retries",
        file=sys.stderr,
    )
    for failure in failures:
        print(f"  {failure.describe()}", file=sys.stderr)


def _cmd_baseline(args: argparse.Namespace) -> int:
    from repro.runner import RunFailure, baseline_request, run_many

    spec = BASELINE_EXPERIMENTS[args.experiment]
    request = baseline_request(
        spec,
        probe_count=args.probes,
        seed=args.seed,
        obs=_obs_spec(args),
        queue_backend=args.queue_backend,
    )
    [result] = run_many(
        [request],
        jobs=args.jobs,
        cache=_make_cache(args),
        keep_going=args.keep_going,
    )
    if isinstance(result, RunFailure):
        _print_failure_ledger([result])
        return 1
    _write_obs_outputs(
        args,
        result.spans,
        result.metric_snapshots,
        result.timeline_points,
        run=f"baseline-{args.experiment}",
    )
    print(render_kv_table(f"Dataset (TTL {args.experiment})", result.dataset.as_rows()))
    print()
    print(render_kv_table("Classification (Table 2)", result.table2.as_rows()))
    print()
    print(render_kv_table("Miss attribution (Table 3)", result.table3.as_rows()))
    print(f"\ncache-miss rate: {result.miss_rate:.1%}")
    return 0


def _cmd_ddos(args: argparse.Namespace) -> int:
    from repro.runner import RunFailure, ddos_request, run_many

    spec = DDOS_EXPERIMENTS[args.experiment]
    print(spec.describe())
    request = ddos_request(
        spec,
        probe_count=args.probes,
        seed=args.seed,
        obs=_obs_spec(args),
        queue_backend=args.queue_backend,
    )
    [result] = run_many(
        [request],
        jobs=args.jobs,
        cache=_make_cache(args),
        keep_going=args.keep_going,
    )
    if isinstance(result, RunFailure):
        _print_failure_ledger([result])
        return 1
    _write_obs_outputs(
        args,
        result.testbed.spans,
        result.testbed.metric_snapshots,
        result.timeline_points,
        run=f"ddos-{args.experiment}",
    )
    if args.export_trace:
        from repro.analysis.traceio import export_query_log

        with open(args.export_trace, "w", encoding="utf-8") as stream:
            rows = export_query_log(result.testbed.offered_query_log, stream)
        print(f"exported {rows} offered queries to {args.export_trace}")
    start, end = spec.attack_window
    attack_rounds = [
        index
        for index in range(int(spec.total_duration_min))
        if start <= index * spec.round_seconds < end
    ]
    print()
    print(
        render_timeseries_table(
            "Client outcomes per round (* = attack)",
            result.outcomes_by_round(),
            ["ok", "servfail", "no_answer"],
            attack_rounds=attack_rounds,
        )
    )
    print(f"\nfailures before attack: {result.failure_fraction_before_attack():.1%}")
    print(f"failures during attack: {result.failure_fraction_during_attack():.1%}")
    print(f"authoritative amplification: {result.amplification():.1f}x")
    return 0


def _cmd_software(args: argparse.Namespace) -> int:
    for software in ("bind", "unbound"):
        result = run_software_study(software, args.attack, seed=args.seed)
        condition = "authoritatives dead" if args.attack else "normal"
        print(
            f"{software:8s} ({condition}): root={result.queries_root} "
            f"tld={result.queries_tld} target={result.queries_target} "
            f"total={result.total} resolved={result.resolved}"
        )
    return 0


def _cmd_glue(args: argparse.Namespace) -> int:
    result = run_glue_experiment(probe_count=args.probes, seed=args.seed)
    print(render_kv_table("NS answers (Table 5)", result.ns_buckets.as_rows()))
    print()
    print(render_kv_table("A answers (Table 5)", result.a_buckets.as_rows()))
    print(f"\nchild-TTL fraction (NS): {result.ns_buckets.child_fraction:.1%}")
    for software in ("bind", "unbound"):
        dump = run_cache_dump_study(software)
        print(
            f"{software} cache after NS query: {dump.ns_cached_ttl}s "
            f"(child published {dump.child_ttl}s, parent {dump.parent_ttl}s)"
        )
    return 0


def _cmd_probe_case(args: argparse.Namespace) -> int:
    result = run_probe_case(seed=args.seed)
    print("interval  client(q/ans/R1)  auth(q/ans/ATs/Rn/pairs)  top2")
    for row in result.rows:
        marker = " *" if row.during_attack else ""
        print(
            f"{row.interval:>8}  {row.client_queries}/{row.client_answers}/"
            f"{row.client_r1_count:<12} {row.auth_queries}/{row.auth_answers}/"
            f"{row.at_count}/{row.rn_count}/{row.rn_at_pairs:<10} "
            f"{row.top2_queries}{marker}"
        )
    summary = result.amplification_summary()
    print(
        f"\nqueries per client query: normal "
        f"{summary['normal_queries_per_client_query']:.1f}, attack "
        f"{summary['attack_queries_per_client_query']:.1f}"
    )
    return 0


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    if args.mode == "trace-summary":
        from repro.obs import SpanFormatError, import_spans, summarize_spans

        with open(args.path, "r", encoding="utf-8") as stream:
            try:
                spans = import_spans(stream)
            except SpanFormatError as exc:
                raise SystemExit(f"error: {args.path}: {exc}")
        try:
            print(summarize_spans(spans, top_n=args.top))
        except SpanFormatError as exc:
            raise SystemExit(f"error: {args.path}: {exc}")
        return 0

    from repro.analysis.traceio import analyze_trace, import_query_log

    with open(args.path, "r", encoding="utf-8") as stream:
        log = import_query_log(stream)
    analysis = analyze_trace(log, ttl=args.ttl)
    print(
        render_kv_table(
            f"Trace analysis ({args.path}, TTL {args.ttl:.0f}s)",
            analysis.as_rows(),
        )
    )
    return 0


def _attack_window_for(args: argparse.Namespace, run_label: str):
    """The attack window to annotate: explicit flag, else from the run key."""
    if args.attack_window:
        try:
            start_text, end_text = args.attack_window.split(":", 1)
            return (float(start_text), float(end_text))
        except ValueError:
            raise SystemExit(
                f"error: --attack-window must be START:END seconds, got "
                f"{args.attack_window!r}"
            )
    if run_label.startswith("ddos-"):
        key = run_label[len("ddos-"):]
        if key in DDOS_EXPERIMENTS:
            return DDOS_EXPERIMENTS[key].attack_window
    return None


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import (
        SpanFormatError,
        import_timeline,
        render_timeline,
        render_timeline_csv,
        validate_timeline,
    )

    with open(args.path, "r", encoding="utf-8") as stream:
        try:
            by_run = import_timeline(stream)
        except SpanFormatError as exc:
            raise SystemExit(f"error: {args.path}: {exc}")
    if not by_run:
        raise SystemExit(f"error: {args.path}: no timeline points")
    if args.run is not None:
        if args.run not in by_run:
            known = ", ".join(sorted(label or "(unlabelled)" for label in by_run))
            raise SystemExit(
                f"error: {args.path}: no run {args.run!r} (runs: {known})"
            )
        by_run = {args.run: by_run[args.run]}
    series = args.series.split(",") if args.series else None
    blocks = []
    for label, points in by_run.items():
        try:
            validate_timeline(points)
        except SpanFormatError as exc:
            raise SystemExit(f"error: {args.path}: run {label or '?'}: {exc}")
        try:
            if args.format == "csv":
                blocks.append(render_timeline_csv(points, series))
            else:
                title = f"{label or 'timeline'}: {len(points)} samples"
                blocks.append(
                    render_timeline(
                        points,
                        series,
                        attack_window=_attack_window_for(args, label),
                        title=title,
                    )
                )
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
    print("\n\n".join(blocks))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.export import write_sweep_csv
    from repro.core.experiments.sweep import run_sweep

    losses = [float(value) for value in args.losses.split(",")]
    ttls = [int(value) for value in args.ttls.split(",")]
    sweep = run_sweep(
        losses=losses,
        ttls=ttls,
        probe_count=args.probes,
        seed=args.seed,
        jobs=args.jobs,
        cache=_make_cache(args),
        keep_going=args.keep_going,
    )
    print("failure fraction during attack (rows: TTL, columns: loss)")
    header = f"{'TTL':>8} " + "".join(f"{loss:>9.0%}" for loss in sweep.losses())
    print(header)
    for ttl, row in zip(sweep.ttls(), sweep.failure_matrix()):
        print(f"{ttl:>8} " + "".join(f"{value:>9.1%}" for value in row))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8", newline="") as stream:
            write_sweep_csv(sweep, stream)
        print(f"\nwrote {args.csv}")
    if sweep.failures:
        _print_failure_ledger(sweep.failures)
        return 1
    return 0


def _cmd_defense_study(args: argparse.Namespace) -> int:
    from repro.core.experiments.defense_study import run_defense_study

    intensities = [float(value) for value in args.intensities.split(",")]
    study = run_defense_study(
        intensities=intensities,
        capacity=args.capacity,
        mode=args.mode,
        attackers=args.attackers,
        probe_count=args.probes,
        seed=args.seed,
        jobs=args.jobs,
        cache=_make_cache(args),
        keep_going=args.keep_going,
    )
    print(study.render())
    if args.json:
        import json

        payload = {
            "capacity": study.capacity,
            "mode": study.mode,
            "probe_count": study.probe_count,
            "seed": study.seed,
            "cells": [
                {
                    "layers": cell.layers,
                    "intensity": cell.intensity,
                    "failure_before": cell.failure_before,
                    "failure_during": cell.failure_during,
                    "legit_served_fraction": cell.legit_served_fraction,
                    "attack_served_fraction": cell.attack_served_fraction,
                    "defense_stats": cell.defense_stats,
                    "attack_stats": cell.attack_stats,
                }
                for cell in study.cells
            ],
        }
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"\nwrote {args.json}")
    if study.failures:
        _print_failure_ledger(study.failures)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.experiments.ddos import run_ddos
    from repro.obs import ObsSpec

    spec = DDOS_EXPERIMENTS[args.experiment]
    print(spec.describe())
    print(f"profiling with {args.probes} probes ...")
    result = run_ddos(
        spec,
        probe_count=args.probes,
        seed=args.seed,
        obs=ObsSpec(profile=True),
        queue_backend=args.queue_backend,
    )
    profile = result.testbed.profile_summary()
    print()
    print(
        render_kv_table(
            "Simulation kernel profile",
            [
                ("events processed", f"{profile['events']:,}"),
                ("wall time", f"{profile['wall_seconds']:.2f} s"),
                ("sim time", f"{profile['sim_seconds']:.0f} s"),
                ("events / wall second", f"{profile['events_per_second']:,.0f}"),
                (
                    "wall time per sim second",
                    f"{profile['wall_per_sim_second'] * 1e6:.1f} us",
                ),
                ("max event-queue depth", f"{profile['max_depth']:,}"),
                ("max cancelled-pending", f"{profile['max_dead']:,}"),
            ],
        )
    )
    print(f"\ntop {args.top} callback sites by wall time:")
    print(f"{'wall':>10} {'calls':>10}  site")
    for name, stats in list(profile["sites"].items())[: args.top]:
        print(
            f"{stats['wall_seconds'] * 1e3:>8.1f}ms {stats['calls']:>10,}  {name}"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.fsm.cli import run_verify

    return run_verify(args)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report
    from repro.runner import RunFailure

    ledger: List[RunFailure] = []
    report = build_report(
        baseline_probes=args.baseline_probes,
        ddos_probes=args.ddos_probes,
        seed=args.seed,
        jobs=args.jobs,
        cache=_make_cache(args),
        trace_path=args.trace,
        metrics_path=args.metrics_out,
        timeline_path=args.timeline,
        timeline_interval=args.timeline_interval,
        include_defense=args.defense,
        keep_going=args.keep_going,
        failure_ledger=ledger,
    )
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(report)
    if ledger:
        _print_failure_ledger(ledger)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'When the Dike Breaks: Dissecting DNS "
            "Defenses During DDoS' (IMC 2018)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42, help="master RNG seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    baseline = subparsers.add_parser(
        "baseline", help="run a §3 caching baseline experiment"
    )
    baseline.add_argument("experiment", choices=sorted(BASELINE_EXPERIMENTS))
    baseline.add_argument("--probes", type=int, default=600)
    _add_runner_flags(baseline)
    _add_obs_flags(baseline)
    _add_queue_backend_flag(baseline)
    baseline.set_defaults(func=_cmd_baseline)

    ddos = subparsers.add_parser("ddos", help="run a Table 4 DDoS experiment")
    ddos.add_argument("experiment", choices=sorted(DDOS_EXPERIMENTS))
    ddos.add_argument("--probes", type=int, default=400)
    ddos.add_argument(
        "--export-trace",
        metavar="PATH",
        help="write the offered authoritative query trace as JSONL",
    )
    _add_runner_flags(ddos)
    _add_obs_flags(ddos)
    _add_queue_backend_flag(ddos)
    ddos.set_defaults(func=_cmd_ddos)

    analyze = subparsers.add_parser(
        "analyze-trace",
        help="apply the paper's §4 methodology to a JSONL query trace",
    )
    analyze.add_argument("path", help="JSONL trace file")
    analyze.add_argument(
        "--mode",
        choices=["querylog", "trace-summary"],
        default="querylog",
        help=(
            "querylog: §4 analysis of an offered-query trace; "
            "trace-summary: lifecycle summary of a --trace span file"
        ),
    )
    analyze.add_argument(
        "--ttl", type=float, default=3600.0, help="reference record TTL"
    )
    analyze.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="slowest lifecycles listed by trace-summary mode",
    )
    analyze.set_defaults(func=_cmd_analyze_trace)

    timeline = subparsers.add_parser(
        "timeline",
        help="render a --timeline JSONL export (flight-recorder series)",
    )
    timeline.add_argument("path", help="JSONL timeline file")
    timeline.add_argument(
        "--format",
        choices=["text", "csv"],
        default="text",
        help="text table (default) or CSV",
    )
    timeline.add_argument(
        "--series",
        metavar="NAME[,NAME...]",
        help=(
            "comma list of series to render (default: the headline "
            "series present in the file plus any sketch.* series)"
        ),
    )
    timeline.add_argument(
        "--run",
        metavar="LABEL",
        help="render only this run's timeline (e.g. ddos-H)",
    )
    timeline.add_argument(
        "--attack-window",
        metavar="START:END",
        help=(
            "annotate samples inside this sim-time window (seconds); "
            "derived automatically from ddos-<exp> run labels"
        ),
    )
    timeline.set_defaults(func=_cmd_timeline)

    software = subparsers.add_parser(
        "software", help="BIND/Unbound retry study (Appendix E)"
    )
    software.add_argument(
        "--attack", action="store_true", help="make all authoritatives unreachable"
    )
    software.set_defaults(func=_cmd_software)

    glue = subparsers.add_parser(
        "glue", help="referral vs answer TTL precedence (Appendix A)"
    )
    glue.add_argument("--probes", type=int, default=400)
    glue.set_defaults(func=_cmd_glue)

    probe_case = subparsers.add_parser(
        "probe-case", help="single-probe drill-down (Appendix F)"
    )
    probe_case.set_defaults(func=_cmd_probe_case)

    sweep = subparsers.add_parser(
        "sweep", help="loss x TTL resilience surface (generalizes Table 4)"
    )
    sweep.add_argument("--losses", default="0.5,0.75,0.9", help="comma list")
    sweep.add_argument("--ttls", default="60,300,1800", help="comma list")
    sweep.add_argument("--probes", type=int, default=200)
    sweep.add_argument("--csv", metavar="PATH", help="write the surface as CSV")
    _add_runner_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    defense = subparsers.add_parser(
        "defense-study",
        help=(
            "layered authoritative defenses vs real attack traffic "
            "(emergent-loss Table 4 analogue)"
        ),
    )
    defense.add_argument(
        "--intensities",
        default="2,4,10",
        help="comma list of offered-load / capacity ratios",
    )
    defense.add_argument(
        "--capacity",
        type=float,
        default=20.0,
        help="per-server service capacity in q/s",
    )
    defense.add_argument(
        "--mode",
        default="direct-flood",
        choices=["direct-flood", "random-subdomain", "nxns"],
        help="attack traffic mode",
    )
    defense.add_argument(
        "--attackers", type=int, default=8, help="attacker population size"
    )
    defense.add_argument("--probes", type=int, default=120)
    defense.add_argument(
        "--json", metavar="PATH", help="also write the full grid as JSON"
    )
    _add_runner_flags(defense)
    defense.set_defaults(func=_cmd_defense_study)

    profile = subparsers.add_parser(
        "profile",
        help="profile the simulation kernel over one DDoS experiment",
    )
    profile.add_argument(
        "experiment", nargs="?", default="H", choices=sorted(DDOS_EXPERIMENTS)
    )
    profile.add_argument("--probes", type=int, default=200)
    profile.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="callback sites listed (by wall time)",
    )
    _add_queue_backend_flag(profile)
    profile.set_defaults(func=_cmd_profile)

    lint = subparsers.add_parser(
        "lint",
        help=(
            "run the AST static-analysis suite (determinism, spec "
            "hygiene, RNG streams, hot-path slots, event-loop safety)"
        ),
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    verify = subparsers.add_parser(
        "verify",
        help=(
            "model-check the resolver state-machine tables (reachability, "
            "liveness, determinism, retry-amplification bounds vs §6)"
        ),
    )
    from repro.fsm.cli import add_verify_arguments

    add_verify_arguments(verify)
    verify.set_defaults(func=_cmd_verify)

    report = subparsers.add_parser(
        "report",
        help="run every experiment and print the paper-vs-measured report",
    )
    report.add_argument("--baseline-probes", type=int, default=600)
    report.add_argument("--ddos-probes", type=int, default=400)
    report.add_argument(
        "--output", metavar="PATH", help="also write the report to a file"
    )
    report.add_argument(
        "--defense",
        action="store_true",
        help="append the layered-defense grid (beyond the paper)",
    )
    _add_runner_flags(report)
    _add_obs_flags(report)
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-render (timeline and
        # trace outputs can exceed the pipe buffer); exit quietly the way
        # well-behaved Unix filters do.
        sys.stderr.close()
        sys.exit(141)  # 128 + SIGPIPE
