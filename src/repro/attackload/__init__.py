"""Adversarial attack traffic through the emulated topology.

The paper (and :mod:`repro.netem.attack`) models DDoS as an axiomatic
inbound drop fraction at the victims. This package generates the
*queries themselves*: attacker populations whose streams traverse the
same network, recursives, and authoritatives as the legitimate vantage
points — which is what makes the authoritative-side defenses in
:mod:`repro.defense` meaningful (they must tell the two apart) and
makes drop probability under the finite-capacity service model emergent
rather than configured.

Three modes (see :class:`AttackLoadSpec`): direct floods at the
authoritatives (optionally source-spoofed), random-subdomain "water
torture" through the open recursive layer, and NXNS-style delegation
amplification where one attacker query fans out into many
authoritative-bound address resolutions.
"""

from repro.attackload.attackers import (
    AttackLoad,
    AttackLoadStats,
    NxnsAuthoritative,
    build_attack_load,
)
from repro.attackload.spec import (
    MODE_DIRECT,
    MODE_NXNS,
    MODE_SUBDOMAIN,
    MODES,
    SPOOF_NONE,
    SPOOF_RANDOM,
    AttackLoadSpec,
)

__all__ = [
    "AttackLoad",
    "AttackLoadSpec",
    "AttackLoadStats",
    "MODES",
    "MODE_DIRECT",
    "MODE_NXNS",
    "MODE_SUBDOMAIN",
    "NxnsAuthoritative",
    "SPOOF_NONE",
    "SPOOF_RANDOM",
    "build_attack_load",
]
