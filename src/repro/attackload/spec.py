"""The frozen attack-load configuration.

Like :class:`~repro.defense.spec.DefenseSpec`, this rides
:class:`~repro.core.testbed.TestbedConfig` and
:class:`~repro.runner.executor.RunRequest` and participates in the
disk-cache key. ``None`` (the default everywhere) wires nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Attack modes.
MODE_DIRECT = "direct-flood"
MODE_SUBDOMAIN = "random-subdomain"
MODE_NXNS = "nxns"

MODES = (MODE_DIRECT, MODE_SUBDOMAIN, MODE_NXNS)

#: Source-address behavior for direct floods.
SPOOF_NONE = "none"
SPOOF_RANDOM = "random"


@dataclass(frozen=True)
class AttackLoadSpec:
    """An attacker population and its query stream.

    ``mode`` selects the stream shape:

    * ``direct-flood`` — queries straight at the victim authoritatives
      (apex A queries, the classic reflection trigger). With
      ``spoof="none"`` each attacker uses its own source address (RRL's
      best case); with ``spoof="random"`` sources rotate through a pool
      of ``spoof_pool`` spoofed addresses per attacker, spreading load
      across RRL buckets (RRL's worst case). Responses to spoofed
      sources blackhole at the network, as in reality.
    * ``random-subdomain`` — water torture: unique non-existent names
      under the victim zone, sent *through* the open recursive layer
      with RD=1, so every query is a guaranteed cache miss that the
      recursives dutifully carry to the victim authoritatives.
    * ``nxns`` — the attacker also runs an authoritative for a zone of
      its own; every query for it returns a referral delegating to
      ``nxns_fanout`` no-glue nameservers *inside the victim zone*, and
      the chasing recursives amplify one attacker query into a fan of
      authoritative-bound address resolutions.

    Rates are per attacker (mean of an exponential inter-arrival), so
    total offered attack load is ``attackers * qps``. ``start`` /
    ``duration`` are simulation seconds, normally aligned with the
    experiment's attack window.
    """

    mode: str = MODE_DIRECT
    attackers: int = 8
    qps: float = 25.0
    start: float = 0.0
    duration: float = 3600.0
    spoof: str = SPOOF_NONE
    spoof_pool: int = 64
    nxns_fanout: int = 10

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown attack mode {self.mode!r}")
        if self.spoof not in (SPOOF_NONE, SPOOF_RANDOM):
            raise ValueError(f"unknown spoof mode {self.spoof!r}")
        if self.attackers < 0:
            raise ValueError(f"attackers must be >= 0: {self.attackers}")
        if self.qps <= 0:
            raise ValueError(f"qps must be positive: {self.qps}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0: {self.start}")
        if self.spoof_pool < 1:
            raise ValueError(f"spoof_pool must be >= 1: {self.spoof_pool}")
        if self.nxns_fanout < 1:
            raise ValueError(f"nxns_fanout must be >= 1: {self.nxns_fanout}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def total_qps(self) -> float:
        """Mean offered attack rate across the whole population."""
        return self.attackers * self.qps

    def describe(self) -> str:
        extra = ""
        if self.mode == MODE_DIRECT and self.spoof != SPOOF_NONE:
            extra = f", spoof={self.spoof}"
        if self.mode == MODE_NXNS:
            extra = f", fanout={self.nxns_fanout}"
        return (
            f"{self.mode}: {self.attackers} attackers x {self.qps:g} qps"
            f" over [{self.start:g}, {self.end:g})s{extra}"
        )
