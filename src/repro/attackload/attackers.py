"""Attacker processes: event generators that emit adversarial queries.

Attackers are deliberately *not* :class:`~repro.netem.topology.Host`
subclasses: they never need to receive anything (a flood source ignores
responses, and responses to spoofed sources blackhole at the network
exactly as unroutable packets do in reality), so each attacker is just a
self-rescheduling timer chain drawing exponential inter-arrivals from
the dedicated ``"attackload"`` RNG stream. Being a *new* named stream,
it never perturbs any existing stream — runs without an attack load are
bit-for-bit identical to pre-attackload builds.

The NXNS mode is the exception that needs a server: the attacker's own
authoritative (:class:`NxnsAuthoritative`), which answers every query
with a referral delegating to no-glue nameservers inside the *victim*
zone, so chasing recursives amplify each attacker query into
``nxns_fanout`` victim-bound resolutions.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.attackload.spec import (
    MODE_DIRECT,
    MODE_NXNS,
    MODE_SUBDOMAIN,
    SPOOF_RANDOM,
    AttackLoadSpec,
)
from repro.dnscore.message import Message, make_query, make_response
from repro.dnscore.name import Name
from repro.dnscore.records import NS, A, ResourceRecord
from repro.dnscore.rrtypes import Rcode, RRType
from repro.netem.topology import Host
from repro.netem.transport import Network, Packet
from repro.simcore.simulator import Simulator
from repro.workloads.attacknames import (
    nxns_target_names,
    water_torture_name,
)


class AttackLoadStats:
    """Aggregate attack-side counters (one instance per testbed)."""

    __slots__ = ("queries_sent", "referrals_served")

    def __init__(self) -> None:
        self.queries_sent = 0
        self.referrals_served = 0

    def as_dict(self) -> dict:
        return {
            "queries_sent": self.queries_sent,
            "referrals_served": self.referrals_served,
        }

    def __repr__(self) -> str:
        return (
            f"<AttackLoadStats sent={self.queries_sent} "
            f"referrals={self.referrals_served}>"
        )


#: An emit strategy returns one (src, dst, message) triple per firing.
EmitFn = Callable[[random.Random], Tuple[str, str, Message]]


class Attacker:
    """One attacker: a self-rescheduling query stream."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        spec: AttackLoadSpec,
        rng: random.Random,
        stats: AttackLoadStats,
        emit: EmitFn,
    ) -> None:
        self.sim = sim
        self.network = network
        self.spec = spec
        self.rng = rng
        self.stats = stats
        self.emit = emit

    def schedule(self) -> None:
        # Stagger starts inside the first mean inter-arrival so the
        # population does not fire in lockstep at the window edge.
        offset = self.rng.random() / self.spec.qps
        self.sim.at(self.spec.start + offset, self._fire)

    def _fire(self) -> None:
        if self.sim.now >= self.spec.end:
            return
        src, dst, message = self.emit(self.rng)
        self.network.send(src, dst, message)
        self.stats.queries_sent += 1
        self.sim.call_later(self.rng.expovariate(self.spec.qps), self._fire)


class NxnsAuthoritative(Host):
    """The attacker-controlled authoritative for the NXNS mode.

    Any query under its apex is answered with a referral whose authority
    section delegates the query name itself to ``fanout`` nameservers
    inside ``victim_origin`` — with no glue, so the recursive must
    resolve each target's address at the victim's authoritatives.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        apex: Name,
        victim_origin: Name,
        fanout: int,
        rng: random.Random,
        stats: AttackLoadStats,
        ns_ttl: int = 300,
        processing_delay: float = 0.0005,
        name: str = "nxns-auth",
    ) -> None:
        super().__init__(sim, network, address, name=name)
        self.apex = apex
        self.victim_origin = victim_origin
        self.fanout = fanout
        self.rng = rng
        self.stats = stats
        self.ns_ttl = ns_ttl
        self.processing_delay = processing_delay

    def on_packet(self, packet: Packet) -> None:
        message = packet.message
        if message.is_response or message.question is None:
            return
        qname = message.question.qname
        if not qname.is_subdomain_of(self.apex) or qname == self.apex:
            response = make_response(message, rcode=Rcode.REFUSED)
        else:
            targets = nxns_target_names(
                self.rng, self.victim_origin, self.fanout
            )
            authority = [
                ResourceRecord(qname, self.ns_ttl, NS(target))
                for target in targets
            ]
            response = make_response(message, authority=authority)
            self.stats.referrals_served += 1
        response.trace_id = message.trace_id
        self.sim.call_later(
            self.processing_delay,
            self.send,
            packet.src,
            response,
            packet.transport,
        )


class AttackLoad:
    """The wired attacker population of one testbed."""

    def __init__(
        self,
        spec: AttackLoadSpec,
        attackers: List[Attacker],
        attacker_sources: List[str],
        stats: AttackLoadStats,
        nxns_server: Optional[NxnsAuthoritative] = None,
    ) -> None:
        self.spec = spec
        self.attackers = attackers
        #: Every source address attack queries can arrive from at the
        #: victims (the defense layer's ground truth). Recursives
        #: carrying water-torture/NXNS traffic are *not* listed: those
        #: queries reach the victim from legitimate infrastructure,
        #: which is precisely what makes such attacks hard to filter.
        self.attacker_sources = attacker_sources
        self.stats = stats
        self.nxns_server = nxns_server

    def schedule(self) -> None:
        for attacker in self.attackers:
            attacker.schedule()


def build_attack_load(testbed) -> AttackLoad:
    """Wire an attacker population into a testbed (its constructor hook).

    Runs after the legitimate population is built, so the address
    allocator's pools are consumed in the same order as before —
    another ingredient of the disabled-path byte-identity guarantee.
    """
    spec: AttackLoadSpec = testbed.config.attack_load
    sim = testbed.sim
    network = testbed.network
    rng = testbed.streams.stream("attackload")
    stats = AttackLoadStats()
    allocator = testbed.allocator

    attacker_addresses = [
        allocator.allocate("attackers") for _ in range(spec.attackers)
    ]
    attacker_sources = list(attacker_addresses)
    attackers: List[Attacker] = []
    nxns_server: Optional[NxnsAuthoritative] = None

    if spec.mode == MODE_DIRECT:
        targets = list(testbed.test_server_addresses)
        origin = testbed.origin
        for address in attacker_addresses:
            if spec.spoof == SPOOF_RANDOM:
                sources = [
                    allocator.allocate("attackers")
                    for _ in range(spec.spoof_pool)
                ]
                attacker_sources.extend(sources)
            else:
                sources = [address]
            emit = _direct_emit(sources, targets, origin)
            attackers.append(Attacker(sim, network, spec, rng, stats, emit))
    elif spec.mode == MODE_SUBDOMAIN:
        ingresses = _open_resolver_ingresses(testbed)
        origin = testbed.origin
        for address in attacker_addresses:
            emit = _subdomain_emit(address, ingresses, origin)
            attackers.append(Attacker(sim, network, spec, rng, stats, emit))
    elif spec.mode == MODE_NXNS:
        ingresses = _open_resolver_ingresses(testbed)
        apex = Name.from_text(f"evil-attack.{testbed.config.tld_origin}")
        nxns_server = _wire_nxns_zone(testbed, apex, spec, rng, stats)
        for address in attacker_addresses:
            emit = _subdomain_emit(address, ingresses, apex)
            attackers.append(Attacker(sim, network, spec, rng, stats, emit))
    else:  # pragma: no cover - spec validation rejects unknown modes
        raise ValueError(f"unknown attack mode {spec.mode!r}")

    return AttackLoad(spec, attackers, attacker_sources, stats, nxns_server)


def _direct_emit(
    sources: Sequence[str], targets: Sequence[str], origin: Name
) -> EmitFn:
    """Direct flood: apex A queries straight at the victims, RD=0."""

    def emit(rng: random.Random) -> Tuple[str, str, Message]:
        src = sources[rng.randrange(len(sources))]
        dst = targets[rng.randrange(len(targets))]
        return src, dst, make_query(origin, RRType.A, rd=False)

    return emit


def _subdomain_emit(
    source: str, ingresses: Sequence[str], origin: Name
) -> EmitFn:
    """Water torture (and NXNS triggering): unique names via an open
    recursive, RD=1. The attacker ignores the answer; the recursive does
    the victim-facing work either way."""

    def emit(rng: random.Random) -> Tuple[str, str, Message]:
        dst = ingresses[rng.randrange(len(ingresses))]
        qname = water_torture_name(rng, origin)
        return source, dst, make_query(qname, RRType.A, rd=True)

    return emit


def _open_resolver_ingresses(testbed) -> List[str]:
    """Addresses an off-path client can query recursively: the ISP
    recursives and the public-pool ingress anycast addresses."""
    population = testbed.population
    ingresses = [resolver.address for resolver in population.recursives]
    ingresses.extend(pool.address for pool in population.pools)
    if not ingresses:
        raise ValueError(
            "attack load needs at least one recursive ingress "
            "(population has none)"
        )
    return ingresses


def _wire_nxns_zone(
    testbed,
    apex: Name,
    spec: AttackLoadSpec,
    rng: random.Random,
    stats: AttackLoadStats,
) -> NxnsAuthoritative:
    """Stand up the attacker's authoritative and delegate its zone from
    the TLD (with glue), so recursives can find it the normal way."""
    address = testbed.allocator.allocate("attackers")
    server = NxnsAuthoritative(
        testbed.sim,
        testbed.network,
        address,
        apex,
        testbed.origin,
        spec.nxns_fanout,
        rng,
        stats,
    )
    ns_host = Name(("ns1",) + apex.labels)
    tld = Name.from_text(testbed.config.tld_origin)
    tld_zone = testbed.zones[tld]
    delegation_ttl = 3600
    tld_zone.add(apex, delegation_ttl, NS(ns_host))
    tld_zone.add(ns_host, delegation_ttl, A(address))
    return server
