"""The simulation kernel: a virtual clock driving a pluggable event queue."""

from __future__ import annotations

import time as _walltime
from typing import Any, Callable, Dict, List, Optional

from repro.simcore.events import (
    DEFAULT_QUEUE_BACKEND,
    Event,
    SimulationError,
    make_queue,
    resolve_queue_backend,
)

__all__ = ["SimProfile", "SimulationError", "Simulator"]


class SimProfile:
    """Wall-clock profile of a simulator run, gathered by the profiled loop.

    ``sites`` maps a callback site (its ``__qualname__``) to
    ``[calls, wall_seconds]``. The profile accumulates across every
    :meth:`Simulator.run` call after :meth:`Simulator.enable_profiling`.
    ``max_depth`` tracks the deepest the queue got (live plus
    lazily-deleted entries); ``max_dead`` isolates the cancelled-pending
    component so lazy-deletion bloat is observable on its own.
    """

    __slots__ = (
        "wall_seconds",
        "sim_seconds",
        "events",
        "max_depth",
        "max_dead",
        "sites",
    )

    def __init__(self) -> None:
        self.wall_seconds = 0.0
        self.sim_seconds = 0.0
        self.events = 0
        self.max_depth = 0
        self.max_dead = 0
        self.sites: Dict[str, List[float]] = {}

    def summary(self) -> Dict[str, Any]:
        """Plain-data summary, picklable and JSON-friendly."""
        wall = self.wall_seconds
        return {
            "wall_seconds": wall,
            "sim_seconds": self.sim_seconds,
            "events": self.events,
            "max_depth": self.max_depth,
            "max_dead": self.max_dead,
            "events_per_second": self.events / wall if wall > 0 else 0.0,
            "wall_per_sim_second": (
                wall / self.sim_seconds if self.sim_seconds > 0 else 0.0
            ),
            "sites": {
                name: {"calls": calls, "wall_seconds": site_wall}
                for name, (calls, site_wall) in sorted(
                    self.sites.items(), key=lambda item: -item[1][1]
                )
            },
        }

    def __repr__(self) -> str:
        return (
            f"<SimProfile events={self.events} wall={self.wall_seconds:.3f}s "
            f"sim={self.sim_seconds:.1f}s max_depth={self.max_depth}>"
        )


class Simulator:
    """A single-threaded discrete-event simulator.

    Time is a float in seconds, starting at 0. Callbacks scheduled for the
    same instant run in scheduling order. The kernel never advances the
    clock past ``until`` when one is given to :meth:`run`.

    ``queue_backend`` selects the event-queue implementation (see
    ``repro.simcore.events``); every backend yields identical event
    ordering, so the choice affects wall time only. ``call_later`` is an
    instance attribute built by the backend: the hot backends fuse the
    delay check and the queue insert into a single call frame.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.call_later(5.0, fired.append, 1)
        >>> sim.run()
        >>> (sim.now, fired)
        (5.0, [1])
    """

    __slots__ = (
        "now",
        "queue_backend",
        "_queue",
        "_running",
        "_stopped",
        "events_processed",
        "profile",
        "call_later",
    )

    #: Schedule ``callback(*args)`` after ``delay`` seconds -> Event.
    call_later: Callable[..., Event]

    def __init__(self, queue_backend: str = DEFAULT_QUEUE_BACKEND) -> None:
        self.now: float = 0.0
        self.queue_backend = resolve_queue_backend(queue_backend)
        self._queue = make_queue(queue_backend)
        self._running = False
        self._stopped = False
        self.events_processed = 0
        # Profiling sink, ``None`` unless enable_profiling() was called.
        # run() checks it exactly once per invocation, so the unprofiled
        # loop carries zero instrumentation.
        self.profile: Optional[SimProfile] = None
        self.call_later = self._queue.make_call_later(self)

    def enable_profiling(self) -> SimProfile:
        """Switch :meth:`run` to the instrumented loop; returns the profile."""
        if self.profile is None:
            self.profile = SimProfile()
        return self.profile

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        # Inverted comparison so NaN (which fails every comparison) is
        # rejected instead of poisoning the queue order.
        if not (time >= self.now):
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self.now!r}"
            )
        return self._queue.push(time, callback, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or the clock hits ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if the queue drained earlier, so repeated ``run(until=...)`` calls
        advance time monotonically. Events sharing a timestamp are fired
        as a batch by the queue's ``drain`` hook, which also maintains
        ``now`` and ``events_processed``.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if self.profile is not None:
            return self._run_profiled(until)
        self._running = True
        self._stopped = False
        try:
            self._queue.drain(self, until)
            if until is not None and until > self.now and not self._stopped:
                self.now = until
        finally:
            self._running = False

    def _run_profiled(self, until: Optional[float] = None) -> None:
        """The instrumented twin of :meth:`run`.

        Kept separate so the unprofiled loop carries zero instrumentation;
        this one pays two ``perf_counter`` reads per event to attribute
        wall time to callback sites (by ``__qualname__``) and to track
        queue depth through the backend-neutral ``depth()``/``_dead``
        surface. It pops one event at a time, which is slower than the
        batched drain but observably identical.
        """
        profile = self.profile
        assert profile is not None
        self._running = True
        self._stopped = False
        queue = self._queue
        pop_due = queue.pop_due
        depth = queue.depth
        # The profiler measures *real* elapsed time per callback site by
        # design; it never feeds simulation state.
        perf = _walltime.perf_counter  # repro-lint: allow[determinism]
        sites = profile.sites
        start_now = self.now
        loop_start = perf()
        try:
            while not self._stopped:
                queue_depth = depth()
                if queue_depth > profile.max_depth:
                    profile.max_depth = queue_depth
                dead = queue._dead
                if dead > profile.max_dead:
                    profile.max_dead = dead
                event = pop_due(until)
                if event is None:
                    break
                self.now = event.time
                self.events_processed += 1
                profile.events += 1
                callback = event.callback
                site = getattr(callback, "__qualname__", None) or type(
                    callback
                ).__name__
                before = perf()
                callback(*event.args)
                elapsed = perf() - before
                entry = sites.get(site)
                if entry is None:
                    sites[site] = [1, elapsed]
                else:
                    entry[0] += 1
                    entry[1] += elapsed
            if until is not None and until > self.now and not self._stopped:
                self.now = until
        finally:
            self._running = False
            profile.wall_seconds += perf() - loop_start
            profile.sim_seconds += self.now - start_now

    def step(self) -> bool:
        """Process a single event. Returns False if the queue was empty."""
        if self._running:
            raise SimulationError("step() is not reentrant")
        event = self._queue.pop()
        if event is None:
            return False
        self._running = True
        try:
            self.now = event.time
            self.events_processed += 1
            event.callback(*event.args)
        finally:
            self._running = False
        return True

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue)

    def queue_stats(self) -> Dict[str, Any]:
        """Backend name plus live/dead/depth counts for the event queue."""
        stats: Dict[str, Any] = self._queue.stats()
        return stats
