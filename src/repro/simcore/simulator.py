"""The simulation kernel: a virtual clock driving an event queue."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simcore.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g., scheduling in the past)."""


class Simulator:
    """A single-threaded discrete-event simulator.

    Time is a float in seconds, starting at 0. Callbacks scheduled for the
    same instant run in scheduling order. The kernel never advances the
    clock past ``until`` when one is given to :meth:`run`.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.call_later(5.0, fired.append, 1)
        >>> sim.run()
        >>> (sim.now, fired)
        (5.0, [1])
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_later(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        # Fast path: valid delays go straight to the queue. This method is
        # the kernel's hottest entry point (every timer, retry, and packet
        # hop), so the error branch is kept off the common path.
        if delay >= 0:
            return self._queue.push(self.now + delay, callback, args)
        raise SimulationError(f"negative delay {delay!r}")

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self.now!r}"
            )
        return self._queue.push(time, callback, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or the clock hits ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if the queue drained earlier, so repeated ``run(until=...)`` calls
        advance time monotonically.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        pop_due = self._queue.pop_due
        try:
            while not self._stopped:
                event = pop_due(until)
                if event is None:
                    break
                self.now = event.time
                self.events_processed += 1
                event.callback(*event.args)
            if until is not None and until > self.now and not self._stopped:
                self.now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Process a single event. Returns False if the queue was empty."""
        if self._running:
            raise SimulationError("step() is not reentrant")
        event = self._queue.pop()
        if event is None:
            return False
        self._running = True
        try:
            self.now = event.time
            self.events_processed += 1
            event.callback(*event.args)
        finally:
            self._running = False
        return True

    def stop(self) -> None:
        """Stop :meth:`run` after the current callback returns."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue)
