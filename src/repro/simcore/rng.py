"""Deterministic named random streams.

Every stochastic decision in the library draws from a named stream derived
from one master seed. Distinct names give statistically independent
streams, and adding a new consumer never perturbs the draws seen by
existing ones — the property that keeps experiment results stable across
code evolution.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent ``random.Random`` instances by name."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(seed)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory with its own independent namespace."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork:{name}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
