/* Optional compiled event-queue backend for the simulation kernel.
 *
 * This is the "native" backend registered in repro.simcore.events when the
 * shared object is present (see scripts/build_native_kernel.py). It is a
 * straight C transliteration of the pure-Python heap reference: a binary
 * heap of (time, seq) keyed entries with lazy deletion of cancelled events.
 * The ordering contract is identical to every other backend -- (time, seq)
 * total order, seq assigned from 1 in push order -- so the cross-backend
 * differential test can replay the same traces against it.
 *
 * The win over the pure backends is not the data structure (the Python heap
 * already runs its sifts in C); it is the removal of interpreter frames:
 * push, pop and the whole drain loop run without entering the bytecode
 * interpreter, and the scheduler returned by make_call_later() is a
 * vectorcall object, so a call_later() during a run costs one C call.
 *
 * Reference-ownership notes:
 *   - Entries in the heap own a reference to their event.
 *   - event->queue is a BORROWED pointer. Every event with queue != NULL is
 *     reachable from that queue's heap, and the queue NULLs the pointer
 *     whenever it releases an entry (pop, drain, clear, dealloc), so the
 *     pointer can never dangle. This avoids an Event<->Queue refcycle.
 *   - Both types still participate in GC because callbacks routinely close
 *     over objects that own the queue (resolver -> sim -> queue -> event ->
 *     callback -> resolver).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>

typedef struct CQueueObject CQueue;

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *callback; /* owned; NULL once cancelled */
    PyObject *args;     /* owned tuple */
    PyObject *span;     /* owned; NULL means None */
    char cancelled;
    CQueue *queue;      /* borrowed; NULL once detached (fired/cancelled) */
} CEvent;

typedef struct {
    double time;
    long long seq;
    CEvent *event; /* owned */
} Entry;

struct CQueueObject {
    PyObject_HEAD
    Entry *heap;
    Py_ssize_t size;
    Py_ssize_t capacity;
    long long seq_counter;
    Py_ssize_t live;
    Py_ssize_t dead;
};

static PyTypeObject CEvent_Type;
static PyTypeObject CQueue_Type;
static PyTypeObject CSched_Type;

static PyObject *empty_tuple;
static PyObject *s_now;
static PyObject *s_stopped;
static PyObject *s_events_processed;
static PyObject *s_emit;
static PyObject *s_cancelled_word;

/* ------------------------------------------------------------------ */
/* Event                                                              */
/* ------------------------------------------------------------------ */

static int
event_emit_cancel_span(CEvent *self)
{
    /* Fire the "cancelled" span terminator, mirroring Event.cancel in
     * events.py: tracer.emit(trace_id, "cancelled", site). */
    PyObject *span = self->span;
    PyObject *tracer, *trace_id, *site, *meth, *result;
    if (span == NULL || span == Py_None)
        return 0;
    self->span = NULL;
    if (!PyTuple_Check(span) || PyTuple_GET_SIZE(span) != 3) {
        Py_DECREF(span);
        PyErr_SetString(PyExc_TypeError, "event span must be a 3-tuple");
        return -1;
    }
    tracer = PyTuple_GET_ITEM(span, 0);
    trace_id = PyTuple_GET_ITEM(span, 1);
    site = PyTuple_GET_ITEM(span, 2);
    meth = PyObject_GetAttr(tracer, s_emit);
    if (meth == NULL) {
        Py_DECREF(span);
        return -1;
    }
    result = PyObject_CallFunctionObjArgs(
        meth, trace_id, s_cancelled_word, site, NULL);
    Py_DECREF(meth);
    Py_DECREF(span);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

static PyObject *
event_cancel(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->cancelled) {
        CQueue *queue = self->queue;
        self->cancelled = 1;
        Py_CLEAR(self->callback);
        Py_INCREF(empty_tuple);
        Py_XSETREF(self->args, empty_tuple);
        if (queue != NULL) {
            queue->live -= 1;
            queue->dead += 1;
            self->queue = NULL;
            if (event_emit_cancel_span(self) < 0)
                return NULL;
        }
        else {
            Py_CLEAR(self->span);
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
event_get_callback(CEvent *self, void *Py_UNUSED(closure))
{
    PyObject *value = self->callback ? self->callback : Py_None;
    Py_INCREF(value);
    return value;
}

static PyObject *
event_get_args(CEvent *self, void *Py_UNUSED(closure))
{
    PyObject *value = self->args ? self->args : empty_tuple;
    Py_INCREF(value);
    return value;
}

static PyObject *
event_get_span(CEvent *self, void *Py_UNUSED(closure))
{
    PyObject *value = self->span ? self->span : Py_None;
    Py_INCREF(value);
    return value;
}

static int
event_set_span(CEvent *self, PyObject *value, void *Py_UNUSED(closure))
{
    if (value == NULL || value == Py_None) {
        Py_CLEAR(self->span);
        return 0;
    }
    Py_INCREF(value);
    Py_XSETREF(self->span, value);
    return 0;
}

static PyObject *
event_repr(CEvent *self)
{
    char buffer[64];
    PyOS_snprintf(buffer, sizeof(buffer), "%.6f", self->time);
    return PyUnicode_FromFormat(
        "<Event t=%s seq=%lld %s>", buffer, self->seq,
        self->cancelled ? "cancelled" : "pending");
}

static int
event_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT(self->span);
    return 0;
}

static int
event_clear(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->span);
    return 0;
}

static void
event_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    (void)event_clear(self);
    PyObject_GC_Del(self);
}

static PyMemberDef event_members[] = {
    {"time", T_DOUBLE, offsetof(CEvent, time), READONLY,
     "Absolute simulated firing time."},
    {"seq", T_LONGLONG, offsetof(CEvent, seq), READONLY,
     "Scheduling sequence number (ties broken FIFO)."},
    {"cancelled", T_BOOL, offsetof(CEvent, cancelled), READONLY,
     "True once cancel() has run."},
    {NULL},
};

static PyGetSetDef event_getset[] = {
    {"callback", (getter)event_get_callback, NULL,
     "Scheduled callable, or None once cancelled.", NULL},
    {"args", (getter)event_get_args, NULL,
     "Positional arguments for the callback.", NULL},
    {"span", (getter)event_get_span, (setter)event_set_span,
     "Optional (tracer, trace_id, site) attached by traced timers.", NULL},
    {NULL},
};

static PyMethodDef event_methods[] = {
    {"cancel", (PyCFunction)event_cancel, METH_NOARGS,
     "Prevent the event from firing. Idempotent."},
    {NULL},
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simcore._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)event_dealloc,
    .tp_repr = (reprfunc)event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback, cancellable until it fires.",
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_methods = event_methods,
    .tp_members = event_members,
    .tp_getset = event_getset,
};

/* ------------------------------------------------------------------ */
/* Queue internals                                                    */
/* ------------------------------------------------------------------ */

static inline int
entry_lt(const Entry *a, const Entry *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    return a->seq < b->seq;
}

static int
queue_grow(CQueue *self)
{
    Py_ssize_t new_cap = self->capacity ? self->capacity * 2 : 256;
    Entry *heap = PyMem_Realloc(self->heap, (size_t)new_cap * sizeof(Entry));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->capacity = new_cap;
    return 0;
}

static void
queue_sift_up(Entry *heap, Py_ssize_t pos)
{
    Entry item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(&item, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
}

static void
queue_sift_down(Entry *heap, Py_ssize_t size, Py_ssize_t pos)
{
    Entry item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && entry_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!entry_lt(&heap[child], &item))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = item;
}

/* Remove the root entry. The caller takes over the heap's reference. */
static CEvent *
queue_extract_root(CQueue *self)
{
    CEvent *event = self->heap[0].event;
    self->size -= 1;
    if (self->size > 0) {
        self->heap[0] = self->heap[self->size];
        queue_sift_down(self->heap, self->size, 0);
    }
    return event;
}

/* Drop cancelled entries off the root. Returns the root entry, or NULL
 * when the queue is empty (no Python error). */
static Entry *
queue_clean_root(CQueue *self)
{
    while (self->size > 0) {
        Entry *root = &self->heap[0];
        if (!root->event->cancelled)
            return root;
        CEvent *event = queue_extract_root(self);
        self->dead -= 1;
        Py_DECREF(event);
    }
    return NULL;
}

/* Core push. Steals a reference to `args`; returns a NEW reference to the
 * event (the heap keeps its own). */
static PyObject *
queue_push_internal(CQueue *self, double time, PyObject *callback,
                    PyObject *args)
{
    CEvent *event;
    Entry *slot;
    if (self->size == self->capacity && queue_grow(self) < 0) {
        Py_DECREF(args);
        return NULL;
    }
    event = PyObject_GC_New(CEvent, &CEvent_Type);
    if (event == NULL) {
        Py_DECREF(args);
        return NULL;
    }
    self->seq_counter += 1;
    event->time = time;
    event->seq = self->seq_counter;
    Py_INCREF(callback);
    event->callback = callback;
    event->args = args;
    event->span = NULL;
    event->cancelled = 0;
    event->queue = self;
    PyObject_GC_Track(event);

    slot = &self->heap[self->size];
    slot->time = time;
    slot->seq = event->seq;
    Py_INCREF(event);
    slot->event = event;
    queue_sift_up(self->heap, self->size);
    self->size += 1;
    self->live += 1;
    return (PyObject *)event;
}

/* ------------------------------------------------------------------ */
/* Queue methods                                                      */
/* ------------------------------------------------------------------ */

static PyObject *
queue_push(CQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    double time;
    PyObject *call_args;
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "push expects (time, callback[, args])");
        return NULL;
    }
    time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    if (nargs == 3) {
        if (!PyTuple_Check(args[2])) {
            PyErr_SetString(PyExc_TypeError, "args must be a tuple");
            return NULL;
        }
        call_args = args[2];
    }
    else {
        call_args = empty_tuple;
    }
    Py_INCREF(call_args);
    return queue_push_internal(self, time, args[1], call_args);
}

static PyObject *
queue_pop(CQueue *self, PyObject *Py_UNUSED(ignored))
{
    Entry *root = queue_clean_root(self);
    CEvent *event;
    if (root == NULL)
        Py_RETURN_NONE;
    event = queue_extract_root(self);
    self->live -= 1;
    event->queue = NULL;
    return (PyObject *)event; /* transfer the heap's reference */
}

static PyObject *
queue_pop_due(CQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *limit = (nargs >= 1) ? args[0] : Py_None;
    Entry *root;
    CEvent *event;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "pop_due expects at most one arg");
        return NULL;
    }
    root = queue_clean_root(self);
    if (root == NULL)
        Py_RETURN_NONE;
    if (limit != Py_None) {
        double bound = PyFloat_AsDouble(limit);
        if (bound == -1.0 && PyErr_Occurred())
            return NULL;
        if (root->time > bound)
            Py_RETURN_NONE;
    }
    event = queue_extract_root(self);
    self->live -= 1;
    event->queue = NULL;
    return (PyObject *)event;
}

static PyObject *
queue_peek_time(CQueue *self, PyObject *Py_UNUSED(ignored))
{
    Entry *root = queue_clean_root(self);
    if (root == NULL)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(root->time);
}

/* Add `fired` to sim.events_processed, preserving any pending exception. */
static int
drain_flush_count(PyObject *sim, long long fired)
{
    PyObject *exc_type, *exc_value, *exc_tb;
    PyObject *current, *updated;
    int status = -1;
    if (fired == 0)
        return 0;
    PyErr_Fetch(&exc_type, &exc_value, &exc_tb);
    current = PyObject_GetAttr(sim, s_events_processed);
    if (current != NULL) {
        PyObject *delta = PyLong_FromLongLong(fired);
        if (delta != NULL) {
            updated = PyNumber_Add(current, delta);
            Py_DECREF(delta);
            if (updated != NULL) {
                status = PyObject_SetAttr(sim, s_events_processed, updated);
                Py_DECREF(updated);
            }
        }
        Py_DECREF(current);
    }
    if (exc_type != NULL) {
        /* The callback's exception outranks any bookkeeping failure. */
        if (status < 0)
            PyErr_Clear();
        PyErr_Restore(exc_type, exc_value, exc_tb);
        return -1;
    }
    return status;
}

static PyObject *
queue_drain(CQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    PyObject *sim, *until;
    double bound = 0.0;
    int bounded;
    long long fired = 0;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "drain expects (sim, until)");
        return NULL;
    }
    sim = args[0];
    until = args[1];
    bounded = (until != Py_None);
    if (bounded) {
        bound = PyFloat_AsDouble(until);
        if (bound == -1.0 && PyErr_Occurred())
            return NULL;
    }
    for (;;) {
        Entry *root = queue_clean_root(self);
        CEvent *event;
        PyObject *now_obj, *result, *stopped;
        int truthy;
        if (root == NULL)
            break;
        if (bounded && root->time > bound)
            break;
        event = queue_extract_root(self);
        self->live -= 1;
        event->queue = NULL;

        now_obj = PyFloat_FromDouble(event->time);
        if (now_obj == NULL)
            goto error_with_event;
        if (PyObject_SetAttr(sim, s_now, now_obj) < 0) {
            Py_DECREF(now_obj);
            goto error_with_event;
        }
        Py_DECREF(now_obj);
        fired += 1;
        result = PyObject_Call(event->callback, event->args, NULL);
        Py_DECREF(event);
        if (result == NULL)
            goto error;
        Py_DECREF(result);

        stopped = PyObject_GetAttr(sim, s_stopped);
        if (stopped == NULL)
            goto error;
        truthy = PyObject_IsTrue(stopped);
        Py_DECREF(stopped);
        if (truthy < 0)
            goto error;
        if (truthy)
            break;
        continue;

    error_with_event:
        Py_DECREF(event);
        goto error;
    }
    if (drain_flush_count(sim, fired) < 0)
        return NULL;
    Py_RETURN_NONE;

error:
    (void)drain_flush_count(sim, fired);
    return NULL;
}

static PyObject *
queue_depth(CQueue *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(self->live + self->dead);
}

static Py_ssize_t
queue_length(CQueue *self)
{
    return self->live;
}

static PyObject *queue_make_call_later(CQueue *self, PyObject *const *args,
                                       Py_ssize_t nargs);

static int
cqueue_traverse(CQueue *self, visitproc visit, void *arg)
{
    Py_ssize_t index;
    for (index = 0; index < self->size; index++)
        Py_VISIT(self->heap[index].event);
    return 0;
}

static int
cqueue_clear(CQueue *self)
{
    Py_ssize_t index, size = self->size;
    self->size = 0;
    self->live = 0;
    self->dead = 0;
    for (index = 0; index < size; index++) {
        CEvent *event = self->heap[index].event;
        event->queue = NULL;
        Py_DECREF(event);
    }
    return 0;
}

static void
cqueue_dealloc(CQueue *self)
{
    PyObject_GC_UnTrack(self);
    (void)cqueue_clear(self);
    PyMem_Free(self->heap);
    PyObject_GC_Del(self);
}

static PyObject *
cqueue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CQueue *self = (CQueue *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->size = 0;
    self->capacity = 0;
    self->seq_counter = 0;
    self->live = 0;
    self->dead = 0;
    return (PyObject *)self;
}

static PyMemberDef queue_members[] = {
    {"_live", T_PYSSIZET, offsetof(CQueue, live), READONLY,
     "Pending non-cancelled events."},
    {"_dead", T_PYSSIZET, offsetof(CQueue, dead), READONLY,
     "Cancelled events awaiting lazy removal."},
    {NULL},
};

static PySequenceMethods queue_as_sequence = {
    .sq_length = (lenfunc)queue_length,
};

static PyMethodDef queue_methods[] = {
    {"push", (PyCFunction)queue_push, METH_FASTCALL,
     "push(time, callback, args=()) -> Event"},
    {"pop", (PyCFunction)queue_pop, METH_NOARGS,
     "Remove and return the earliest pending event, or None."},
    {"pop_due", (PyCFunction)queue_pop_due, METH_FASTCALL,
     "pop_due(limit=None) -> Event | None"},
    {"peek_time", (PyCFunction)queue_peek_time, METH_NOARGS,
     "Time of the earliest pending event, or None."},
    {"depth", (PyCFunction)queue_depth, METH_NOARGS,
     "Stored entries including cancelled ones awaiting removal."},
    {"drain", (PyCFunction)queue_drain, METH_FASTCALL,
     "drain(sim, until) -> None: fire due events, updating sim state."},
    {"make_call_later", (PyCFunction)queue_make_call_later, METH_FASTCALL,
     "make_call_later(sim, error_type) -> callable(delay, cb, *args)"},
    {NULL},
};

static PyTypeObject CQueue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simcore._ckernel.EventHeap",
    .tp_basicsize = sizeof(CQueue),
    .tp_dealloc = (destructor)cqueue_dealloc,
    .tp_as_sequence = &queue_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Binary-heap event queue with lazy deletion (compiled).",
    .tp_traverse = (traverseproc)cqueue_traverse,
    .tp_clear = (inquiry)cqueue_clear,
    .tp_methods = queue_methods,
    .tp_members = queue_members,
    .tp_new = cqueue_new,
};

/* ------------------------------------------------------------------ */
/* Scheduler: the vectorcall object returned by make_call_later        */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    CQueue *queue;   /* owned */
    PyObject *sim;   /* owned */
    PyObject *error; /* owned; SimulationError */
} CSched;

static PyObject *
sched_vectorcall(CSched *self, PyObject *const *args, size_t nargsf,
                 PyObject *kwnames)
{
    Py_ssize_t nargs = PyVectorcall_NARGS(nargsf);
    double delay, now;
    PyObject *now_obj, *call_args;
    Py_ssize_t index, extra;
    if (kwnames != NULL && PyTuple_GET_SIZE(kwnames) != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "call_later takes no keyword arguments");
        return NULL;
    }
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "call_later expects (delay, callback, *args)");
        return NULL;
    }
    delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (!(delay >= 0.0)) {
        PyErr_Format(self->error, "negative delay %R", args[0]);
        return NULL;
    }
    now_obj = PyObject_GetAttr(self->sim, s_now);
    if (now_obj == NULL)
        return NULL;
    now = PyFloat_AsDouble(now_obj);
    Py_DECREF(now_obj);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    extra = nargs - 2;
    if (extra == 0) {
        call_args = empty_tuple;
        Py_INCREF(call_args);
    }
    else {
        call_args = PyTuple_New(extra);
        if (call_args == NULL)
            return NULL;
        for (index = 0; index < extra; index++) {
            PyObject *item = args[2 + index];
            Py_INCREF(item);
            PyTuple_SET_ITEM(call_args, index, item);
        }
    }
    return queue_push_internal(self->queue, now + delay, args[1], call_args);
}

static int
sched_traverse(CSched *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->queue);
    Py_VISIT(self->sim);
    Py_VISIT(self->error);
    return 0;
}

static int
sched_clear(CSched *self)
{
    Py_CLEAR(self->queue);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->error);
    return 0;
}

static void
sched_dealloc(CSched *self)
{
    PyObject_GC_UnTrack(self);
    (void)sched_clear(self);
    PyObject_GC_Del(self);
}

static PyTypeObject CSched_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simcore._ckernel.Scheduler",
    .tp_basicsize = sizeof(CSched),
    .tp_dealloc = (destructor)sched_dealloc,
    .tp_call = PyVectorcall_Call,
    .tp_vectorcall_offset = offsetof(CSched, vectorcall),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
        | Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_doc = "Fused call_later(delay, callback, *args) for one simulator.",
    .tp_traverse = (traverseproc)sched_traverse,
    .tp_clear = (inquiry)sched_clear,
};

static PyObject *
queue_make_call_later(CQueue *self, PyObject *const *args, Py_ssize_t nargs)
{
    CSched *sched;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "make_call_later expects (sim, error_type)");
        return NULL;
    }
    sched = PyObject_GC_New(CSched, &CSched_Type);
    if (sched == NULL)
        return NULL;
    sched->vectorcall = (vectorcallfunc)sched_vectorcall;
    Py_INCREF(self);
    sched->queue = self;
    Py_INCREF(args[0]);
    sched->sim = args[0];
    Py_INCREF(args[1]);
    sched->error = args[1];
    PyObject_GC_Track(sched);
    return (PyObject *)sched;
}

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.simcore._ckernel",
    .m_doc = "Compiled event-queue backend (optional; see events.py).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *module = NULL;
    empty_tuple = PyTuple_New(0);
    s_now = PyUnicode_InternFromString("now");
    s_stopped = PyUnicode_InternFromString("_stopped");
    s_events_processed = PyUnicode_InternFromString("events_processed");
    s_emit = PyUnicode_InternFromString("emit");
    s_cancelled_word = PyUnicode_InternFromString("cancelled");
    if (empty_tuple == NULL || s_now == NULL || s_stopped == NULL
        || s_events_processed == NULL || s_emit == NULL
        || s_cancelled_word == NULL)
        return NULL;
    if (PyType_Ready(&CEvent_Type) < 0 || PyType_Ready(&CQueue_Type) < 0
        || PyType_Ready(&CSched_Type) < 0)
        return NULL;
    module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CEvent_Type);
    if (PyModule_AddObject(module, "Event", (PyObject *)&CEvent_Type) < 0)
        goto fail;
    Py_INCREF(&CQueue_Type);
    if (PyModule_AddObject(module, "EventHeap", (PyObject *)&CQueue_Type) < 0)
        goto fail;
    return module;
fail:
    Py_DECREF(module);
    return NULL;
}
