"""Generator-based processes and signals on top of the simulator.

A :class:`Process` wraps a generator that yields *wait commands*:

* ``Timeout(dt)`` — resume after ``dt`` simulated seconds (resumes with
  ``None``).
* a :class:`Signal` — resume when the signal fires, with the fired value.
* ``AnyOf(...)`` — resume when the first of several commands completes,
  with an ``(index, value)`` pair; the losers are cancelled.

This is the minimal process algebra the resolver and client loops need:
periodic probing, query/timeout races, and staged retries.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.simcore.simulator import Simulator


class Timeout:
    """Wait command: sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay!r}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay!r})"


class Signal:
    """A one-shot synchronization point carrying a value.

    A signal may be fired at most once; firing resumes every process
    waiting on it (and remembers the value for late waiters).
    """

    __slots__ = ("sim", "fired", "value", "_waiters")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all waiters in FIFO order."""
        if self.fired:
            raise RuntimeError("signal already fired")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Wake via the event queue so resumption order with other
            # same-instant events stays deterministic.
            self.sim.call_later(0.0, waiter, value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` to run when the signal fires."""
        if self.fired:
            self.sim.call_later(0.0, callback, self.value)
        else:
            self._waiters.append(callback)

    def remove_waiter(self, callback: Callable[[Any], None]) -> None:
        """Deregister a waiter; no-op if absent or already fired."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass


class AnyOf:
    """Wait command: race several commands, resume with ``(index, value)``."""

    __slots__ = ("commands",)

    def __init__(self, *commands: Any) -> None:
        if not commands:
            raise ValueError("AnyOf needs at least one command")
        self.commands = commands


class Process:
    """Drives a generator coroutine against the simulator clock.

    The generator runs immediately on construction up to its first yield.
    When the generator returns, :attr:`done` becomes True, :attr:`result`
    holds its return value, and :attr:`finished` (a :class:`Signal`) fires
    with that value so other processes can join on completion.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.name = name
        self._gen = generator
        self.done = False
        self.result: Any = None
        self.finished = Signal(sim)
        self._advance(None)

    def _advance(self, value: Any) -> None:
        if self.done:
            return
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.finished.fire(stop.value)
            return
        self._arm(command)

    def _arm(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self.sim.call_later(command.delay, self._advance, None)
        elif isinstance(command, Signal):
            command.add_waiter(self._advance)
        elif isinstance(command, AnyOf):
            self._arm_race(command.commands)
        else:
            raise TypeError(f"process {self.name!r} yielded {command!r}")

    def _arm_race(self, commands: Iterable[Any]) -> None:
        settled = False
        cleanups: List[Callable[[], None]] = []

        def settle(index: int, value: Any) -> None:
            nonlocal settled
            if settled:
                return
            settled = True
            for cleanup in cleanups:
                cleanup()
            self._advance((index, value))

        for index, command in enumerate(commands):
            if isinstance(command, Timeout):
                event = self.sim.call_later(
                    command.delay, settle, index, None
                )
                cleanups.append(event.cancel)
            elif isinstance(command, Signal):
                def waiter(value: Any, index: int = index) -> None:
                    settle(index, value)

                command.add_waiter(waiter)

                def forget(
                    command: Signal = command,
                    waiter: Callable[[Any], None] = waiter,
                ) -> None:
                    command.remove_waiter(waiter)

                cleanups.append(forget)
            else:
                raise TypeError(
                    f"AnyOf in process {self.name!r} got {command!r}"
                )


def spawn(
    sim: Simulator,
    generator: Generator[Any, Any, Any],
    name: Optional[str] = None,
) -> Process:
    """Convenience wrapper: start ``generator`` as a named process."""
    return Process(sim, generator, name=name or getattr(generator, "__name__", "process"))
