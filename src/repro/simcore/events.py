"""Event queue primitives for the discrete-event simulator.

Events are ordered by (time, sequence number) so simultaneous events run in
the deterministic order they were scheduled, which keeps whole simulations
reproducible from a single seed.

The heap stores ``(time, seq, event)`` tuples rather than the events
themselves: tuple comparison is handled entirely in C, so the kernel never
pays for a Python-level ``__lt__`` call per sift step. Retry-heavy DDoS
runs push and pop millions of events, which makes comparison cost the
dominant term of the hot loop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback, cancellable until it fires.

    Instances are returned by :meth:`repro.simcore.simulator.Simulator.at`
    and :meth:`~repro.simcore.simulator.Simulator.call_later`; user code
    only ever needs :meth:`cancel` and the read-only attributes.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "span", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Optional (tracer, trace_id, site) set by traced timers.
        self.span: Optional[Tuple[Any, Any, Any]] = None
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent.

        Also drops the ``callback``/``args`` references: a cancelled event
        stays in the heap until popped (lazy deletion), and in long
        retry-heavy runs the pending closures would otherwise pin resolver
        state long after the timers were abandoned.

        When a traced timer is cancelled before firing, its span context
        (attached by the scheduling component) emits a ``cancelled``
        terminator so the trace does not leak an open retry/timeout span.
        Cancel-after-fire must stay silent, so the emission only happens
        while the event is still queued.
        """
        if not self.cancelled:
            self.cancelled = True
            self.callback = None  # type: ignore[assignment]
            self.args = ()
            if self._queue is not None:
                self._queue._live -= 1
                self._queue = None
                span = self.span
                if span is not None:
                    self.span = None
                    tracer, trace_id, site = span
                    tracer.emit(trace_id, "cancelled", site)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class EventQueue:
    """Priority queue of :class:`Event` objects.

    Cancelled events stay in the heap and are skipped on pop; this is the
    standard lazy-deletion pattern and keeps :meth:`Event.cancel` O(1).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, "Event"]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        seq = next(self._counter)
        event = Event(time, seq, callback, args, queue=self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                continue
            self._live -= 1
            # Fired events must not decrement the live count again if a
            # late cancel() arrives, so detach them from the queue.
            event._queue = None
            return event
        return None

    def pop_due(self, limit: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest pending event if it is due at/before ``limit``.

        Returns ``None`` when the queue is drained or the next event lies
        beyond ``limit`` (leaving it scheduled). This fuses the
        peek-then-pop pair the run loop would otherwise perform, halving
        heap traffic in the kernel hot path.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if limit is not None and head[0] > limit:
                return None
            heapq.heappop(heap)
            self._live -= 1
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event without removing it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]
