"""Event queue backends for the discrete-event simulator.

Events are ordered by ``(time, seq)`` so simultaneous events run in the
deterministic order they were scheduled, which keeps whole simulations
reproducible from a single seed. Every backend stores ``(time, seq, event)``
tuples (or the C equivalent) rather than events themselves: tuple comparison
is handled entirely in C, so no backend ever pays for a Python-level
``__lt__`` per comparison. ``Event`` therefore deliberately does NOT define
``__lt__``; see ``tests/test_simcore_events.py`` for the regression test
pinning that invariant.

The queue is pluggable behind one protocol (``push`` / ``pop`` /
``pop_due`` / ``peek_time`` / ``depth`` / ``__len__`` plus the run-loop
hooks ``drain`` and ``make_call_later``). Four backends implement it:

``heap``
    The PR 1 binary heap, kept as the always-correct reference. Simple,
    O(log n) per operation, no assumptions about the time distribution.

``wheel``
    A hierarchical timer wheel: ticks of 1/1024 s (a power of two, so the
    tick of a float time is exact), an 8192-slot inner wheel (~8 s), a
    4096-slot outer wheel (~9.1 h) and an overflow heap beyond that.
    Push and cancel are O(1); expiry sorts one slot at a time and serves
    it as a batch. The wheel state lives in closure cells rather than
    instance attributes -- in CPython, ``LOAD_DEREF`` is several times
    cheaper than ``LOAD_ATTR``/``STORE_ATTR``, and the hot path touches
    that state on every push.

``calendar``
    A calendar queue: buckets of adaptive width indexed by "day"
    (``int(time / width)``), a day-heap to find the next occupied bucket,
    and spread-on-overflow resizing. Wins when timestamps are spread
    evenly at a stable density; kept mainly as an independently-derived
    cross-check for the differential ordering test.

``native``
    A compiled C transliteration of the heap reference (see
    ``_ckernel.c``), registered only when the shared object has been
    built (``scripts/build_native_kernel.py``). Same ordering contract,
    no interpreter frames in the hot loop.

All backends produce *identical* event ordering -- ``(time, seq)`` total
order, FIFO within an instant, cancel-before-fire span terminators --
verified by ``tests/test_simcore_queue_differential.py``, which replays
seeded push/cancel/drain traces against the heap reference.
"""

from __future__ import annotations

import heapq
import importlib
from bisect import insort
from types import ModuleType
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    cast,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.simcore.simulator import Simulator


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g., scheduling in the past).

    Defined here (not in ``simulator``) so queue backends can raise it
    from their fused schedulers; ``repro.simcore.simulator`` re-exports
    it, which remains the canonical import site for user code.
    """


_ckernel: Optional[ModuleType]
try:  # The compiled backend is optional; see scripts/build_native_kernel.py.
    _ckernel = importlib.import_module("repro.simcore._ckernel")
except ImportError:  # pragma: no cover - depends on the build environment
    _ckernel = None


class Event:
    """A scheduled callback, cancellable until it fires.

    Instances are returned by :meth:`repro.simcore.simulator.Simulator.at`
    and :meth:`~repro.simcore.simulator.Simulator.call_later`; user code
    only ever needs :meth:`cancel` and the read-only attributes. The
    ``native`` backend returns a C twin with the same interface.

    Note the deliberate absence of ``__lt__``: events are never compared,
    because every backend orders ``(time, seq, event)`` tuples whose
    ``seq`` is unique. A Python-level comparison hook would silently turn
    every C-speed sift/sort comparison into an interpreter call.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "span", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        queue: Optional["BaseEventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Optional (tracer, trace_id, site) set by traced timers.
        self.span: Optional[Tuple[Any, Any, Any]] = None
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent.

        Also drops the ``callback``/``args`` references: a cancelled event
        stays queued until served (lazy deletion), and in long retry-heavy
        runs the pending closures would otherwise pin resolver state long
        after the timers were abandoned.

        When a traced timer is cancelled before firing, its span context
        (attached by the scheduling component) emits a ``cancelled``
        terminator so the trace does not leak an open retry/timeout span.
        Cancel-after-fire must stay silent, so the emission only happens
        while the event is still queued.
        """
        if not self.cancelled:
            self.cancelled = True
            self.callback = None  # type: ignore[assignment]
            self.args = ()
            queue = self._queue
            if queue is not None:
                queue._live -= 1
                queue._dead += 1
                self._queue = None
                span = self.span
                if span is not None:
                    self.span = None
                    tracer, trace_id, site = span
                    tracer.emit(trace_id, "cancelled", site)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class BaseEventQueue:
    """Shared accounting and generic run-loop hooks for queue backends.

    ``_live`` counts pending non-cancelled events; ``_dead`` counts
    cancelled events still stored awaiting lazy removal. ``Event.cancel``
    moves one from live to dead; serving code decrements whichever side
    it consumes. ``depth()`` (live + dead) is what the profiler tracks,
    making lazy-deletion bloat observable.
    """

    __slots__ = ("_live", "_dead")

    backend = "abstract"

    def __init__(self) -> None:
        self._live = 0
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def depth(self) -> int:
        """Stored entries, including cancelled ones awaiting removal."""
        return self._live + self._dead

    def stats(self) -> Dict[str, Any]:
        """Plain-data queue statistics (JSON-friendly)."""
        return {
            "backend": self.backend,
            "live": self._live,
            "dead": self._dead,
            "depth": self._live + self._dead,
        }

    # -- protocol methods implemented by each backend -------------------
    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> Event:
        raise NotImplementedError

    def pop(self) -> Optional[Event]:
        raise NotImplementedError

    def pop_due(self, limit: Optional[float] = None) -> Optional[Event]:
        raise NotImplementedError

    def peek_time(self) -> Optional[float]:
        raise NotImplementedError

    # -- run-loop hooks -------------------------------------------------
    def drain(self, sim: "Simulator", until: Optional[float]) -> None:
        """Fire every due event, maintaining ``sim.now``/``events_processed``.

        This generic loop is the reference semantics for the hook: pop one
        due event at a time, advance the clock, fire, honor ``sim.stop()``
        after the current callback, and count the event even when its
        callback raises. Backends may override it with a batched loop, but
        must preserve exactly this observable behavior.
        """
        fired = 0
        pop_due = self.pop_due
        try:
            while True:
                event = pop_due(until)
                if event is None:
                    break
                sim.now = event.time
                fired += 1
                event.callback(*event.args)
                if sim._stopped:
                    break
        finally:
            sim.events_processed += fired

    def make_call_later(self, sim: "Simulator") -> Callable[..., Event]:
        """Build the simulator's ``call_later`` entry point.

        Returned as a closure so backends can fuse scheduling into a
        single call frame; this generic version simply validates the
        delay and pushes.
        """
        push = self.push

        def call_later(
            delay: float, callback: Callable[..., Any], *args: Any
        ) -> Event:
            """Schedule ``callback(*args)`` after ``delay`` seconds."""
            # Fast path: valid delays go straight to the queue. The
            # comparison is False for NaN, so NaN delays take the error
            # branch too.
            if delay >= 0:
                return push(sim.now + delay, callback, args)
            raise SimulationError(f"negative delay {delay!r}")

        return call_later


class EventQueue(BaseEventQueue):
    """Binary-heap backend: the PR 1 kernel, kept as the reference.

    Cancelled events stay in the heap and are skipped on pop; this is the
    standard lazy-deletion pattern and keeps :meth:`Event.cancel` O(1).
    """

    __slots__ = ("_heap", "_seq")

    backend = "heap"

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        self._seq += 1
        seq = self._seq
        event = Event(time, seq, callback, args, queue=self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            # Fired events must not decrement the live count again if a
            # late cancel() arrives, so detach them from the queue.
            event._queue = None
            return event
        return None

    def pop_due(self, limit: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest pending event if it is due at/before ``limit``.

        Returns ``None`` when the queue is drained or the next event lies
        beyond ``limit`` (leaving it scheduled). This fuses the
        peek-then-pop pair the run loop would otherwise perform, halving
        heap traffic in the kernel hot path.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if limit is not None and head[0] > limit:
                return None
            heapq.heappop(heap)
            self._live -= 1
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event without removing it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]


# ----------------------------------------------------------------------
# Timer wheel
# ----------------------------------------------------------------------

# One tick is 2**-10 s: multiplying a float time by 1024.0 is exact, so
# int(time * _TICK_INV) is a monotone, deterministic tick mapping.
_TICK_INV = 1024.0
_L0_BITS = 13  # inner wheel: 8192 slots == 8 s horizon
_L1_BITS = 12  # outer wheel: 4096 windows == ~9.1 h horizon
_W0 = 1 << _L0_BITS
_W1 = 1 << _L1_BITS
_M0 = _W0 - 1
_M1 = _W1 - 1
_L01_BITS = _L0_BITS + _L1_BITS

_new_event = object.__new__


class TimerWheelEventQueue(BaseEventQueue):
    """Hierarchical timer wheel backend.

    The fastest pure-Python backend for the simulator's workload
    (overwhelmingly short fixed-delay timers: retries, timeouts, packet
    hops, attacker chains). ``push`` appends to a slot in O(1); serving
    sorts one slot at a time and fires it as a batch without per-event
    queue round-trips.

    The mutable wheel state lives in closure cells built by
    :func:`_build_wheel`; the bound closures are stored on private
    instance attributes and exposed through thin protocol methods. Only
    ``make_call_later``'s product is truly hot, and it runs entirely on
    cell variables.

    Frontier/ordering invariants (load-bearing, also exercised by the
    differential test):

    * ``frontier`` is the next unserved tick; pushes at/after it index a
      wheel slot, pushes before it merge into the partially-served active
      slot with ``insort(active, entry, lo=apos)``. A merged entry always
      lands at/after the serve cursor because the active list's served
      prefix only holds entries that sort strictly earlier.
    * Slot lists receive entries in ``seq`` order, and cascades/refills
      preserve that, so ``list.sort`` (stable, C) yields exact
      ``(time, seq)`` order within a slot.
    """

    __slots__ = (
        "_push_fn",
        "_pop_due_fn",
        "_peek_fn",
        "_drain_fn",
        "_sched_fn",
    )

    backend = "wheel"

    _push_fn: Callable[..., Event]
    _pop_due_fn: Callable[[Optional[float]], Optional[Event]]
    _peek_fn: Callable[[], Optional[float]]
    _drain_fn: Callable[["Simulator", Optional[float]], None]
    _sched_fn: Callable[["Simulator"], Callable[..., Event]]

    def __init__(self) -> None:
        super().__init__()
        _build_wheel(self)

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> Event:
        return self._push_fn(time, callback, args)

    def pop(self) -> Optional[Event]:
        return self._pop_due_fn(None)

    def pop_due(self, limit: Optional[float] = None) -> Optional[Event]:
        return self._pop_due_fn(limit)

    def peek_time(self) -> Optional[float]:
        return self._peek_fn()

    def drain(self, sim: "Simulator", until: Optional[float]) -> None:
        self._drain_fn(sim, until)

    def make_call_later(self, sim: "Simulator") -> Callable[..., Event]:
        return self._sched_fn(sim)


def _build_wheel(queue: TimerWheelEventQueue) -> None:
    """Construct the wheel closures over shared cell state.

    Everything below closes over the same cells: two wheels of slot
    lists, the overflow heap, occupancy counters (to skip empty windows
    wholesale), the tick frontier with its precomputed window ends, and
    the active slot with its serve cursor.
    """
    slots0: List[List[Tuple[float, int, Event]]] = [[] for _ in range(_W0)]
    slots1: List[List[Tuple[float, int, Event]]] = [[] for _ in range(_W1)]
    overflow: List[Tuple[float, int, Event]] = []
    count0 = 0  # entries currently stored in slots0
    count1 = 0  # entries currently stored in slots1
    frontier = 0  # next tick to serve
    l0_end = _W0  # first tick past the current inner window
    l01_end = _W0 * _W1  # first tick past the current outer window
    active: Optional[List[Tuple[float, int, Event]]] = None
    apos = 0  # serve cursor into `active`
    seq = 0
    heappush = heapq.heappush
    heappop = heapq.heappop

    def push(
        time: float, callback: Callable[..., Any], args: Tuple[Any, ...] = ()
    ) -> Event:
        nonlocal seq, count0, count1, active, apos
        seq = seq + 1
        event: Event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.span = None
        event._queue = queue
        queue._live += 1
        tick = int(time * _TICK_INV)
        if tick >= frontier:
            if tick < l0_end:
                slots0[tick & _M0].append((time, seq, event))
                count0 += 1
            elif tick < l01_end:
                slots1[(tick >> _L0_BITS) & _M1].append((time, seq, event))
                count1 += 1
            else:
                heappush(overflow, (time, seq, event))
        elif active is None:
            active = [(time, seq, event)]
            apos = 0
        else:
            insort(active, (time, seq, event), apos)
        return event

    def _roll_windows(tick: int) -> None:
        nonlocal frontier, l0_end, l01_end
        frontier = tick
        l0_end = ((tick >> _L0_BITS) + 1) << _L0_BITS
        l01_end = ((tick >> _L01_BITS) + 1) << _L01_BITS

    def load(limit_tick: Optional[int]) -> bool:
        """Advance the frontier to the next occupied slot and activate it.

        Stops early (returning ``False``, frontier parked at/before the
        bound) when ``limit_tick`` is given and the next occupied slot
        lies beyond it, so a bounded run never pulls far-future slots
        into the active list.
        """
        nonlocal count0, count1, frontier, l0_end, l01_end, active, apos
        while True:
            tick = frontier
            if count0:
                end = l0_end
                if limit_tick is not None and limit_tick + 1 < end:
                    end = limit_tick + 1
                while tick < end:
                    slot = slots0[tick & _M0]
                    if slot:
                        slots0[tick & _M0] = []
                        count0 -= len(slot)
                        slot.sort()
                        active = slot
                        apos = 0
                        frontier = tick + 1
                        return True
                    tick += 1
                if tick < l0_end:  # parked on the bound, not a window edge
                    frontier = tick
                    return False
                _roll_windows(tick)
                continue
            if tick < l0_end:
                # Inner window is empty: jump straight to its end.
                if limit_tick is not None and limit_tick + 1 < l0_end:
                    frontier = limit_tick + 1
                    return False
                tick = l0_end
                _roll_windows(tick)
            if count1:
                end = l01_end
                cascaded = False
                while tick < end:
                    if limit_tick is not None and tick > limit_tick:
                        frontier = tick
                        return False
                    slot1 = slots1[(tick >> _L0_BITS) & _M1]
                    if slot1:
                        # Cascade one outer slot into the inner wheel; an
                        # outer slot covers exactly one aligned inner
                        # window, so `tick & _M0` re-buckets it exactly.
                        slots1[(tick >> _L0_BITS) & _M1] = []
                        count1 -= len(slot1)
                        for entry in slot1:
                            slots0[int(entry[0] * _TICK_INV) & _M0].append(
                                entry
                            )
                        count0 += len(slot1)
                        frontier = tick
                        l0_end = tick + _W0
                        cascaded = True
                        break
                    tick += _W0
                if cascaded:
                    continue
                _roll_windows(tick)
                continue
            if overflow:
                first_tick = int(overflow[0][0] * _TICK_INV)
                if limit_tick is not None and first_tick > limit_tick:
                    return False
                _roll_windows(first_tick)
                while overflow:
                    head = overflow[0]
                    tick = int(head[0] * _TICK_INV)
                    if tick >= l01_end:
                        break
                    heappop(overflow)
                    if tick < l0_end:
                        slots0[tick & _M0].append(head)
                        count0 += 1
                    else:
                        slots1[(tick >> _L0_BITS) & _M1].append(head)
                        count1 += 1
                continue
            return False

    def pop_due(limit: Optional[float]) -> Optional[Event]:
        nonlocal active, apos
        while True:
            slot = active
            if slot is None or apos >= len(slot):
                active = None
                bound = None if limit is None else int(limit * _TICK_INV)
                if not load(bound):
                    return None
                slot = active
                assert slot is not None
            n = len(slot)
            i = apos
            while i < n:
                time, _, event = slot[i]
                if event.cancelled:
                    i += 1
                    queue._dead -= 1
                    continue
                if limit is not None and time > limit:
                    apos = i
                    return None
                apos = i + 1
                queue._live -= 1
                event._queue = None
                return event
            apos = i

    def peek_time() -> Optional[float]:
        nonlocal active, apos
        while True:
            slot = active
            if slot is None or apos >= len(slot):
                active = None
                if not load(None):
                    return None
                slot = active
                assert slot is not None
            n = len(slot)
            i = apos
            while i < n:
                time, _, event = slot[i]
                if event.cancelled:
                    i += 1
                    queue._dead -= 1
                    continue
                apos = i
                return time
            apos = i

    def drain(sim: "Simulator", until: Optional[float]) -> None:
        # Batched dispatch: each occupied slot is sorted once and fired
        # as a run, without re-consulting the wheel per event. Events
        # stay attached until the instant they fire, so same-instant
        # cancels behave exactly as in the reference loop, and the
        # live/dead ledger is settled per slot in the inner `finally`.
        nonlocal active, apos
        fired = 0
        limit_tick = None if until is None else int(until * _TICK_INV)
        try:
            while True:
                slot = active
                if slot is None or apos >= len(slot):
                    active = None
                    if not load(limit_tick):
                        return
                    slot = active
                    assert slot is not None
                n = len(slot)
                i = apos
                start = i
                fired_before = fired
                try:
                    if until is None:
                        while i < n:
                            time, _, event = slot[i]
                            i += 1
                            if event.cancelled:
                                continue
                            sim.now = time
                            event._queue = None
                            fired += 1
                            event.callback(*event.args)
                            if sim._stopped:
                                return
                    else:
                        while i < n:
                            time, _, event = slot[i]
                            if time > until:
                                return
                            i += 1
                            if event.cancelled:
                                continue
                            sim.now = time
                            event._queue = None
                            fired += 1
                            event.callback(*event.args)
                            if sim._stopped:
                                return
                finally:
                    apos = i
                    delta_fired = fired - fired_before
                    queue._live -= delta_fired
                    queue._dead -= (i - start) - delta_fired
        finally:
            sim.events_processed += fired

    def make_call_later(sim: "Simulator") -> Callable[..., Event]:
        # The fused scheduler: one call frame, cell-variable state, and
        # the full push body inlined. Must stay in lockstep with push()
        # above -- the differential test replays identical traces through
        # both entry points to catch drift.
        def call_later(
            delay: float, callback: Callable[..., Any], *args: Any
        ) -> Event:
            """Schedule ``callback(*args)`` after ``delay`` seconds."""
            nonlocal seq, count0, count1, active, apos
            if delay >= 0:
                time = sim.now + delay
                seq = seq + 1
                event: Event = _new_event(Event)
                event.time = time
                event.seq = seq
                event.callback = callback
                event.args = args
                event.cancelled = False
                event.span = None
                event._queue = queue
                queue._live += 1
                tick = int(time * _TICK_INV)
                if tick >= frontier:
                    if tick < l0_end:
                        slots0[tick & _M0].append((time, seq, event))
                        count0 += 1
                    elif tick < l01_end:
                        slots1[(tick >> _L0_BITS) & _M1].append(
                            (time, seq, event)
                        )
                        count1 += 1
                    else:
                        heappush(overflow, (time, seq, event))
                elif active is None:
                    active = [(time, seq, event)]
                    apos = 0
                else:
                    insort(active, (time, seq, event), apos)
                return event
            raise SimulationError(f"negative delay {delay!r}")

        return call_later

    queue._push_fn = push
    queue._pop_due_fn = pop_due
    queue._peek_fn = peek_time
    queue._drain_fn = drain
    queue._sched_fn = make_call_later


# ----------------------------------------------------------------------
# Calendar queue
# ----------------------------------------------------------------------

_CAL_INITIAL_WIDTH = 0.01  # 10 ms buckets to start
_CAL_MIN_WIDTH = 2.0**-20
_CAL_MAX_WIDTH = 4096.0
_CAL_SPREAD_LIMIT = 512  # halve the width when a bucket outgrows this
_CAL_SPARSE_LOADS = 256  # double it when this many loads stay near-empty


class CalendarEventQueue(BaseEventQueue):
    """Calendar-queue backend with adaptive bucket width.

    Events land in "day" buckets (``day = int(time / width)``); a heap of
    occupied days finds the next bucket, which is sorted and served like
    a wheel slot. The width adapts to the observed distribution: it is
    halved when a single bucket outgrows ``_CAL_SPREAD_LIMIT`` (spread on
    overflow) and doubled when many consecutive loads produce near-empty
    buckets. Both triggers depend only on queue state, so resizing is
    deterministic.

    Pushes for a day that is already being served clamp into the active
    bucket via ``insort(active, entry, lo=cursor)``; such entries are
    global minima among pending events, so the (time, seq) serve order is
    preserved exactly.
    """

    __slots__ = (
        "_buckets",
        "_days",
        "_width",
        "_day",
        "_active",
        "_apos",
        "_seq",
        "_loads",
        "_loaded",
    )

    backend = "calendar"

    def __init__(self) -> None:
        super().__init__()
        self._buckets: Dict[int, List[Tuple[float, int, Event]]] = {}
        self._days: List[int] = []
        self._width = _CAL_INITIAL_WIDTH
        self._day = 0  # next day index to load
        self._active: Optional[List[Tuple[float, int, Event]]] = None
        self._apos = 0
        self._seq = 0
        self._loads = 0
        self._loaded = 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> Event:
        self._seq += 1
        seq = self._seq
        event = Event(time, seq, callback, args, queue=self)
        self._live += 1
        day = int(time / self._width)
        if day < self._day:
            active = self._active
            if active is None:
                self._active = [(time, seq, event)]
                self._apos = 0
            else:
                insort(active, (time, seq, event), self._apos)
            return event
        bucket = self._buckets.get(day)
        if bucket is None:
            self._buckets[day] = [(time, seq, event)]
            heapq.heappush(self._days, day)
        else:
            bucket.append((time, seq, event))
            if (
                len(bucket) > _CAL_SPREAD_LIMIT
                and self._width > _CAL_MIN_WIDTH
            ):
                self._rebucket(self._width / 2.0)
        return event

    def _rebucket(self, width: float) -> None:
        """Re-index every future bucket under a new width."""
        entries: List[Tuple[float, int, Event]] = []
        for bucket in self._buckets.values():
            entries.extend(bucket)
        frontier_time = self._day * self._width
        self._buckets.clear()
        self._width = width
        self._day = int(frontier_time / width)
        day_floor = self._day
        buckets = self._buckets
        for entry in entries:
            day = int(entry[0] / width)
            if day < day_floor:
                day = day_floor
            bucket = buckets.get(day)
            if bucket is None:
                buckets[day] = [entry]
            else:
                bucket.append(entry)
        # Re-bucketed lists may interleave seq order; restore it so the
        # serve-time stable sort sees per-slot seq-ordered input.
        for bucket in buckets.values():
            bucket.sort()
        self._days = sorted(buckets)
        heapq.heapify(self._days)
        self._loads = 0
        self._loaded = 0

    def _load(self) -> bool:
        days = self._days
        buckets = self._buckets
        while days:
            day = heapq.heappop(days)
            bucket = buckets.pop(day, None)
            if bucket is None:  # stale index after a resize
                continue
            self._day = day + 1
            bucket.sort()
            self._active = bucket
            self._apos = 0
            self._loads += 1
            self._loaded += len(bucket)
            if (
                self._loads >= _CAL_SPARSE_LOADS
                and self._loaded < 2 * self._loads
                and self._width < _CAL_MAX_WIDTH
            ):
                self._rebucket(self._width * 2.0)
            return True
        return False

    def pop_due(self, limit: Optional[float] = None) -> Optional[Event]:
        while True:
            active = self._active
            if active is None or self._apos >= len(active):
                self._active = None
                if (
                    limit is not None
                    and self._days
                    and self._days[0] * self._width > limit
                ):
                    return None  # next bucket is wholly beyond the bound
                if not self._load():
                    return None
                continue
            i = self._apos
            time, _, event = active[i]
            if event.cancelled:
                self._apos = i + 1
                self._dead -= 1
                continue
            if limit is not None and time > limit:
                return None
            self._apos = i + 1
            self._live -= 1
            event._queue = None
            return event

    def pop(self) -> Optional[Event]:
        return self.pop_due(None)

    def peek_time(self) -> Optional[float]:
        while True:
            active = self._active
            if active is None or self._apos >= len(active):
                self._active = None
                if not self._load():
                    return None
                continue
            i = self._apos
            time, _, event = active[i]
            if event.cancelled:
                self._apos = i + 1
                self._dead -= 1
                continue
            return time


class NativeEventQueue:
    """Wrapper registering the compiled heap (``_ckernel``) as a backend.

    The inner C object implements the whole protocol; this shell only
    adds the ``stats()``/``backend`` surface and hands the simulator's
    ``SimulationError`` to the C scheduler. Events returned here are
    ``_ckernel.Event`` instances -- a distinct type with the same
    interface as :class:`Event`.
    """

    __slots__ = ("_inner",)

    backend = "native"

    def __init__(self) -> None:
        assert _ckernel is not None, "native backend requires _ckernel"
        self._inner = _ckernel.EventHeap()

    @property
    def _live(self) -> int:
        return cast(int, self._inner._live)

    @property
    def _dead(self) -> int:
        return cast(int, self._inner._dead)

    def __len__(self) -> int:
        return len(self._inner)

    def depth(self) -> int:
        return cast(int, self._inner.depth())

    def stats(self) -> Dict[str, Any]:
        live = self._live
        dead = self._dead
        return {
            "backend": self.backend,
            "live": live,
            "dead": dead,
            "depth": live + dead,
        }

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> Event:
        return cast(Event, self._inner.push(time, callback, args))

    def pop(self) -> Optional[Event]:
        return cast(Optional[Event], self._inner.pop())

    def pop_due(self, limit: Optional[float] = None) -> Optional[Event]:
        return cast(Optional[Event], self._inner.pop_due(limit))

    def peek_time(self) -> Optional[float]:
        return cast(Optional[float], self._inner.peek_time())

    def drain(self, sim: "Simulator", until: Optional[float]) -> None:
        self._inner.drain(sim, until)

    def make_call_later(self, sim: "Simulator") -> Callable[..., Event]:
        return cast(
            Callable[..., Event],
            self._inner.make_call_later(sim, SimulationError),
        )


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------

QUEUE_BACKENDS: Dict[str, Callable[[], Any]] = {
    "heap": EventQueue,
    "wheel": TimerWheelEventQueue,
    "calendar": CalendarEventQueue,
}
if _ckernel is not None:
    QUEUE_BACKENDS["native"] = NativeEventQueue

#: The config-facing default. "auto" resolves to the compiled kernel when
#: it has been built and to the timer wheel (the fastest pure-Python
#: backend -- it beat the heap across the committed kernel benchmarks)
#: otherwise. Because every backend produces identical event ordering,
#: the resolution never changes experiment results, only wall time.
DEFAULT_QUEUE_BACKEND = "auto"


def resolve_queue_backend(name: str) -> str:
    """Map a configured backend name to a concrete registry key."""
    if name == "auto":
        return "native" if "native" in QUEUE_BACKENDS else "wheel"
    if name not in QUEUE_BACKENDS:
        known = ", ".join(sorted(QUEUE_BACKENDS) + ["auto"])
        raise ValueError(f"unknown queue backend {name!r} (known: {known})")
    return name


def make_queue(name: str = DEFAULT_QUEUE_BACKEND) -> Any:
    """Instantiate the queue backend configured by ``name``."""
    return QUEUE_BACKENDS[resolve_queue_backend(name)]()
