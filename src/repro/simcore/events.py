"""Event queue primitives for the discrete-event simulator.

Events are ordered by (time, sequence number) so simultaneous events run in
the deterministic order they were scheduled, which keeps whole simulations
reproducible from a single seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback, cancellable until it fires.

    Instances are returned by :meth:`repro.simcore.simulator.Simulator.at`
    and :meth:`~repro.simcore.simulator.Simulator.call_later`; user code
    only ever needs :meth:`cancel` and the read-only attributes.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class EventQueue:
    """Priority queue of :class:`Event` objects.

    Cancelled events stay in the heap and are skipped on pop; this is the
    standard lazy-deletion pattern and keeps :meth:`Event.cancel` O(1).
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        event = Event(time, next(self._counter), callback, args, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            # Fired events must not decrement the live count again if a
            # late cancel() arrives, so detach them from the queue.
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
