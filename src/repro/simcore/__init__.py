"""Discrete-event simulation core.

This subpackage provides the clocked substrate every other component runs
on: a :class:`~repro.simcore.simulator.Simulator` with a priority event
queue, generator-based :class:`~repro.simcore.process.Process` coroutines,
one-shot :class:`~repro.simcore.process.Signal` synchronization, and
deterministic named random streams
(:class:`~repro.simcore.rng.RandomStreams`).

The engine is deliberately small and dependency-free; all DNS behavior in
this library (resolvers, servers, clients, attacks) is expressed as either
scheduled callbacks or generator processes on top of it.
"""

from repro.simcore.events import (
    DEFAULT_QUEUE_BACKEND,
    QUEUE_BACKENDS,
    CalendarEventQueue,
    Event,
    EventQueue,
    SimulationError,
    TimerWheelEventQueue,
    make_queue,
    resolve_queue_backend,
)
from repro.simcore.process import AnyOf, Process, Signal, Timeout
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import SimProfile, Simulator

__all__ = [
    "AnyOf",
    "CalendarEventQueue",
    "DEFAULT_QUEUE_BACKEND",
    "Event",
    "EventQueue",
    "Process",
    "QUEUE_BACKENDS",
    "RandomStreams",
    "Signal",
    "SimProfile",
    "SimulationError",
    "Simulator",
    "TimerWheelEventQueue",
    "Timeout",
    "make_queue",
    "resolve_queue_backend",
]
