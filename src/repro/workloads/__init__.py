"""Synthetic passive-trace workloads for the §4 production-zone analyses.

The paper's §4 uses two private datasets: six hours of queries at the
``.nl`` authoritatives (ENTRADA) and the 2017 DITL day of root-server
traffic (DNS-OARC). Both are unavailable (privacy), so these generators
synthesize traces with the same behavioral components the paper
identifies — TTL-honoring refreshers, happy-eyeballs parallel queriers,
cache-limited re-askers, and heavy-tailed abusers — and the analysis
code (identical to the paper's: per-source inter-arrival medians, ECDFs,
per-source query counts) is run against them.
"""

from repro.workloads.ditl import DitlConfig, generate_ditl_counts
from repro.workloads.nl_trace import NlTraceConfig, TraceQuery, generate_nl_trace

__all__ = [
    "DitlConfig",
    "NlTraceConfig",
    "TraceQuery",
    "generate_ditl_counts",
    "generate_nl_trace",
]
