"""Synthetic root-server DITL counts (paper §4.2, Figure 5).

The paper counts, per recursive, the queries for the ``nl`` DS record
(TTL 86400 s) arriving at the root servers over 24 hours:

* ~87% of recursives send exactly one query in the day (full TTL honor);
* ~13% send several; per-letter behavior differs (F-Root "best": ~5%
  send ≥5; H-Root "worst": >10% send ≥5);
* a very long tail, up to 21.8k queries from one recursive.

The generator draws per-recursive totals from that mixture and spreads
them across the 12 letters the paper analyzes (all except G-Root).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

ROOT_LETTERS = ("A", "B", "C", "D", "E", "F", "H", "I", "J", "K", "L", "M")


@dataclass
class DitlConfig:
    """Mixture parameters for per-recursive daily query counts."""

    recursive_count: int = 20000
    single_share: float = 0.87
    # Among multi-queriers, geometric "a few" vs pareto "heavy".
    heavy_share: float = 0.06
    geometric_p: float = 0.45
    pareto_alpha: float = 0.9
    pareto_scale: float = 5.0
    max_count: int = 21800
    seed: int = 42


def generate_ditl_counts(
    config: Optional[DitlConfig] = None,
) -> Dict[str, Dict[str, int]]:
    """Per-recursive, per-letter query counts for the nl DS record.

    Returns ``{recursive: {letter: count}}``; a recursive appears under
    a letter only if it sent at least one query there.
    """
    config = config or DitlConfig()
    rng = random.Random(config.seed)
    result: Dict[str, Dict[str, int]] = {}
    # Letters differ in "friendliness": F sees the least re-asking, H the
    # most; weights skew which letter absorbs multi-query traffic.
    letter_weights = {letter: 1.0 for letter in ROOT_LETTERS}
    letter_weights["F"] = 0.5
    letter_weights["H"] = 3.2
    letters = list(letter_weights)
    weights = [letter_weights[letter] for letter in letters]

    for index in range(config.recursive_count):
        src = f"rec-{index}"
        draw = rng.random()
        if draw < config.single_share:
            total = 1
        elif draw < config.single_share + config.heavy_share:
            total = min(
                config.max_count,
                int(config.pareto_scale / (rng.random() ** (1 / config.pareto_alpha))),
            )
        else:
            # Geometric "a few": 2, 3, 4 ... queries.
            total = 2
            while rng.random() > config.geometric_p and total < 500:
                total += 1
        per_letter: Dict[str, int] = {}
        if total == 1:
            per_letter[rng.choices(letters, weights)[0]] = 1
        else:
            for _ in range(total):
                letter = rng.choices(letters, weights)[0]
                per_letter[letter] = per_letter.get(letter, 0) + 1
        result[src] = per_letter
    return result


def per_letter_cdf(
    counts: Dict[str, Dict[str, int]], max_queries: int = 30
) -> Dict[str, List[float]]:
    """Figure 5: CDF of per-recursive query counts, per letter and overall.

    ``result[letter][n-1]`` is the fraction of that letter's recursives
    that sent at most ``n`` queries. The "ALL" series counts each
    recursive's total across letters.
    """
    series: Dict[str, List[int]] = {letter: [] for letter in ROOT_LETTERS}
    totals: List[int] = []
    for per_letter in counts.values():
        totals.append(sum(per_letter.values()))
        for letter, count in per_letter.items():
            series[letter].append(count)
    result: Dict[str, List[float]] = {}
    for letter, values in list(series.items()) + [("ALL", totals)]:
        if not values:
            result[letter] = [1.0] * max_queries
            continue
        values.sort()
        cdf: List[float] = []
        total = len(values)
        for threshold in range(1, max_queries + 1):
            covered = _count_at_most(values, threshold)
            cdf.append(covered / total)
        result[letter] = cdf
    return result


def _count_at_most(sorted_values: List[int], threshold: int) -> int:
    import bisect

    return bisect.bisect_right(sorted_values, threshold)


def fraction_at_least(
    counts: Dict[str, Dict[str, int]], letter: str, threshold: int
) -> float:
    """Fraction of a letter's recursives sending ≥ ``threshold`` queries."""
    values = [
        per_letter[letter]
        for per_letter in counts.values()
        if letter in per_letter
    ]
    if not values:
        return 0.0
    return sum(1 for value in values if value >= threshold) / len(values)
