"""Synthetic ``.nl`` authoritative traffic (paper §4.1, Figure 4).

The paper watches queries for ``ns1-ns5.dns.nl`` (TTL 3600) at the
``.nl`` authoritatives for six hours and studies per-recursive
inter-arrival times. Their findings, which this generator encodes as an
explicit behavior mix:

* ~28% of queries arrive with Δt < 10 s (parallel/happy-eyeballs
  bursts), excluded from caching analysis;
* the biggest peak of per-recursive median Δt sits at 3600 s (full-TTL
  honoring, type AA refreshes);
* a smaller peak near 1800 s and mass below 3600 s (type AC: TTL
  limiting, cache fragmentation, flushes) — about 22% of recursives ask
  more frequently than the TTL;
* a long frequent-querier tail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class TraceQuery:
    """One passive-trace row: who asked which nameserver name, when."""

    time: float
    src: str
    qname: str

    def __repr__(self) -> str:
        return f"<TraceQuery t={self.time:.1f} {self.src} {self.qname}>"


@dataclass
class NlTraceConfig:
    """Behavior mix of the synthetic recursive population."""

    recursive_count: int = 2000
    duration: float = 6 * 3600.0
    ttl: float = 3600.0
    names: Tuple[str, ...] = (
        "ns1.dns.nl.",
        "ns2.dns.nl.",
        "ns3.dns.nl.",
        "ns4.dns.nl.",
        "ns5.dns.nl.",
    )
    # Population shares (sum to 1): honor the full TTL; refresh early
    # (caps/fragmentation, ~half of these near TTL/2); query in parallel
    # bursts; frequent re-askers.
    honor_share: float = 0.45
    early_share: float = 0.18
    burst_share: float = 0.32
    heavy_share: float = 0.05
    # One extreme querier per trace models the paper's "one query every
    # 4 seconds from the same IP" observation.
    extreme_period: float = 4.0
    seed: int = 42


def _emit_periodic(
    rng: random.Random,
    src: str,
    names: Tuple[str, ...],
    duration: float,
    period: float,
    jitter: float,
    out: List[TraceQuery],
) -> None:
    time = rng.random() * period
    while time < duration:
        out.append(TraceQuery(time, src, rng.choice(names)))
        time += period * (1.0 + (rng.random() - 0.5) * jitter)


def generate_nl_trace(config: Optional[NlTraceConfig] = None) -> List[TraceQuery]:
    """Generate the six-hour trace, sorted by time."""
    config = config or NlTraceConfig()
    rng = random.Random(config.seed)
    out: List[TraceQuery] = []
    shares = (
        ("honor", config.honor_share),
        ("early", config.early_share),
        ("burst", config.burst_share),
        ("heavy", config.heavy_share),
    )
    for index in range(config.recursive_count):
        src = f"rec-{index}"
        draw = rng.random()
        kind = "honor"
        for name, share in shares:
            if draw < share:
                kind = name
                break
            draw -= share
        if kind == "honor":
            # Refetch right after TTL expiry, small positive slack.
            period = config.ttl * (1.0 + rng.random() * 0.04)
            _emit_periodic(rng, src, config.names, config.duration, period, 0.02, out)
        elif kind == "early":
            # TTL limiting / fragmentation: a cluster near TTL/2, the
            # rest spread below the TTL.
            if rng.random() < 0.5:
                period = config.ttl / 2 * (1.0 + (rng.random() - 0.5) * 0.1)
            else:
                period = config.ttl * (0.1 + 0.8 * rng.random())
            _emit_periodic(rng, src, config.names, config.duration, period, 0.05, out)
        elif kind == "burst":
            # Happy-eyeballs-style: TTL-paced rounds, but each round is a
            # burst of near-simultaneous queries to several names.
            period = config.ttl * (1.0 + rng.random() * 0.05)
            time = rng.random() * period
            while time < config.duration:
                burst = rng.randint(3, 5)
                for __ in range(burst):
                    query_time = time + rng.random() * 5.0
                    if query_time < config.duration:
                        out.append(
                            TraceQuery(query_time, src, rng.choice(config.names))
                        )
                time += period
        else:
            # Frequent re-askers: sub-TTL periods down to sub-minute.
            period = rng.choice((30.0, 60.0, 120.0, 300.0, 600.0))
            _emit_periodic(rng, src, config.names, config.duration, period, 0.5, out)
    # One extreme abuser, as the paper observes in the wild.
    _emit_periodic(
        rng,
        "rec-extreme",
        config.names,
        config.duration,
        config.extreme_period,
        0.2,
        out,
    )
    out.sort(key=lambda query: query.time)
    return out


def interarrival_medians(
    trace: List[TraceQuery],
    min_queries: int = 5,
    exclude_below: float = 10.0,
) -> Dict[str, float]:
    """Median inter-arrival per recursive (the paper's Figure 4 series).

    Mirrors the paper's filtering: only recursives with at least
    ``min_queries`` queries, and closely-timed queries (Δ below
    ``exclude_below`` seconds — parallel queries, not caching) excluded.
    """
    by_src: Dict[str, List[float]] = {}
    for query in trace:
        by_src.setdefault(query.src, []).append(query.time)
    medians: Dict[str, float] = {}
    for src, times in by_src.items():
        if len(times) < min_queries:
            continue
        times.sort()
        deltas = [
            later - earlier
            for earlier, later in zip(times, times[1:])
            if later - earlier >= exclude_below
        ]
        if not deltas:
            continue
        deltas.sort()
        medians[src] = deltas[len(deltas) // 2]
    return medians


def close_query_fraction(
    trace: List[TraceQuery], threshold: float = 10.0
) -> float:
    """Fraction of queries with per-source Δt below ``threshold`` (the
    paper's ~28% of frequent, parallel queries)."""
    by_src: Dict[str, List[float]] = {}
    for query in trace:
        by_src.setdefault(query.src, []).append(query.time)
    close = 0
    total = 0
    for times in by_src.values():
        times.sort()
        for earlier, later in zip(times, times[1:]):
            total += 1
            if later - earlier < threshold:
                close += 1
    return close / total if total else 0.0
