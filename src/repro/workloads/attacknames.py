"""Adversarial query-name generators for the attack-load subsystem.

Lives with the other synthetic traffic generators: like
:mod:`repro.workloads.nl_trace`, these functions only *shape* traffic —
the sending happens in :mod:`repro.attackload`.

Two families:

* **Water-torture names** — ``<random>.<victim zone>``. Labels are
  drawn letters-only on purpose: the instrumented zone synthesizes
  answers for single *numeric* labels (probe ids), so a non-numeric
  label is guaranteed to take the NXDOMAIN path. That makes every query
  a cache miss at every recursive (cache-busting by construction), and
  each unique name occupies its own negative-cache entry.
* **NXNS target names** — the no-glue nameserver targets an NXNS-style
  referral plants inside the victim zone. One attacker query yields
  ``fanout`` of these, and a chasing recursive resolves each one at the
  victim's authoritatives (Afek et al.'s amplification).
"""

from __future__ import annotations

import random
from typing import List

from repro.dnscore.name import Name

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def random_label(rng: random.Random, length: int = 12) -> str:
    """A random letters-only label (never parses as a probe id)."""
    return "".join(rng.choice(_ALPHABET) for _ in range(length))


def water_torture_name(rng: random.Random, origin: Name) -> Name:
    """A unique non-existent name directly under ``origin``."""
    return Name((random_label(rng),) + origin.labels)


def nxns_target_names(
    rng: random.Random, victim_origin: Name, fanout: int
) -> List[Name]:
    """``fanout`` nameserver names inside the victim zone, sharing one
    random stem so a single referral's targets are related but globally
    unique (no cross-query cache reuse)."""
    stem = random_label(rng, 10)
    return [
        Name((f"{stem}-ns{index}",) + victim_origin.labels)
        for index in range(fanout)
    ]
