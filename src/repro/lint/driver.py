"""The single-pass AST visitor driver all checkers share.

Each source file is read and parsed exactly once. One ``ast.walk`` per
file dispatches every node to the checkers that registered interest in
its type, so adding a checker costs a dict lookup per node, not another
parse of the tree. Cross-file rules (spec hygiene, callback-path
discovery) buffer state during the walk and emit their findings in
``finalize``.

Checkers report through :meth:`LintContext.report`, which applies the
per-line ``# repro-lint: allow[rule]`` pragmas; the committed baseline
is applied later, by the CLI, so library callers always see the full
finding list.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.lint.findings import Finding, sort_findings
from repro.lint.pragmas import allows, parse_pragmas


class LintConfigError(ValueError):
    """Raised for unusable lint inputs (bad paths, broken source)."""


class SourceFile:
    """One parsed source file plus its pragma table and import aliases."""

    __slots__ = ("path", "rel", "source", "tree", "pragmas", "_imports")

    def __init__(
        self, path: pathlib.Path, rel: str, source: str, tree: ast.Module
    ) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = tree
        self.pragmas = parse_pragmas(source)
        self._imports: Optional[Dict[str, str]] = None

    @property
    def imports(self) -> Dict[str, str]:
        """Alias table: local name -> dotted origin.

        ``import time as _walltime`` maps ``_walltime -> time``;
        ``from datetime import datetime`` maps ``datetime ->
        datetime.datetime``. Built lazily, once, by the first checker
        that resolves module references.
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name
                        )
                elif isinstance(node, ast.ImportFrom) and node.module:
                    if node.level:
                        continue  # relative imports never name stdlib modules
                    for alias in node.names:
                        table[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
            self._imports = table
        return self._imports


class LintContext:
    """Shared state for one lint run."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        self.findings: List[Finding] = []
        self.suppressed_count = 0
        self._by_rel = {file.rel: file for file in self.files}

    def file(self, rel: str) -> Optional[SourceFile]:
        return self._by_rel.get(rel)

    def files_matching(self, suffix: str) -> List[SourceFile]:
        return [file for file in self.files if file.rel.endswith(suffix)]

    def report(
        self,
        rule: str,
        file: SourceFile,
        where: Union[int, ast.AST],
        message: str,
    ) -> None:
        """Emit a finding unless a pragma on its line (or the line above,
        standalone form) allows the rule."""
        line = where if isinstance(where, int) else getattr(where, "lineno", 0)
        if allows(file.pragmas, line, rule):
            self.suppressed_count += 1
            return
        self.findings.append(Finding(rule, file.rel, line, message))


class Checker:
    """Base class: subclasses set ``rule`` and ``node_types`` and
    implement any of the four hooks."""

    rule: str = ""
    #: AST node classes this checker wants to see during the walk.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def begin_file(self, ctx: LintContext, file: SourceFile) -> None:
        pass

    def visit(self, ctx: LintContext, file: SourceFile, node: ast.AST) -> None:
        pass

    def end_file(self, ctx: LintContext, file: SourceFile) -> None:
        pass

    def finalize(self, ctx: LintContext) -> None:
        pass


def discover_files(
    paths: Iterable[pathlib.Path], src_root: Optional[pathlib.Path] = None
) -> List[SourceFile]:
    """Load and parse every ``.py`` file under ``paths``.

    ``src_root`` anchors the relative path recorded on findings (so
    baselines are machine-independent); by default it is the parent of
    the first path, which for the canonical invocation (the ``repro``
    package directory) yields ``repro/...`` paths.
    """
    path_list = [pathlib.Path(path) for path in paths]
    if not path_list:
        raise LintConfigError("no paths to lint")
    if src_root is None:
        first = path_list[0].resolve()
        src_root = first.parent if first.is_dir() else first.parent.parent
    seen = set()
    files: List[SourceFile] = []
    for path in path_list:
        path = path.resolve()
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise LintConfigError(f"not a python file or directory: {path}")
        for candidate in candidates:
            if candidate in seen:
                continue
            seen.add(candidate)
            files.append(load_file(candidate, src_root))
    return files


def load_file(path: pathlib.Path, src_root: pathlib.Path) -> SourceFile:
    source = path.read_text(encoding="utf-8")
    try:
        rel = path.relative_to(src_root).as_posix()
    except ValueError:
        rel = path.as_posix()
    return parse_source(source, rel, path)


def parse_source(
    source: str, rel: str, path: Optional[pathlib.Path] = None
) -> SourceFile:
    """Build a :class:`SourceFile` from in-memory source (tests use this
    to lint fixture snippets without touching disk)."""
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        raise LintConfigError(f"{rel}: syntax error: {exc}") from exc
    return SourceFile(path or pathlib.Path(rel), rel, source, tree)


def run_checkers(
    files: Sequence[SourceFile], checkers: Sequence[Checker]
) -> LintContext:
    """One pass over every file, then one finalize round."""
    ctx = LintContext(files)
    dispatch: Dict[Type[ast.AST], List[Checker]] = {}
    for checker in checkers:
        for node_type in checker.node_types:
            dispatch.setdefault(node_type, []).append(checker)
    for file in files:
        for checker in checkers:
            checker.begin_file(ctx, file)
        if dispatch:
            for node in ast.walk(file.tree):
                for checker in dispatch.get(type(node), ()):
                    checker.visit(ctx, file, node)
        for checker in checkers:
            checker.end_file(ctx, file)
    for checker in checkers:
        checker.finalize(ctx)
    ctx.findings = sort_findings(ctx.findings)
    return ctx
