"""Callback-path discovery shared by the slots and event-loop checkers.

A function is *on the callback path* when the simulator can invoke it
from the event loop: it is passed to a scheduling/registration call
(``sim.call_later``, ``sim.at``, ``queue.push``, ``network.register``,
``network.register_tap``, ``signal.add_waiter``), or it is (by name) an
override of a method so registered anywhere in the tree, or it is
reachable from such a function through same-module calls
(``self.helper()`` / ``helper()``).

Name-based matching is deliberate: ``Host.__init__`` registers
``self.on_packet`` once, and every subclass's ``on_packet`` — defined in
a different module — must inherit the hot-path obligations. The cost is
a conservative over-approximation (an unrelated method that happens to
share a registered callback's name is treated as hot), which for a lint
is the right direction to err.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Union

from repro.lint.driver import SourceFile

#: Registration entry points -> index of the callback argument.
REGISTRARS: Dict[str, int] = {
    "call_later": 1,
    "at": 1,
    "push": 1,
    "register": 1,
    "register_tap": 1,
    "add_waiter": 0,
}

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _callback_argument(node: ast.Call) -> Union[ast.expr, None]:
    """The expression passed as the callback, if ``node`` registers one."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    index = REGISTRARS.get(func.attr)
    if index is None or len(node.args) <= index:
        return None
    return node.args[index]


def callback_names(files: Iterable[SourceFile]) -> Set[str]:
    """Every function/method *name* registered as a callback anywhere."""
    names: Set[str] = set()
    for file in files:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            callback = _callback_argument(node)
            if callback is None:
                continue
            if isinstance(callback, ast.Name):
                names.add(callback.id)
            elif isinstance(callback, ast.Attribute):
                names.add(callback.attr)
    return names


def _local_definitions(tree: ast.Module) -> Dict[str, List[ast.AST]]:
    """Function/method definitions in a module, keyed by bare name.

    Methods are keyed by method name (not qualified) so ``self.helper()``
    resolves without type inference; name collisions merge, which only
    widens the hot set.
    """
    defs: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, []).append(node)
    return defs


def hot_functions(
    file: SourceFile, global_callback_names: Set[str]
) -> List[FunctionNode]:
    """Functions in ``file`` reachable from the event loop.

    Roots are (a) defs whose name is registered as a callback anywhere in
    the tree and (b) lambdas passed directly to a registrar in this file.
    The set is closed under same-module calls.
    """
    defs = _local_definitions(file.tree)
    hot: List[FunctionNode] = []
    seen: Set[int] = set()
    worklist: List[ast.AST] = []

    def add(node: ast.AST) -> None:
        if id(node) not in seen:
            seen.add(id(node))
            worklist.append(node)
            hot.append(node)  # type: ignore[arg-type]

    for name in global_callback_names:
        for definition in defs.get(name, ()):
            add(definition)
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Call):
            callback = _callback_argument(node)
            if isinstance(callback, ast.Lambda):
                add(callback)

    while worklist:
        current = worklist.pop()
        for node in ast.walk(current):
            if not isinstance(node, ast.Call):
                continue
            target = None
            if isinstance(node.func, ast.Name):
                target = node.func.id
            elif isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ):
                if node.func.value.id in ("self", "cls"):
                    target = node.func.attr
            if target is not None:
                for definition in defs.get(target, ()):
                    add(definition)
    return hot
