"""The ``repro lint`` subcommand.

Canonical invocation, from the repository root::

    PYTHONPATH=src python -m repro lint

Exit status: 0 when every finding is pragma'd or baselined, 1 when new
findings exist (or baseline entries went stale), 2 for usage errors.
``--format json`` emits a machine-readable report; ``--output`` writes
that report to a file regardless of exit status, which is what CI
uploads as the findings artifact.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from typing import List, Optional, Sequence

import repro
from repro.lint.baseline import Baseline, BaselineError
from repro.lint.checkers import RULES, all_checkers
from repro.lint.driver import LintConfigError, discover_files, run_checkers
from repro.lint.findings import sort_findings


def default_target() -> pathlib.Path:
    """The installed ``repro`` package directory."""
    return pathlib.Path(repro.__file__).resolve().parent


def default_baseline_path() -> pathlib.Path:
    """``lint-baseline.json`` next to the source tree (the repo root in
    the canonical ``src/`` layout)."""
    return default_target().parent.parent / "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared between the ``repro lint`` subcommand and the shim."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files git reports as changed (working tree vs "
        "HEAD, plus untracked), scoped to the package tree",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="fmt",
        help="report format",
    )
    parser.add_argument(
        "--rules",
        metavar="LIST",
        help=f"comma list of rules to run (default: all of "
        f"{','.join(sorted(RULES))})",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file (default: lint-baseline.json at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the JSON report here (written even on failure)",
    )


def changed_paths() -> List[pathlib.Path]:
    """Python files git reports as changed, limited to the package tree.

    "Changed" is the union of the working tree diff against ``HEAD``
    (staged and unstaged) and untracked files; deleted files drop out.
    Keeps pre-commit runs proportional to the edit, not the tree —
    findings are per-file, so linting the touched subset reports
    exactly the findings the full run would report for those files.
    """
    target = default_target()
    root = target.parent.parent
    names = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            command, cwd=root, capture_output=True, text=True
        )
        if proc.returncode != 0:
            detail = proc.stderr.strip() or f"exit {proc.returncode}"
            raise LintConfigError(
                f"--changed: `{' '.join(command)}` failed: {detail}"
            )
        names.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    paths: List[pathlib.Path] = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = (root / name).resolve()
        if not path.is_file():
            continue
        try:
            path.relative_to(target)
        except ValueError:
            continue
        paths.append(path)
    return paths


def run_lint(args: argparse.Namespace) -> int:
    try:
        rules = (
            [rule.strip() for rule in args.rules.split(",") if rule.strip()]
            if args.rules
            else None
        )
        checkers = all_checkers(rules)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    try:
        if args.changed:
            if args.paths:
                raise LintConfigError(
                    "--changed and explicit paths are mutually exclusive"
                )
            paths = changed_paths()
            if not paths:
                print("repro lint: no changed files")
                return 0
        else:
            paths = [pathlib.Path(path) for path in args.paths] or [
                default_target()
            ]
        files = discover_files(paths)
    except (LintConfigError, OSError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    ctx = run_checkers(files, checkers)

    baseline_path = pathlib.Path(
        args.baseline if args.baseline else default_baseline_path()
    )
    if args.write_baseline:
        Baseline(ctx.findings).save(baseline_path)
        print(
            f"wrote {len(ctx.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    new, suppressed, stale = baseline.filter(ctx.findings)
    new = sort_findings(new)

    report = {
        "checked_files": len(files),
        "rules": sorted(checker.rule for checker in checkers),
        "findings": [finding.as_dict() for finding in new],
        "baselined": [finding.as_dict() for finding in suppressed],
        "stale_baseline_entries": [entry.as_dict() for entry in stale],
        "pragma_suppressed": ctx.suppressed_count,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")

    if args.fmt == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.render())
        for entry in stale:
            print(
                f"stale baseline entry (fixed? remove it): "
                f"[{entry.rule}] {entry.file}: {entry.message}"
            )
        summary = (
            f"repro lint: {len(files)} files, "
            f"{len(new)} finding(s)"
        )
        if suppressed:
            summary += f", {len(suppressed)} baselined"
        if ctx.suppressed_count:
            summary += f", {ctx.suppressed_count} pragma-suppressed"
        print(summary)

    return 1 if new or stale else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (used by the ``scripts/lint_slots.py`` shim
    and handy for ``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint", description=__doc__.splitlines()[0]
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(list(argv) if argv is not None else None))


if __name__ == "__main__":
    sys.exit(main())
