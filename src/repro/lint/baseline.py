"""The committed findings baseline.

The baseline exists so the suite can be adopted on a tree with known,
consciously-deferred findings without blocking CI — but the policy of
this repository is to *fix* findings, so the shipped baseline is empty
and should stay that way. Entries match on ``(rule, file, message)``
(no line numbers), surviving unrelated edits; a baselined finding that
disappears from the tree is reported as stale so the file shrinks
monotonically.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, List, Set, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised for a malformed baseline file."""


class Baseline:
    """A set of grandfathered findings loaded from / saved to JSON."""

    def __init__(self, findings: Iterable[Finding] = ()) -> None:
        self.findings: List[Finding] = list(findings)

    def keys(self) -> Set[Tuple[str, str, str]]:
        return {finding.key() for finding in self.findings}

    def filter(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Finding]]:
        """Split ``findings`` into (new, suppressed); also return the
        baseline entries no longer present in the tree (stale)."""
        keys = self.keys()
        new: List[Finding] = []
        suppressed: List[Finding] = []
        seen: Set[Tuple[str, str, str]] = set()
        for finding in findings:
            if finding.key() in keys:
                suppressed.append(finding)
                seen.add(finding.key())
            else:
                new.append(finding)
        stale = [
            entry for entry in self.findings if entry.key() not in seen
        ]
        return new, suppressed, stale

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise BaselineError(
                f"{path}: expected an object with a 'findings' list"
            )
        version = payload.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version {version!r}"
            )
        return cls(
            Finding.from_dict(entry) for entry in payload["findings"]
        )

    def save(self, path: pathlib.Path, comment: str = "") -> None:
        payload = {
            "version": BASELINE_VERSION,
            "comment": comment
            or (
                "Grandfathered repro-lint findings. Policy: fix findings "
                "instead of adding entries; this file should stay empty."
            ),
            "findings": [
                finding.as_dict()
                for finding in sorted(
                    self.findings, key=lambda f: (f.file, f.rule, f.message)
                )
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
