"""Rule ``fsm-discipline`` — machine state changes only through tables.

The FSM refactor's whole value is that ``repro verify`` model-checks
the transition tables statically: reachability, liveness, determinism,
bounded retry amplification. Those guarantees hold only while the
tables are the *single* source of control flow, so this rule flags the
two ways code can silently route around them:

* **Ad-hoc state writes.** Assigning ``fsm_state`` anywhere outside
  ``repro/fsm/`` bypasses the compiled driver (guards not consulted,
  actions not run, terminal no-op semantics lost). Actions mutate task
  data and dispatch events; only ``CompiledMachine`` commits states.
* **Table mutation.** Appending to / rebinding / item-assigning a
  ``transitions`` table outside ``repro/fsm/`` changes the machine
  behind the verifier's back — the graph CI checked is no longer the
  graph that runs. Tables are frozen module-level data; behavior
  changes are table edits, reviewed as such.
"""

from __future__ import annotations

import ast

from repro.lint.driver import Checker, LintContext, SourceFile

FSM_PREFIX = "repro/fsm/"

#: Container methods that mutate a transition table in place.
MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "__setitem__"}
)

TABLE_NAMES = frozenset({"transitions", "TRANSITIONS", "_table"})


def _in_fsm_package(file: SourceFile) -> bool:
    return FSM_PREFIX in file.rel or file.rel.startswith("fsm/")


def _names_table(node: ast.expr) -> bool:
    """True when the expression refers to a transition table."""
    if isinstance(node, ast.Name):
        return node.id in TABLE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in TABLE_NAMES
    return False


class FsmDisciplineChecker(Checker):
    rule = "fsm-discipline"
    node_types = (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Call)

    def visit(self, ctx: LintContext, file: SourceFile, node: ast.AST) -> None:
        if _in_fsm_package(file):
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "fsm_state":
                    ctx.report(
                        self.rule,
                        file,
                        node,
                        "write to `fsm_state` outside `repro/fsm/`; only "
                        "the compiled driver commits states — dispatch an "
                        "event instead",
                    )
                elif (
                    isinstance(target, ast.Attribute)
                    and target.attr in TABLE_NAMES
                ):
                    ctx.report(
                        self.rule,
                        file,
                        node,
                        f"rebinding transition table `{target.attr}` "
                        f"outside `repro/fsm/`; tables are frozen data "
                        f"the verifier model-checks — edit the table "
                        f"module instead",
                    )
                elif isinstance(target, ast.Subscript) and _names_table(
                    target.value
                ):
                    ctx.report(
                        self.rule,
                        file,
                        node,
                        "item assignment into a transition table outside "
                        "`repro/fsm/`; tables are frozen data the "
                        "verifier model-checks",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and _names_table(func.value)
            ):
                ctx.report(
                    self.rule,
                    file,
                    node,
                    f"`.{func.attr}()` on a transition table outside "
                    f"`repro/fsm/`; tables are frozen data the verifier "
                    f"model-checks — edit the table module instead",
                )
