"""Rule ``hot-path-slots`` — records built in the event loop stay slotted.

Objects created inside simulator callbacks (per packet, per query, per
retry) dominate the allocation profile of a DDoS run; ``__slots__``
keeps them small and their attribute access fast. The old
``scripts/lint_slots.py`` pinned a hand-maintained registry of class
names; this checker *discovers* the set instead: any class defined in
the linted tree that is instantiated inside a callback-path function
(see :mod:`repro.lint.callpaths`) must declare ``__slots__`` — directly,
or via ``@dataclass(slots=True)``.

Exempt automatically: exception classes (raised, not accumulated) and
``Enum`` subclasses (module-level singletons). Anything else that is
intentionally dict-backed takes a pragma on its ``class`` line, with a
comment saying why.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from repro.lint.callpaths import callback_names, hot_functions
from repro.lint.driver import Checker, LintContext, SourceFile
from repro.lint.pragmas import allows

EXEMPT_BASE_SUFFIXES = ("Error", "Exception", "Warning", "Enum", "NamedTuple")


def class_declares_slots(node: ast.ClassDef) -> bool:
    """True for a literal ``__slots__`` or ``@dataclass(slots=True)``."""
    for statement in node.body:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    return False


def _is_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        if name is not None and name.endswith(EXEMPT_BASE_SUFFIXES):
            return True
    return False


class HotPathSlotsChecker(Checker):
    rule = "hot-path-slots"
    node_types = (ast.ClassDef,)

    def __init__(self) -> None:
        #: class name -> (file, node, has_slots, exempt)
        self._classes: Dict[str, Tuple[SourceFile, ast.ClassDef, bool, bool]] = {}

    def visit(self, ctx: LintContext, file: SourceFile, node: ast.AST) -> None:
        assert isinstance(node, ast.ClassDef)
        # First definition wins; a name collision would only make the
        # check less precise, never unsound, and the tree has none.
        self._classes.setdefault(
            node.name,
            (file, node, class_declares_slots(node), _is_exempt(node)),
        )

    def finalize(self, ctx: LintContext) -> None:
        names = callback_names(ctx.files)
        reported = set()
        for file in ctx.files:
            for function in hot_functions(file, names):
                for node in ast.walk(function):
                    if not isinstance(node, ast.Call):
                        continue
                    class_name = None
                    if isinstance(node.func, ast.Name):
                        class_name = node.func.id
                    elif isinstance(node.func, ast.Attribute):
                        class_name = node.func.attr
                    if class_name is None or class_name in reported:
                        continue
                    entry = self._classes.get(class_name)
                    if entry is None:
                        continue
                    def_file, def_node, has_slots, exempt = entry
                    if has_slots or exempt:
                        continue
                    # A pragma at the instantiation site silences just
                    # that site; one on the class line covers them all.
                    if allows(file.pragmas, node.lineno, self.rule):
                        ctx.suppressed_count += 1
                        continue
                    reported.add(class_name)
                    function_name = getattr(function, "name", "<lambda>")
                    ctx.report(
                        self.rule,
                        def_file,
                        def_node,
                        f"class `{class_name}` is instantiated on the event-"
                        f"loop callback path ({file.rel}:{node.lineno} in "
                        f"`{function_name}`) but declares no __slots__",
                    )
