"""Rule ``rng-streams`` — randomness flows only through named streams.

:class:`repro.simcore.rng.RandomStreams` derives statistically
independent ``random.Random`` instances from one master seed, keyed by
name — the property that lets a new consumer draw randomness without
perturbing existing streams, keeping committed calibration numbers
stable across code evolution.

A *freshly-seeded* instance breaks that contract two ways: an unseeded
``random.Random()`` is OS-entropy nondeterminism, and a
constant-literal seed (``random.Random(0)``) silently correlates with
every other component that picked the same constant. Deriving a child
generator from an existing stream (``random.Random(rng.getrandbits(64))``)
or from a caller-supplied variable seed is fine — the seed's provenance
is then the named-stream graph.
"""

from __future__ import annotations

import ast

from repro.lint.driver import Checker, LintContext, SourceFile


def _is_random_random(node: ast.Call, imports) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "Random":
        base = func.value
        return (
            isinstance(base, ast.Name)
            and imports.get(base.id, "").split(".")[0] == "random"
        )
    if isinstance(func, ast.Name):
        return imports.get(func.id) == "random.Random"
    return False


class RngStreamsChecker(Checker):
    rule = "rng-streams"
    node_types = (ast.Call,)

    def visit(self, ctx: LintContext, file: SourceFile, node: ast.AST) -> None:
        assert isinstance(node, ast.Call)
        if not _is_random_random(node, file.imports):
            return
        if not node.args and not node.keywords:
            ctx.report(
                self.rule,
                file,
                node,
                "`random.Random()` with no seed draws OS entropy; use a "
                "named stream from `repro.simcore.rng.RandomStreams`",
            )
        elif (
            len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
        ):
            ctx.report(
                self.rule,
                file,
                node,
                f"`random.Random({node.args[0].value!r})` is a "
                f"constant-seeded instance that can correlate with other "
                f"components; derive it from a named stream "
                f"(`streams.stream(name)` or `rng.getrandbits(64)`)",
            )
