"""The checker registry.

``all_checkers()`` returns fresh instances (checkers are stateful across
a run); ``RULES`` maps rule ids to checker classes for ``--rules``
subsetting and for the docs.
"""

from typing import Dict, List, Optional, Sequence, Type

from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.eventloop import EventLoopChecker
from repro.lint.checkers.fsm import FsmDisciplineChecker
from repro.lint.checkers.rng_streams import RngStreamsChecker
from repro.lint.checkers.slots import HotPathSlotsChecker
from repro.lint.checkers.spec_hygiene import SpecHygieneChecker
from repro.lint.driver import Checker

RULES: Dict[str, Type[Checker]] = {
    DeterminismChecker.rule: DeterminismChecker,
    SpecHygieneChecker.rule: SpecHygieneChecker,
    RngStreamsChecker.rule: RngStreamsChecker,
    HotPathSlotsChecker.rule: HotPathSlotsChecker,
    EventLoopChecker.rule: EventLoopChecker,
    FsmDisciplineChecker.rule: FsmDisciplineChecker,
}


def all_checkers(rules: Optional[Sequence[str]] = None) -> List[Checker]:
    """Instantiate the requested checkers (all six by default)."""
    if rules is None:
        selected = list(RULES)
    else:
        unknown = sorted(set(rules) - set(RULES))
        if unknown:
            raise ValueError(
                f"unknown lint rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULES))}"
            )
        selected = list(rules)
    return [RULES[rule]() for rule in selected]
