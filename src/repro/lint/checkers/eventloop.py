"""Rule ``event-loop`` — callbacks respect the kernel's API boundary.

Two invariants keep the simulator's hot loop simple and its guarantees
strong:

* **No reentrancy.** ``Simulator.run()``/``step()`` raise on reentrant
  entry at runtime; this rule catches the mistake statically, flagging
  ``…sim.run(...)`` / ``…sim.step(...)`` calls made *inside* a
  callback-path function. Experiments drive the clock from the outside;
  callbacks schedule, they never pump.
* **Queue internals stay in the kernel.** The ``(time, seq)`` ordering
  key, the lazy-deletion live/dead counts, and the ``Event.cancel``
  span hook are internal contracts of ``repro.simcore.events`` — and
  since the queue became pluggable (heap / timer wheel / calendar /
  native), so are every backend's private structures. Code anywhere
  else that touches ``._heap``, reaches into a queue's backend state
  (``sim._queue._live``, ``…_queue._buckets``, …), imports ``heapq``,
  or assigns ``sim.now`` bypasses the public ``push``/``pop_due``/
  ``depth``/``stats`` API and silently breaks those contracts — or
  breaks outright when the configured backend changes.
"""

from __future__ import annotations

import ast

from repro.lint.callpaths import callback_names, hot_functions
from repro.lint.driver import Checker, LintContext, SourceFile

KERNEL_PREFIX = "repro/simcore/"

SIM_RECEIVER_NAMES = frozenset({"sim", "_sim", "simulator"})

#: Private attributes of the event-queue backends (heap / timer wheel /
#: calendar / native). ``_heap`` is flagged on any receiver (its name is
#: unambiguous); the rest only when the receiver itself looks like an
#: event queue, so e.g. a rate limiter's own ``self._buckets`` is fine.
QUEUE_INTERNAL_ATTRS = frozenset(
    {
        "_live",
        "_dead",
        "_seq",
        "_buckets",
        "_days",
        "_width",
        "_day",
        "_active",
        "_apos",
        "_loads",
        "_loaded",
        "_inner",
        "_push_fn",
        "_pop_due_fn",
        "_peek_fn",
        "_drain_fn",
        "_sched_fn",
    }
)

QUEUE_RECEIVER_NAMES = frozenset({"queue", "_queue", "event_queue"})


def _receiver_is_queue(node: ast.expr) -> bool:
    """True for ``queue``, ``sim._queue``, ``self._queue``…"""
    if isinstance(node, ast.Name):
        return node.id in QUEUE_RECEIVER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in QUEUE_RECEIVER_NAMES
    return False


def _receiver_is_simulator(node: ast.expr) -> bool:
    """True for ``sim``, ``self.sim``, ``self._sim``, ``testbed.sim``…"""
    if isinstance(node, ast.Name):
        return node.id in SIM_RECEIVER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in SIM_RECEIVER_NAMES
    return False


def _in_kernel(file: SourceFile) -> bool:
    return KERNEL_PREFIX in file.rel or file.rel.startswith("simcore/")


class EventLoopChecker(Checker):
    rule = "event-loop"
    node_types = (ast.Attribute, ast.Import, ast.ImportFrom, ast.Assign)

    # ------------------------------------------------------------------
    # Everywhere (except the kernel itself): heap/clock encapsulation.
    # ------------------------------------------------------------------
    def visit(self, ctx: LintContext, file: SourceFile, node: ast.AST) -> None:
        if _in_kernel(file):
            return
        if isinstance(node, ast.Attribute):
            if node.attr == "_heap":
                ctx.report(
                    self.rule,
                    file,
                    node,
                    "direct access to the event queue's `_heap`; schedule "
                    "and cancel through the `Event` API instead",
                )
            elif node.attr in QUEUE_INTERNAL_ATTRS and _receiver_is_queue(
                node.value
            ):
                ctx.report(
                    self.rule,
                    file,
                    node,
                    f"direct access to queue backend internal "
                    f"`{node.attr}`; use the public `depth()`/`stats()` "
                    f"API — backend state is private and varies per "
                    f"backend",
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "heapq":
                    ctx.report(
                        self.rule,
                        file,
                        node,
                        "`heapq` outside `repro.simcore` — event ordering "
                        "must go through the simulator's queue",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "heapq":
                ctx.report(
                    self.rule,
                    file,
                    node,
                    "`heapq` outside `repro.simcore` — event ordering "
                    "must go through the simulator's queue",
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "now"
                    and _receiver_is_simulator(target.value)
                ):
                    ctx.report(
                        self.rule,
                        file,
                        node,
                        "assignment to `sim.now`; only the kernel advances "
                        "the clock",
                    )

    # ------------------------------------------------------------------
    # Callback paths only: no reentrant pumping.
    # ------------------------------------------------------------------
    def finalize(self, ctx: LintContext) -> None:
        names = callback_names(ctx.files)
        for file in ctx.files:
            if _in_kernel(file):
                continue
            for function in hot_functions(file, names):
                for node in ast.walk(function):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("run", "step")
                        and _receiver_is_simulator(node.func.value)
                    ):
                        function_name = getattr(function, "name", "<lambda>")
                        ctx.report(
                            self.rule,
                            file,
                            node,
                            f"`{node.func.attr}()` called on the simulator "
                            f"inside callback-path function "
                            f"`{function_name}`; run()/step() are not "
                            f"reentrant — schedule events instead",
                        )
