"""Rule ``event-loop`` — callbacks respect the kernel's API boundary.

Two invariants keep the simulator's hot loop simple and its guarantees
strong:

* **No reentrancy.** ``Simulator.run()``/``step()`` raise on reentrant
  entry at runtime; this rule catches the mistake statically, flagging
  ``…sim.run(...)`` / ``…sim.step(...)`` calls made *inside* a
  callback-path function. Experiments drive the clock from the outside;
  callbacks schedule, they never pump.
* **Heap mutation stays in the kernel.** The ``(time, seq, event)``
  heap layout, the lazy-deletion live count, and the ``Event.cancel``
  span hook are internal contracts of ``repro.simcore.events``. Code
  anywhere else that touches ``._heap``, imports ``heapq``, or assigns
  ``sim.now`` bypasses the ``Event`` API and silently breaks them.
"""

from __future__ import annotations

import ast

from repro.lint.callpaths import callback_names, hot_functions
from repro.lint.driver import Checker, LintContext, SourceFile

KERNEL_PREFIX = "repro/simcore/"

SIM_RECEIVER_NAMES = frozenset({"sim", "_sim", "simulator"})


def _receiver_is_simulator(node: ast.expr) -> bool:
    """True for ``sim``, ``self.sim``, ``self._sim``, ``testbed.sim``…"""
    if isinstance(node, ast.Name):
        return node.id in SIM_RECEIVER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in SIM_RECEIVER_NAMES
    return False


def _in_kernel(file: SourceFile) -> bool:
    return KERNEL_PREFIX in file.rel or file.rel.startswith("simcore/")


class EventLoopChecker(Checker):
    rule = "event-loop"
    node_types = (ast.Attribute, ast.Import, ast.ImportFrom, ast.Assign)

    # ------------------------------------------------------------------
    # Everywhere (except the kernel itself): heap/clock encapsulation.
    # ------------------------------------------------------------------
    def visit(self, ctx: LintContext, file: SourceFile, node: ast.AST) -> None:
        if _in_kernel(file):
            return
        if isinstance(node, ast.Attribute):
            if node.attr == "_heap":
                ctx.report(
                    self.rule,
                    file,
                    node,
                    "direct access to the event queue's `_heap`; schedule "
                    "and cancel through the `Event` API instead",
                )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "heapq":
                    ctx.report(
                        self.rule,
                        file,
                        node,
                        "`heapq` outside `repro.simcore` — event ordering "
                        "must go through the simulator's queue",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "heapq":
                ctx.report(
                    self.rule,
                    file,
                    node,
                    "`heapq` outside `repro.simcore` — event ordering "
                    "must go through the simulator's queue",
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "now"
                    and _receiver_is_simulator(target.value)
                ):
                    ctx.report(
                        self.rule,
                        file,
                        node,
                        "assignment to `sim.now`; only the kernel advances "
                        "the clock",
                    )

    # ------------------------------------------------------------------
    # Callback paths only: no reentrant pumping.
    # ------------------------------------------------------------------
    def finalize(self, ctx: LintContext) -> None:
        names = callback_names(ctx.files)
        for file in ctx.files:
            if _in_kernel(file):
                continue
            for function in hot_functions(file, names):
                for node in ast.walk(function):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("run", "step")
                        and _receiver_is_simulator(node.func.value)
                    ):
                        function_name = getattr(function, "name", "<lambda>")
                        ctx.report(
                            self.rule,
                            file,
                            node,
                            f"`{node.func.attr}()` called on the simulator "
                            f"inside callback-path function "
                            f"`{function_name}`; run()/step() are not "
                            f"reentrant — schedule events instead",
                        )
