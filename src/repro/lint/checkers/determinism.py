"""Rule ``determinism`` — no wall clocks, global RNG, or set iteration.

The jobs=1 vs jobs=4 identity and the warm-cache replay guarantee both
require every run to be a pure function of its request. Three classes of
leak break that silently:

* **Wall clocks** (``time.time``, ``time.perf_counter``,
  ``datetime.now``, …): simulation code must read ``sim.now``. The
  profiler and the report footer measure real elapsed time on purpose —
  those sites carry inline pragmas.
* **Global RNG** (module-level ``random.*`` draws, ``os.urandom``,
  ``uuid.uuid4``, ``secrets``): randomness must come from a named
  :class:`repro.simcore.rng.RandomStreams` stream.
* **Set iteration**: hash randomization makes ``for x in {…}`` order
  vary across interpreter runs; iterate a sorted or insertion-ordered
  container instead. (Dict iteration is insertion-ordered and fine.)
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet

from repro.lint.driver import Checker, LintContext, SourceFile

#: module -> attribute names whose *call or aliasing* is nondeterministic.
WALL_CLOCK_ATTRS: Dict[str, FrozenSet[str]] = {
    "time": frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
        }
    ),
    "datetime.datetime": frozenset({"now", "utcnow", "today"}),
    "datetime.date": frozenset({"today"}),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}

#: ``random.<fn>`` module-level draws (the shared global Mersenne
#: Twister). ``random.Random`` itself is the rng-streams rule's concern.
GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "expovariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
        "triangular",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

NONDETERMINISTIC_MODULES = frozenset({"secrets"})


def _dotted(node: ast.expr, imports: Dict[str, str]) -> str:
    """Resolve an attribute chain's base through the import table.

    ``_walltime.perf_counter`` -> ``time.perf_counter`` when the file did
    ``import time as _walltime``; unresolvable chains return ``""``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    origin = imports.get(node.id)
    if origin is None:
        return ""
    parts.append(origin)
    return ".".join(reversed(parts))


class DeterminismChecker(Checker):
    rule = "determinism"
    node_types = (
        ast.Attribute,
        ast.ImportFrom,
        ast.Import,
        ast.For,
        ast.comprehension,
    )

    def visit(self, ctx: LintContext, file: SourceFile, node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            self._check_attribute(ctx, file, node)
        elif isinstance(node, ast.ImportFrom):
            self._check_import_from(ctx, file, node)
        elif isinstance(node, ast.Import):
            self._check_import(ctx, file, node)
        elif isinstance(node, ast.For):
            self._check_iteration(ctx, file, node.iter, node.lineno)
        elif isinstance(node, ast.comprehension):
            self._check_iteration(
                ctx, file, node.iter, getattr(node.iter, "lineno", 0)
            )

    # ------------------------------------------------------------------
    def _check_attribute(
        self, ctx: LintContext, file: SourceFile, node: ast.Attribute
    ) -> None:
        dotted = _dotted(node, file.imports)
        if not dotted:
            return
        prefix, _, attr = dotted.rpartition(".")
        wall = WALL_CLOCK_ATTRS.get(prefix)
        if wall is not None and attr in wall:
            ctx.report(
                self.rule,
                file,
                node,
                f"wall-clock/nondeterministic call `{dotted}`; simulation "
                f"code must derive time from `sim.now` and randomness from "
                f"named RNG streams",
            )
            return
        if prefix == "random" and attr in GLOBAL_RANDOM_FNS:
            ctx.report(
                self.rule,
                file,
                node,
                f"module-level `random.{attr}` draws from the shared global "
                f"RNG; use a named stream from `repro.simcore.rng`",
            )

    def _check_import(
        self, ctx: LintContext, file: SourceFile, node: ast.Import
    ) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] in NONDETERMINISTIC_MODULES:
                ctx.report(
                    self.rule,
                    file,
                    node,
                    f"import of nondeterministic module `{alias.name}`",
                )

    def _check_import_from(
        self, ctx: LintContext, file: SourceFile, node: ast.ImportFrom
    ) -> None:
        if node.level or node.module is None:
            return
        if node.module.split(".")[0] in NONDETERMINISTIC_MODULES:
            ctx.report(
                self.rule,
                file,
                node,
                f"import of nondeterministic module `{node.module}`",
            )
            return
        wall = WALL_CLOCK_ATTRS.get(node.module)
        for alias in node.names:
            if wall is not None and alias.name in wall:
                ctx.report(
                    self.rule,
                    file,
                    node,
                    f"imports wall-clock `{node.module}.{alias.name}` by "
                    f"name; simulation code must use `sim.now`",
                )
            if node.module == "random" and alias.name in GLOBAL_RANDOM_FNS:
                ctx.report(
                    self.rule,
                    file,
                    node,
                    f"imports module-level `random.{alias.name}` (shared "
                    f"global RNG); use a named stream",
                )

    def _check_iteration(
        self, ctx: LintContext, file: SourceFile, iter_expr: ast.expr, line: int
    ) -> None:
        if isinstance(iter_expr, (ast.Set, ast.SetComp)):
            ctx.report(
                self.rule,
                file,
                line,
                "iteration over a set literal/comprehension is hash-order "
                "dependent; sort it or use a list/dict",
            )
        elif (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id in ("set", "frozenset")
        ):
            ctx.report(
                self.rule,
                file,
                line,
                f"iteration over `{iter_expr.func.id}(...)` is hash-order "
                f"dependent; wrap in `sorted(...)`",
            )
