"""Rule ``spec-hygiene`` — every spec field reaches the disk-cache key.

The content-addressed result cache is only sound if a run's key covers
*everything* that determines its output. Spec dataclasses are that
contract, so this rule enforces, structurally:

1. Every class in a ``*/spec.py`` module (plus ``TestbedConfig`` and
   ``ObsSpec``, the two spec-shaped classes living elsewhere) is a
   ``@dataclass(frozen=True)`` — mutable specs can drift after the key
   is computed.
2. Class-body assignments are *annotated*. A bare ``name = value`` is a
   class attribute, not a dataclass field: it silently skips
   ``__init__``, ``dataclasses.fields`` and therefore the cache key.
   (Dunder names like ``__test__`` are exempt.) ``ClassVar`` fields are
   flagged for the same reason.
3. No field opts out of comparison (``field(compare=False)`` /
   ``hash=False``) — the canonical encoder walks ``dataclasses.fields``,
   and an opted-out field is a red flag that someone intends to hide it.
4. The key builder (``repro/runner/cache.py::_canonical``) still
   enumerates ``dataclasses.fields(value)`` generically, with no filter
   — so field coverage cannot be narrowed in one place while specs grow
   in another.
5. Every spec class is *reachable* from ``RunRequest`` or
   ``TestbedConfig`` field annotations; an orphaned spec never makes it
   into any key.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.lint.driver import Checker, LintContext, SourceFile

#: Spec-shaped classes living outside a ``spec.py`` module:
#: (file suffix, class name).
EXTRA_SPEC_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("core/testbed.py", "TestbedConfig"),
    ("obs/config.py", "ObsSpec"),
)

#: Anchor files for the reachability and key-builder checks.
KEY_BUILDER_SUFFIX = "runner/cache.py"
REQUEST_SUFFIX = "runner/executor.py"

#: Classes exempt from the reachability requirement (they are the
#: wiring *targets* the requests get expanded into, not riders).
REACHABILITY_EXEMPT = frozenset({"TestbedConfig"})


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _dataclass_decorator(node: ast.ClassDef):
    """The ``@dataclass`` / ``@dataclass(...)`` decorator node, if any."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return decorator
    return None


def _is_frozen(decorator) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return isinstance(target, ast.Name) and target.id == "ClassVar"


class SpecHygieneChecker(Checker):
    rule = "spec-hygiene"
    node_types = (ast.ClassDef,)

    def __init__(self) -> None:
        #: spec class name -> (file, ClassDef) for finalize checks.
        self._spec_classes: Dict[str, Tuple[SourceFile, ast.ClassDef]] = {}

    # ------------------------------------------------------------------
    def _in_scope(self, file: SourceFile, node: ast.ClassDef) -> bool:
        rel = file.rel
        if rel.endswith("/spec.py") or rel == "spec.py":
            return True
        return any(
            rel.endswith(suffix) and node.name == class_name
            for suffix, class_name in EXTRA_SPEC_CLASSES
        )

    def visit(self, ctx: LintContext, file: SourceFile, node: ast.AST) -> None:
        assert isinstance(node, ast.ClassDef)
        if not self._in_scope(file, node):
            return
        self._spec_classes[node.name] = (file, node)
        decorator = _dataclass_decorator(node)
        if decorator is None:
            ctx.report(
                self.rule,
                file,
                node,
                f"spec class `{node.name}` is not a dataclass; the cache "
                f"key builder only sees `dataclasses.fields`",
            )
        elif not _is_frozen(decorator):
            ctx.report(
                self.rule,
                file,
                node,
                f"spec class `{node.name}` must be `@dataclass(frozen=True)` "
                f"so it cannot drift after its cache key is computed",
            )
        for statement in node.body:
            self._check_statement(ctx, file, node, statement)

    def _check_statement(
        self,
        ctx: LintContext,
        file: SourceFile,
        node: ast.ClassDef,
        statement: ast.stmt,
    ) -> None:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and not _is_dunder(target.id):
                    ctx.report(
                        self.rule,
                        file,
                        statement,
                        f"`{node.name}.{target.id}` has no annotation, so it "
                        f"is a class attribute, not a dataclass field — it "
                        f"skips __init__ and the disk-cache key",
                    )
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and _is_classvar(
                statement.annotation
            ):
                ctx.report(
                    self.rule,
                    file,
                    statement,
                    f"`{node.name}.{statement.target.id}` is a ClassVar; "
                    f"ClassVars are excluded from `dataclasses.fields` and "
                    f"therefore from the cache key",
                )
            if statement.value is not None and isinstance(
                statement.value, ast.Call
            ):
                self._check_field_call(ctx, file, node, statement)

    def _check_field_call(
        self,
        ctx: LintContext,
        file: SourceFile,
        node: ast.ClassDef,
        statement: ast.AnnAssign,
    ) -> None:
        call = statement.value
        assert isinstance(call, ast.Call)
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name != "field":
            return
        field_name = (
            statement.target.id
            if isinstance(statement.target, ast.Name)
            else "?"
        )
        for keyword in call.keywords:
            if (
                keyword.arg in ("compare", "hash")
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                ctx.report(
                    self.rule,
                    file,
                    statement,
                    f"`{node.name}.{field_name}` opts out of comparison "
                    f"(`{keyword.arg}=False`); spec fields must stay fully "
                    f"comparable so cache keys cover them",
                )

    # ------------------------------------------------------------------
    # Cross-file checks.
    # ------------------------------------------------------------------
    def finalize(self, ctx: LintContext) -> None:
        self._check_key_builder(ctx)
        self._check_reachability(ctx)

    def _check_key_builder(self, ctx: LintContext) -> None:
        candidates = ctx.files_matching(KEY_BUILDER_SUFFIX)
        if not candidates:
            return
        file = candidates[0]
        canonical = None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "_canonical":
                canonical = node
                break
        if canonical is None:
            ctx.report(
                self.rule,
                file,
                1,
                "cache key builder `_canonical` is missing; nothing "
                "guarantees spec fields reach the disk-cache key",
            )
            return
        fields_iters = [
            node
            for node in ast.walk(canonical)
            if isinstance(node, ast.Call)
            and (
                (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fields"
                )
                or (
                    isinstance(node.func, ast.Name) and node.func.id == "fields"
                )
            )
        ]
        if not fields_iters:
            ctx.report(
                self.rule,
                file,
                canonical,
                "`_canonical` no longer enumerates `dataclasses.fields(...)`;"
                " spec fields are not guaranteed to reach the cache key",
            )
            return
        fields_ids = {id(call) for call in fields_iters}
        for node in ast.walk(canonical):
            if isinstance(
                node, (ast.DictComp, ast.ListComp, ast.SetComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if id(generator.iter) in fields_ids and generator.ifs:
                        ctx.report(
                            self.rule,
                            file,
                            node,
                            "`_canonical` filters `dataclasses.fields(...)`; "
                            "every spec field must participate in the cache "
                            "key unconditionally",
                        )
            elif isinstance(node, ast.For) and id(node.iter) in fields_ids:
                for statement in ast.walk(node):
                    if isinstance(statement, (ast.Continue, ast.Break)):
                        ctx.report(
                            self.rule,
                            file,
                            node,
                            "`_canonical` skips some `dataclasses.fields`; "
                            "every spec field must participate in the cache "
                            "key unconditionally",
                        )
                        break

    def _annotation_names(self, class_node: ast.ClassDef) -> Set[str]:
        names: Set[str] = set()
        for statement in class_node.body:
            if isinstance(statement, ast.AnnAssign):
                for node in ast.walk(statement.annotation):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
                    elif isinstance(node, ast.Constant) and isinstance(
                        node.value, str
                    ):
                        names.add(node.value.strip("'\" "))
        return names

    def _check_reachability(self, ctx: LintContext) -> None:
        anchors: List[ast.ClassDef] = []
        for suffix, class_name in (
            (REQUEST_SUFFIX, "RunRequest"),
            ("core/testbed.py", "TestbedConfig"),
        ):
            for file in ctx.files_matching(suffix):
                for node in ast.walk(file.tree):
                    if (
                        isinstance(node, ast.ClassDef)
                        and node.name == class_name
                    ):
                        anchors.append(node)
        if not anchors:
            return  # fixture runs without the anchor files
        reachable: Set[str] = set()
        for anchor in anchors:
            reachable |= self._annotation_names(anchor)
        for name, (file, node) in sorted(self._spec_classes.items()):
            if name in REACHABILITY_EXEMPT or name in reachable:
                continue
            ctx.report(
                self.rule,
                file,
                node,
                f"spec class `{name}` is not referenced by any RunRequest/"
                f"TestbedConfig field annotation, so its fields never reach "
                f"the disk-cache key",
            )
