"""``repro lint`` — AST-based static analysis for reproduction invariants.

The headline guarantees of this reproduction (byte-identical output for
``jobs=1`` vs ``jobs=N``, disk-cache keys that cover every spec field,
named RNG streams per subsystem, ``__slots__`` on per-packet records)
are runtime properties that a single missed line can silently break.
This package enforces them statically, at CI time:

* :mod:`repro.lint.driver` — single-pass AST visitor driver shared by
  every checker, with per-line ``# repro-lint: allow[rule]`` pragmas.
* :mod:`repro.lint.baseline` — a committed baseline of grandfathered
  findings (shipped empty; new findings always fail).
* :mod:`repro.lint.checkers` — the five rules: ``determinism``,
  ``spec-hygiene``, ``rng-streams``, ``hot-path-slots``, ``event-loop``.
* :mod:`repro.lint.cli` — the ``repro lint`` subcommand (text/JSON).
"""

from repro.lint.baseline import Baseline
from repro.lint.checkers import all_checkers
from repro.lint.driver import Checker, LintContext, SourceFile, run_checkers
from repro.lint.findings import Finding

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintContext",
    "SourceFile",
    "all_checkers",
    "run_checkers",
]
