"""Per-line suppression pragmas.

Syntax, anywhere in a comment::

    something_noisy()  # repro-lint: allow[determinism]
    # repro-lint: allow[hot-path-slots,event-loop]   (standalone form)
    wall = time.time()

The same-line form suppresses findings reported on that line. The
standalone form (a line holding nothing but the comment) also covers the
*next* line, so pragmas survive formatters that refuse long lines.
``allow[*]`` suppresses every rule — reserve it for generated code.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*allow\[([^\]]*)\]")

_ALL = frozenset(["*"])


def parse_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule names allowed on them."""
    allowed: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        if not rules:
            continue
        allowed[lineno] = allowed.get(lineno, frozenset()) | rules
        # Standalone pragma comment: extend coverage to the next line.
        if text.lstrip().startswith("#"):
            allowed[lineno + 1] = allowed.get(lineno + 1, frozenset()) | rules
    return allowed


def allows(
    pragmas: Dict[int, FrozenSet[str]], line: int, rule: str
) -> bool:
    """True when a pragma on ``line`` suppresses ``rule``."""
    rules = pragmas.get(line)
    if rules is None:
        return False
    return rule in rules or "*" in rules
