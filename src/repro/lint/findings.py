"""The ``Finding`` record every checker emits.

A finding is identified for baseline purposes by ``(rule, file, message)``
— deliberately *not* by line number, so unrelated edits above a
grandfathered finding do not resurrect it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    file: str  # path relative to the source root, POSIX separators
    line: int
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line drift."""
        return (self.rule, self.file, self.message)

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            file=str(payload["file"]),
            line=int(payload.get("line", 0)),  # type: ignore[arg-type]
            message=str(payload["message"]),
        )


def sort_findings(findings) -> list:
    """Deterministic presentation order: file, line, rule, message."""
    return sorted(
        findings,
        key=lambda finding: (
            finding.file,
            finding.line,
            finding.rule,
            finding.message,
        ),
    )
