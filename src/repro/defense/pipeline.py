"""The per-server defense stack and its shared accounting.

Layer order mirrors where each mechanism physically sits in Rizvi et
al.'s layered deployment: **filtering** first (upstream ACLs see the
packet before the server does), then **RRL** (the name server's own
per-source accounting — applied at query admission, since every UDP
query maps to exactly one response), then **capacity** (the bounded
service queue). TCP is exempt from RRL by design: that is the escape
hatch that makes SLIP'd clients recover.

One :class:`DefenseStack` per testbed owns the shared pieces — the
source filter (verdicts must agree across replicas), the ground-truth
attacker set, and the aggregate :class:`DefenseStats` — and mints one
:class:`DefensePipeline` per authoritative server, each with its own
RRL table and service queue (per-replica state, like real deployments).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.defense.capacity import ServiceCapacity
from repro.defense.filter import SourceFilter
from repro.defense.rrl import DROP, SLIP, ResponseRateLimiter
from repro.defense.spec import DefenseSpec

#: Actions a pipeline can return for an arriving query.
ACTION_SERVE = "serve"
ACTION_SLIP = "slip"
ACTION_DROP_FILTERED = "drop_filtered"
ACTION_DROP_RRL = "drop_rrl"
ACTION_DROP_CAPACITY = "drop_capacity"


class DefenseStats:
    """Aggregate defense counters, split legit vs attacker.

    One instance is shared by every pipeline in a testbed; the split
    uses the testbed's ground truth (which sources the attack load
    minted), so the collateral damage of each layer on legitimate
    traffic is directly readable.
    """

    __slots__ = (
        "served_legit",
        "served_attack",
        "filtered_legit",
        "filtered_attack",
        "rate_limited_legit",
        "rate_limited_attack",
        "slipped_legit",
        "slipped_attack",
        "queued_legit",
        "queued_attack",
        "dropped_capacity_legit",
        "dropped_capacity_attack",
    )

    def __init__(self) -> None:
        for slot in self.__slots__:
            setattr(self, slot, 0)

    def as_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def total(self, counter: str) -> int:
        """legit + attack sum for one of the base counter names."""
        return getattr(self, f"{counter}_legit") + getattr(
            self, f"{counter}_attack"
        )

    def __repr__(self) -> str:
        return (
            f"<DefenseStats served={self.total('served')} "
            f"filtered={self.total('filtered')} "
            f"rate_limited={self.total('rate_limited')} "
            f"slipped={self.total('slipped')} "
            f"dropped_capacity={self.total('dropped_capacity')}>"
        )


class DefensePipeline:
    """One authoritative server's view of the defense stack."""

    def __init__(
        self,
        spec: DefenseSpec,
        stats: DefenseStats,
        source_filter: Optional[SourceFilter],
        attacker_sources: set,
    ) -> None:
        self.spec = spec
        self.stats = stats
        self.filter = source_filter
        self._attackers = attacker_sources
        self.rrl: Optional[ResponseRateLimiter] = (
            ResponseRateLimiter(
                spec.rrl_rate,
                spec.rrl_burst,
                spec.rrl_slip,
                spec.rrl_prefix_len,
            )
            if spec.rrl
            else None
        )
        self.capacity: Optional[ServiceCapacity] = (
            ServiceCapacity(spec.qps_capacity, spec.queue_limit)
            if spec.qps_capacity > 0
            else None
        )

    def admit(
        self, source: str, transport: str, now: float
    ) -> Tuple[str, float]:
        """Decide one arriving query's fate: (action, serve-delay)."""
        suffix = "attack" if source in self._attackers else "legit"
        stats = self.stats
        if self.filter is not None and self.filter.blocked(source):
            _bump(stats, "filtered", suffix)
            return ACTION_DROP_FILTERED, 0.0
        if self.rrl is not None and transport == "udp":
            verdict = self.rrl.check(source, now)
            if verdict is SLIP:
                _bump(stats, "slipped", suffix)
                return ACTION_SLIP, 0.0
            if verdict is DROP:
                _bump(stats, "rate_limited", suffix)
                return ACTION_DROP_RRL, 0.0
        delay = 0.0
        if self.capacity is not None:
            admitted = self.capacity.admit(now)
            if admitted is None:
                _bump(stats, "dropped_capacity", suffix)
                return ACTION_DROP_CAPACITY, 0.0
            delay = admitted
            # "Queued" = waited behind other work (beyond its own
            # service time), the §5.1 queueing-latency phenomenon.
            if delay > 1.0 / self.capacity.rate + 1e-12:
                _bump(stats, "queued", suffix)
        _bump(stats, "served", suffix)
        return ACTION_SERVE, delay


def _bump(stats: DefenseStats, counter: str, suffix: str) -> None:
    name = f"{counter}_{suffix}"
    setattr(stats, name, getattr(stats, name) + 1)


class DefenseStack:
    """Everything one testbed shares across its defended servers."""

    def __init__(self, spec: DefenseSpec, rng: random.Random) -> None:
        self.spec = spec
        self.stats = DefenseStats()
        self.attacker_sources: set = set()
        self.filter: Optional[SourceFilter] = (
            SourceFilter(spec.filter_detection, spec.filter_fp, rng)
            if spec.filtering
            else None
        )
        self.pipelines: List[DefensePipeline] = []

    def make_pipeline(self) -> DefensePipeline:
        pipeline = DefensePipeline(
            self.spec, self.stats, self.filter, self.attacker_sources
        )
        self.pipelines.append(pipeline)
        return pipeline

    def mark_attackers(self, sources) -> None:
        """Feed the ground-truth attacker sources (from the attack load)
        to the shared classifier and the legit/attack stat split."""
        self.attacker_sources.update(sources)
        if self.filter is not None:
            self.filter.mark_attackers(sources)


def build_defense(spec: DefenseSpec, rng: random.Random) -> DefenseStack:
    """The testbed's constructor hook (only called when a layer is on)."""
    return DefenseStack(spec, rng)
