"""The frozen defense configuration that rides testbed and run requests.

Frozen and hashable for the same reason :class:`~repro.obs.ObsSpec` is:
it is part of a :class:`~repro.runner.executor.RunRequest` and therefore
of the disk-cache key, so a defended and an undefended run of the same
scenario are different cache artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DefenseSpec:
    """Which defense layers an authoritative deploys, and how tuned.

    All layers default off; a default-constructed spec is equivalent to
    no spec at all (``enabled`` is False and the testbed wires nothing).

    RRL parameters follow BIND's knobs: ``rrl_rate`` is the sustained
    responses/second budget per source prefix, ``rrl_burst`` the bucket
    depth, and ``rrl_slip`` makes every Nth limited response a truncated
    (TC=1) answer instead of a silent drop so real clients can fall back
    to TCP (TCP is never rate-limited). Filtering classifies each source
    once, deterministically for the run: attacker sources are caught with
    probability ``filter_detection`` and legitimate sources are wrongly
    blocked with probability ``filter_fp``. ``qps_capacity`` > 0 turns on
    the finite-capacity service model: queries are served at that rate
    through a bounded FIFO queue of ``queue_limit`` slots and overflow is
    dropped, which is what makes loss under flood *emergent*.
    """

    # --- response-rate limiting (BIND RRL style) ---
    rrl: bool = False
    rrl_rate: float = 20.0
    rrl_burst: float = 40.0
    rrl_slip: int = 2
    rrl_prefix_len: int = 24
    # --- per-source filtering ---
    filtering: bool = False
    filter_detection: float = 0.95
    filter_fp: float = 0.0
    # --- finite-capacity service model (0 = infinitely fast, the paper) ---
    qps_capacity: float = 0.0
    queue_limit: int = 64

    def __post_init__(self) -> None:
        if self.rrl_rate <= 0:
            raise ValueError(f"rrl_rate must be positive: {self.rrl_rate}")
        if self.rrl_burst < 1:
            raise ValueError(f"rrl_burst must be >= 1: {self.rrl_burst}")
        if self.rrl_slip < 0:
            raise ValueError(f"rrl_slip must be >= 0: {self.rrl_slip}")
        if self.rrl_prefix_len not in (8, 16, 24, 32):
            raise ValueError(
                f"rrl_prefix_len must be a whole-octet length: "
                f"{self.rrl_prefix_len}"
            )
        if not 0.0 <= self.filter_detection <= 1.0:
            raise ValueError(
                f"filter_detection out of range: {self.filter_detection}"
            )
        if not 0.0 <= self.filter_fp <= 1.0:
            raise ValueError(f"filter_fp out of range: {self.filter_fp}")
        if self.qps_capacity < 0:
            raise ValueError(
                f"qps_capacity must be non-negative: {self.qps_capacity}"
            )
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1: {self.queue_limit}")

    @property
    def enabled(self) -> bool:
        """True when at least one layer is on (the testbed wires nothing
        otherwise, keeping undefended runs byte-identical)."""
        return self.rrl or self.filtering or self.qps_capacity > 0

    def layers(self) -> tuple:
        """Short names of the active layers, for labels and reports."""
        active = []
        if self.filtering:
            active.append("filter")
        if self.rrl:
            active.append("rrl")
        if self.qps_capacity > 0:
            active.append("capacity")
        return tuple(active)

    def describe(self) -> str:
        if not self.enabled:
            return "no defenses"
        parts = []
        if self.filtering:
            parts.append(
                f"filter(det={self.filter_detection:.0%}, "
                f"fp={self.filter_fp:.1%})"
            )
        if self.rrl:
            parts.append(
                f"rrl({self.rrl_rate:g}/s burst {self.rrl_burst:g} "
                f"slip {self.rrl_slip})"
            )
        if self.qps_capacity > 0:
            parts.append(
                f"capacity({self.qps_capacity:g} qps, "
                f"queue {self.queue_limit})"
            )
        return " + ".join(parts)
