"""Layered authoritative-side DDoS defenses (beyond the paper).

The source paper emulates attacks as an axiomatic inbound drop fraction
and treats the authoritatives as infinitely fast; the defenses it
dissects (caching, retries) all live on the *client* side. This package
models the operator's side of the dike, following Rizvi et al.,
*Defending Root DNS Servers Against DDoS Using Layered Defenses*: three
mechanisms that can be layered independently in front of an
authoritative server —

* **response-rate limiting** (:mod:`repro.defense.rrl`): a BIND
  RRL-style token bucket per source prefix with SLIP/truncate behavior,
  so legitimate clients that get caught can retry over TCP;
* **per-source filtering** (:mod:`repro.defense.filter`): an
  anti-spoofing / hop-count style classifier with a configurable
  detection rate on attacker sources and false-positive rate on
  legitimate ones;
* **finite service capacity** (:mod:`repro.defense.capacity`): a bounded
  queue over a fixed service rate, so a flood *saturates* the server and
  the drop probability becomes emergent rather than configured.

Everything is wired through the frozen :class:`DefenseSpec`, which rides
:class:`~repro.core.testbed.TestbedConfig` and
:class:`~repro.runner.executor.RunRequest` and therefore participates in
the disk-cache key. With the spec absent (the default) no code path
changes and existing experiments are bit-for-bit identical.
"""

from repro.defense.capacity import ServiceCapacity
from repro.defense.filter import SourceFilter
from repro.defense.pipeline import (
    DefensePipeline,
    DefenseStack,
    DefenseStats,
    build_defense,
)
from repro.defense.rrl import ResponseRateLimiter, TokenBucket
from repro.defense.spec import DefenseSpec

__all__ = [
    "DefensePipeline",
    "DefenseSpec",
    "DefenseStack",
    "DefenseStats",
    "ResponseRateLimiter",
    "ServiceCapacity",
    "SourceFilter",
    "TokenBucket",
    "build_defense",
]
