"""Per-source filtering with imperfect detection.

Stands in for the network-side classifiers operators actually deploy
(anti-spoofing ACLs, hop-count filtering, flow classification): each
source address gets a sticky allow/block verdict the first time it is
seen. Attacker-controlled sources are caught with probability
``detection``; legitimate sources are wrongly blocked with probability
``fp_rate`` — the collateral-damage knob the defense study sweeps.

Verdicts are drawn lazily, in packet-arrival order, from a dedicated
RNG stream, so runs stay deterministic and adding the filter never
perturbs any other stream.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Set


class SourceFilter:
    """Sticky per-source allow/block decisions."""

    def __init__(
        self,
        detection: float,
        fp_rate: float,
        rng: random.Random,
    ) -> None:
        self.detection = detection
        self.fp_rate = fp_rate
        self._rng = rng
        self._attackers: Set[str] = set()
        self._verdicts: Dict[str, bool] = {}

    def mark_attackers(self, sources: Iterable[str]) -> None:
        """Register ground-truth attacker sources (the testbed knows
        which addresses the attack load minted, including spoof pools)."""
        self._attackers.update(sources)

    def is_attacker(self, source: str) -> bool:
        return source in self._attackers

    def blocked(self, source: str) -> bool:
        verdict = self._verdicts.get(source)
        if verdict is None:
            if source in self._attackers:
                verdict = self._rng.random() < self.detection
            else:
                verdict = self.fp_rate > 0 and self._rng.random() < self.fp_rate
            self._verdicts[source] = verdict
        return verdict

    def classified_count(self) -> int:
        return len(self._verdicts)
