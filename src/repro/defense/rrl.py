"""Response-rate limiting: a token bucket per source prefix, with SLIP.

Models BIND's RRL closely enough for its client-visible behavior: each
source prefix has a budget of ``rate`` responses per second with a burst
allowance; once the bucket is empty, responses are suppressed — except
that every ``slip``-th suppressed response goes out truncated (TC=1,
empty sections) instead. A real client that receives the slip retries
over TCP, which RRL never limits, so legitimate traffic that shares a
prefix with an abuser degrades to TCP instead of going dark. Spoofed
floods get (at most) small truncated packets back, killing the
amplification the attacker wanted.
"""

from __future__ import annotations

from typing import Dict

#: Verdicts returned by :meth:`ResponseRateLimiter.check`.
SEND = "send"
SLIP = "slip"
DROP = "drop"


class TokenBucket:
    """Per-prefix refill state. Rate/burst live on the limiter so this
    stays two floats and an int per tracked prefix (hot path under
    random-spoofed floods, which mint a bucket per spoofed prefix)."""

    __slots__ = ("tokens", "stamp", "debit")

    def __init__(self, tokens: float, stamp: float) -> None:
        self.tokens = tokens
        self.stamp = stamp
        # Suppressed-response count, driving the SLIP cadence.
        self.debit = 0

    def __repr__(self) -> str:
        return (
            f"<TokenBucket tokens={self.tokens:.2f} "
            f"stamp={self.stamp:.3f} debit={self.debit}>"
        )


class ResponseRateLimiter:
    """The per-server RRL table.

    Invariant (pinned by a property test): a source that never exceeds
    ``rate`` queries/second is never limited — the bucket refills at
    least one token between its queries and ``burst >= 1`` guarantees
    the first one. Limiting only ever bites *above* the configured
    floor.
    """

    def __init__(
        self,
        rate: float,
        burst: float = 40.0,
        slip: int = 2,
        prefix_len: int = 24,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1: {burst}")
        self.rate = rate
        self.burst = float(burst)
        self.slip = slip
        self._octets = prefix_len // 8
        self._buckets: Dict[str, TokenBucket] = {}

    def prefix_of(self, source: str) -> str:
        """Aggregation key: the first ``prefix_len`` bits (whole octets)."""
        octets = self._octets
        if octets >= 4:
            return source
        return source.rsplit(".", 4 - octets)[0]

    def check(self, source: str, now: float) -> str:
        """Account one response toward ``source`` and pick its fate."""
        prefix = self.prefix_of(source)
        bucket = self._buckets.get(prefix)
        if bucket is None:
            bucket = TokenBucket(self.burst, now)
            self._buckets[prefix] = bucket
        else:
            elapsed = now - bucket.stamp
            if elapsed > 0:
                bucket.tokens = min(
                    self.burst, bucket.tokens + elapsed * self.rate
                )
                bucket.stamp = now
        if bucket.tokens >= 1.0:
            bucket.tokens -= 1.0
            return SEND
        bucket.debit += 1
        if self.slip > 0 and bucket.debit % self.slip == 0:
            return SLIP
        return DROP

    def tracked_prefixes(self) -> int:
        return len(self._buckets)
