"""Finite service capacity: a bounded virtual queue over a fixed rate.

The paper's authoritatives are infinitely fast — every query that
survives the (configured) inbound drop is answered. This module replaces
that with an M/D/1/K-style server: deterministic service time
``1/qps_capacity``, a FIFO queue bounded at ``queue_limit`` waiting
jobs, and tail drop on overflow. Under a flood of rate R against
capacity C the steady-state loss fraction emerges as ≈ 1 − C/R (for
R > C), which is exactly how the calibration test reconciles this model
with the paper's axiomatic drop fractions (see
:func:`repro.netem.attack.equivalent_flood_qps`).

The queue is *virtual*: nothing is stored per waiting query. The server
keeps only the time its backlog drains (``busy_until``); a query
admitted at ``now`` starts service at ``max(now, busy_until)`` and the
current queue depth is ``(busy_until - now) * rate``. O(1) state, O(1)
per query, and the simulator's timer wheel does the actual waiting.
"""

from __future__ import annotations

from typing import Optional


class ServiceCapacity:
    """One server's service rate and bounded backlog."""

    __slots__ = ("rate", "queue_limit", "busy_until", "admitted", "dropped")

    def __init__(self, rate: float, queue_limit: int = 64) -> None:
        if rate <= 0:
            raise ValueError(f"service rate must be positive: {rate}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1: {queue_limit}")
        self.rate = rate
        self.queue_limit = queue_limit
        self.busy_until = 0.0
        self.admitted = 0
        self.dropped = 0

    def depth(self, now: float) -> float:
        """Jobs currently waiting (fractional: partial service counts)."""
        backlog = self.busy_until - now
        return backlog * self.rate if backlog > 0 else 0.0

    def admit(self, now: float) -> Optional[float]:
        """Try to enqueue a query arriving at ``now``.

        Returns the delay until its service completes (queueing wait +
        service time), or ``None`` when the queue is full and the query
        is tail-dropped.
        """
        start = self.busy_until if self.busy_until > now else now
        if (start - now) * self.rate >= self.queue_limit:
            self.dropped += 1
            return None
        self.busy_until = start + 1.0 / self.rate
        self.admitted += 1
        return self.busy_until - now

    def __repr__(self) -> str:
        return (
            f"<ServiceCapacity {self.rate:g}/s queue<={self.queue_limit} "
            f"admitted={self.admitted} dropped={self.dropped}>"
        )
