"""repro — a reproduction of "When the Dike Breaks: Dissecting DNS
Defenses During DDoS" (Moura et al., ACM IMC 2018 / ISI-TR-725).

The library contains a complete, self-contained DNS ecosystem simulator
— protocol, authoritative servers, recursive resolver stack, client
population, network emulation with DDoS loss schedules — plus the
paper's measurement methodology (answer classification, latency and
amplification metrics) and a runner for every experiment behind the
paper's tables and figures.

Quick start::

    from repro import run_ddos, DDOS_EXPERIMENTS

    result = run_ddos(DDOS_EXPERIMENTS["H"], probe_count=500)
    print(result.failure_fraction_during_attack())   # ~0.40 in the paper
    print(result.amplification())                    # ~8x in the paper

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.clients import (
    Population,
    PopulationConfig,
    Probe,
    ProfileShares,
    build_population,
)
from repro.core import (
    AnswerClass,
    ClassificationTable,
    RotationSchedule,
    Testbed,
    TestbedConfig,
    classify_answers,
    classify_misses_by_resolver,
)
from repro.attackload import AttackLoadSpec
from repro.core.experiments import (
    BASELINE_EXPERIMENTS,
    DDOS_EXPERIMENTS,
    BaselineResult,
    BaselineSpec,
    DDoSResult,
    DDoSSpec,
    DefenseStudyResult,
    run_baseline,
    run_ddos,
    run_defense_study,
)
from repro.defense import DefenseSpec
from repro.core.experiments.glue import (
    run_cache_dump_study,
    run_glue_experiment,
)
from repro.core.experiments.probe_case import run_probe_case
from repro.core.experiments.software import run_software_study
from repro.dnscore import Message, Name, RRType, Zone
from repro.netem import AttackSchedule, AttackWindow, Network
from repro.obs import MetricsRegistry, ObsSpec, Tracer
from repro.runner import (
    MISS,
    DiskCache,
    RetryPolicy,
    RunFailure,
    RunFailureError,
    RunRequest,
    baseline_request,
    ddos_request,
    run_many,
)
from repro.resolvers import (
    DnsCache,
    ForwardingResolver,
    PublicResolverPool,
    RecursiveResolver,
    ResolverConfig,
    StubResolver,
)
from repro.servers import AuthoritativeServer, ZoneSpec, build_hierarchy
from repro.simcore import Simulator

__version__ = "1.0.0"

__all__ = [
    "AnswerClass",
    "AttackLoadSpec",
    "AttackSchedule",
    "AttackWindow",
    "AuthoritativeServer",
    "BASELINE_EXPERIMENTS",
    "BaselineResult",
    "BaselineSpec",
    "ClassificationTable",
    "DDOS_EXPERIMENTS",
    "DDoSResult",
    "DDoSSpec",
    "DefenseSpec",
    "DefenseStudyResult",
    "DiskCache",
    "DnsCache",
    "ForwardingResolver",
    "MISS",
    "Message",
    "MetricsRegistry",
    "Name",
    "Network",
    "ObsSpec",
    "Population",
    "PopulationConfig",
    "Probe",
    "ProfileShares",
    "PublicResolverPool",
    "RRType",
    "RecursiveResolver",
    "ResolverConfig",
    "RetryPolicy",
    "RotationSchedule",
    "RunFailure",
    "RunFailureError",
    "RunRequest",
    "Simulator",
    "StubResolver",
    "Testbed",
    "TestbedConfig",
    "Tracer",
    "Zone",
    "ZoneSpec",
    "baseline_request",
    "build_hierarchy",
    "build_population",
    "classify_answers",
    "classify_misses_by_resolver",
    "ddos_request",
    "run_baseline",
    "run_cache_dump_study",
    "run_ddos",
    "run_defense_study",
    "run_glue_experiment",
    "run_many",
    "run_probe_case",
    "run_software_study",
    "__version__",
]
