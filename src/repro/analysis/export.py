"""CSV export of figure series, for plotting outside the library.

The paper's figures are gnuplot timeseries; these helpers write the
equivalent data files (CSV with a header row) from the library's series
objects, so any plotting tool can regenerate the visuals.
"""

from __future__ import annotations

import csv
from typing import Dict, Sequence, TextIO

from repro.core.metrics import LatencyQuantiles


def write_outcomes_csv(
    series: Dict[int, Dict[str, int]],
    stream: TextIO,
    round_minutes: float = 10.0,
) -> int:
    """Figures 6/8/14 data: minute, ok, servfail, no_answer, error."""
    writer = csv.writer(stream)
    writer.writerow(["minute", "ok", "servfail", "no_answer", "error"])
    rows = 0
    for round_index in sorted(series):
        bucket = series[round_index]
        writer.writerow(
            [
                round_index * round_minutes,
                bucket.get("ok", 0),
                bucket.get("servfail", 0),
                bucket.get("no_answer", 0),
                bucket.get("error", 0),
            ]
        )
        rows += 1
    return rows


def write_latency_csv(
    series: Sequence[LatencyQuantiles],
    stream: TextIO,
    round_minutes: float = 10.0,
) -> int:
    """Figures 9/15 data: minute, count, median, mean, p75, p90 (ms)."""
    writer = csv.writer(stream)
    writer.writerow(["minute", "count", "median_ms", "mean_ms", "p75_ms", "p90_ms"])
    for row in series:
        writer.writerow(
            [
                row.round_index * round_minutes,
                row.count,
                round(row.median_ms, 3),
                round(row.mean_ms, 3),
                round(row.p75_ms, 3),
                round(row.p90_ms, 3),
            ]
        )
    return len(series)


def write_load_csv(
    series: Dict[int, Dict[str, int]],
    stream: TextIO,
    kinds: Sequence[str] = ("NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID"),
    round_minutes: float = 10.0,
) -> int:
    """Figure 10 data: minute plus one column per query kind."""
    writer = csv.writer(stream)
    writer.writerow(["minute", *kinds, "total"])
    rows = 0
    for round_index in sorted(series):
        bucket = series[round_index]
        values = [bucket.get(kind, 0) for kind in kinds]
        writer.writerow(
            [round_index * round_minutes, *values, sum(bucket.values())]
        )
        rows += 1
    return rows


def write_sweep_csv(sweep, stream: TextIO) -> int:
    """Sweep surface: loss, ttl, failures, amplification per cell."""
    writer = csv.writer(stream)
    writer.writerow(
        ["loss", "ttl", "failure_before", "failure_during", "amplification"]
    )
    for point in sweep.points:
        writer.writerow(
            [
                point.loss_fraction,
                point.ttl,
                round(point.failure_before, 5),
                round(point.failure_during, 5),
                round(point.amplification, 3),
            ]
        )
    return len(sweep.points)


def write_ecdf_csv(values: Sequence[float], stream: TextIO) -> int:
    """Figure 4-style ECDF: value, cumulative fraction."""
    writer = csv.writer(stream)
    writer.writerow(["value", "cdf"])
    ordered = sorted(values)
    total = len(ordered)
    for index, value in enumerate(ordered, start=1):
        writer.writerow([round(value, 6), round(index / total, 6)])
    return total
