"""Figure-series renderers: timeseries as aligned text columns.

The paper's figures are stacked-count or quantile timeseries over
10-minute rounds; these helpers print the same series so the benchmark
output can be compared against the published plots row by row.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def render_timeseries_table(
    title: str,
    series: Dict[int, Dict[str, int]],
    columns: Sequence[str],
    round_minutes: float = 10.0,
    attack_rounds: Optional[Sequence[int]] = None,
) -> str:
    """Render a per-round multi-column count series (Figures 6/8/10/13/14)."""
    lines = [title, "-" * len(title)]
    header = f"{'min':>5} " + "".join(f"{name:>12}" for name in columns)
    if attack_rounds is not None:
        header += "  attack"
    lines.append(header)
    for round_index in sorted(series):
        bucket = series[round_index]
        line = f"{round_index * round_minutes:>5.0f} " + "".join(
            f"{bucket.get(name, 0):>12}" for name in columns
        )
        if attack_rounds is not None:
            line += "  *" if round_index in attack_rounds else ""
        lines.append(line)
    return "\n".join(lines)


def render_series(
    title: str,
    rows: Sequence[Sequence[object]],
    columns: Sequence[str],
) -> str:
    """Render arbitrary row tuples under named columns (Figures 9/11/12)."""
    lines = [title, "-" * len(title)]
    lines.append("".join(f"{name:>14}" for name in columns))
    for row in rows:
        lines.append(
            "".join(
                f"{value:>14.1f}" if isinstance(value, float) else f"{value!s:>14}"
                for value in row
            )
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A coarse one-line chart for quick visual comparison in terminals."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    top = max(values)
    if top <= 0:
        return " " * min(len(values), width)
    step = max(1, len(values) // width)
    sampled = [values[index] for index in range(0, len(values), step)]
    return "".join(
        blocks[min(len(blocks) - 1, int(value / top * (len(blocks) - 1)))]
        for value in sampled
    )
