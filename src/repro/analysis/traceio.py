"""Query-trace export/import and the §4-style trace analyzer.

Simulated server traces (and, in principle, real ones converted to the
same JSONL shape) can be written to disk, re-loaded, and analyzed with
the paper's production-zone methodology: per-source inter-arrival
medians against a TTL, parallel-query filtering, and public-resolver
classification against the Appendix C list.

JSONL row shape::

    {"t": 12.345, "src": "100.64.0.1", "qname": "1414.cachetest.nl.",
     "qtype": "AAAA", "server": "at1"}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO, Tuple

from repro.clients.paper_resolver_list import is_on_paper_list
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.servers.querylog import QueryLog


class TraceFormatError(ValueError):
    """Raised for malformed trace rows, with the offending line number."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def export_query_log(log: QueryLog, stream: TextIO) -> int:
    """Write a query log as JSONL; returns the number of rows written."""
    count = 0
    for entry in log.entries:
        stream.write(
            json.dumps(
                {
                    "t": round(entry.time, 6),
                    "src": entry.src,
                    "qname": str(entry.qname),
                    "qtype": str(entry.qtype),
                    "server": entry.server,
                },
                separators=(",", ":"),
            )
        )
        stream.write("\n")
        count += 1
    return count


def import_query_log(stream: TextIO) -> QueryLog:
    """Read a JSONL trace back into a :class:`QueryLog`."""
    log = QueryLog()
    for line_number, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(line_number, f"bad JSON: {exc}") from exc
        try:
            log.record(
                float(row["t"]),
                str(row["src"]),
                Name.from_text(row["qname"]),
                RRType[row["qtype"]],
                str(row.get("server", "")),
            )
        except (KeyError, ValueError) as exc:
            raise TraceFormatError(line_number, f"bad row: {exc}") from exc
    return log


# ---------------------------------------------------------------------------
# §4-style analysis over an arbitrary trace
# ---------------------------------------------------------------------------
@dataclass
class TraceAnalysis:
    """Summary of one trace against a reference TTL (paper §4.1)."""

    ttl: float
    total_queries: int
    sources: int
    analyzed_sources: int
    close_query_fraction: float
    honoring_fraction: float
    early_fraction: float
    public_sources: int
    median_of_medians: Optional[float]

    def as_rows(self) -> List[Tuple[str, object]]:
        return [
            ("Total queries", self.total_queries),
            ("Sources", self.sources),
            ("Sources with >=5 queries", self.analyzed_sources),
            ("Close-query fraction (<10s)", f"{self.close_query_fraction:.3f}"),
            ("TTL-honoring sources", f"{self.honoring_fraction:.3f}"),
            ("Early-refresh sources", f"{self.early_fraction:.3f}"),
            ("Sources on the paper's public list", self.public_sources),
            ("Median of per-source medians", self.median_of_medians),
        ]


def analyze_trace(
    log: QueryLog,
    ttl: float,
    min_queries: int = 5,
    exclude_below: float = 10.0,
) -> TraceAnalysis:
    """Apply the paper's §4.1 methodology to a query trace.

    Per source: sort query times, drop inter-arrivals below
    ``exclude_below`` (parallel queries), take the median of the rest,
    and classify the source as TTL-honoring (median within ±10% of the
    TTL or above) or early-refreshing (median below 90% of the TTL).
    """
    by_src: Dict[str, List[float]] = {}
    for entry in log.entries:
        by_src.setdefault(entry.src, []).append(entry.time)

    close = 0
    total_deltas = 0
    medians: List[float] = []
    honoring = 0
    early = 0
    for times in by_src.values():
        times.sort()
        deltas = [b - a for a, b in zip(times, times[1:])]
        total_deltas += len(deltas)
        close += sum(1 for delta in deltas if delta < exclude_below)
        if len(times) < min_queries:
            continue
        usable = sorted(delta for delta in deltas if delta >= exclude_below)
        if not usable:
            continue
        median = usable[len(usable) // 2]
        medians.append(median)
        if median >= ttl * 0.9:
            honoring += 1
        else:
            early += 1

    analyzed = honoring + early
    medians.sort()
    return TraceAnalysis(
        ttl=ttl,
        total_queries=len(log.entries),
        sources=len(by_src),
        analyzed_sources=analyzed,
        close_query_fraction=close / total_deltas if total_deltas else 0.0,
        honoring_fraction=honoring / analyzed if analyzed else 0.0,
        early_fraction=early / analyzed if analyzed else 0.0,
        public_sources=sum(1 for src in by_src if is_on_paper_list(src)),
        median_of_medians=medians[len(medians) // 2] if medians else None,
    )
