"""Empirical cumulative distribution functions."""

from __future__ import annotations

import bisect
from typing import Iterable, List, Tuple


class Ecdf:
    """An ECDF over a sample, supporting evaluation and quantiles."""

    def __init__(self, values: Iterable[float]) -> None:
        self.values: List[float] = sorted(values)
        if not self.values:
            raise ValueError("ECDF of an empty sample")

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        return bisect.bisect_right(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        """Inverse CDF by nearest rank."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        index = min(len(self.values) - 1, max(0, round(q * (len(self.values) - 1))))
        return self.values[index]

    def points(self, count: int = 50) -> List[Tuple[float, float]]:
        """Evenly spaced (x, F(x)) pairs for plotting/printing."""
        low, high = self.values[0], self.values[-1]
        if low == high:
            return [(low, 1.0)]
        step = (high - low) / (count - 1)
        return [
            (low + index * step, self.at(low + index * step))
            for index in range(count)
        ]
