"""Multi-seed statistics: quantify run-to-run variation.

The paper reports single measurement campaigns; a simulator can afford
replication. :func:`run_over_seeds` repeats an experiment across seeds
and summarizes any scalar metric with mean, standard deviation, and a
t-based 95% confidence interval, so benchmark claims like "failures at
90% loss ≈ 40%" carry error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

ResultT = TypeVar("ResultT")

# Two-sided 95% t critical values for small samples (df 1..30).
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0 for one value."""
    if not values:
        raise ValueError("std of empty sequence")
    if len(values) == 1:
        return 0.0
    center = mean(values)
    variance = sum((value - center) ** 2 for value in values) / (len(values) - 1)
    return math.sqrt(variance)


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Two-sided 95% CI for the mean (t distribution, small samples)."""
    center = mean(values)
    if len(values) == 1:
        return (center, center)
    df = len(values) - 1
    critical = _T_95.get(df, 1.960)
    margin = critical * sample_std(values) / math.sqrt(len(values))
    return (center - margin, center + margin)


@dataclass
class SeedSweep:
    """Replicated metric values and their summary."""

    metric: str
    seeds: List[int]
    values: List[float]

    @property
    def mean(self) -> float:
        return mean(self.values)

    @property
    def std(self) -> float:
        return sample_std(self.values)

    @property
    def ci95(self) -> Tuple[float, float]:
        return confidence_interval_95(self.values)

    def contains(self, target: float) -> bool:
        """True if ``target`` falls inside the 95% CI."""
        low, high = self.ci95
        return low <= target <= high

    def __repr__(self) -> str:
        low, high = self.ci95
        return (
            f"<SeedSweep {self.metric}: {self.mean:.4f} ± {self.std:.4f} "
            f"(95% CI {low:.4f}–{high:.4f}, n={len(self.values)})>"
        )


def run_over_seeds(
    run: Callable[[int], ResultT],
    metrics: Dict[str, Callable[[ResultT], float]],
    seeds: Sequence[int],
) -> Dict[str, SeedSweep]:
    """Run ``run(seed)`` per seed and summarize each metric.

    ``metrics`` maps names to extractors applied to each run's result;
    the run executes once per seed regardless of metric count.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {name: [] for name in metrics}
    for seed in seeds:
        result = run(seed)
        for name, extract in metrics.items():
            collected[name].append(float(extract(result)))
    return {
        name: SeedSweep(name, list(seeds), values)
        for name, values in collected.items()
    }
