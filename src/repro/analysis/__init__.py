"""Presentation helpers: ECDFs, table renderers, and figure series.

Benchmarks and examples use these to print each reproduced table and
figure next to the paper's reported values.
"""

from repro.analysis.ecdf import Ecdf
from repro.analysis.figures import render_series, render_timeseries_table
from repro.analysis.tables import render_kv_table, render_matrix

__all__ = [
    "Ecdf",
    "render_kv_table",
    "render_matrix",
    "render_series",
    "render_timeseries_table",
]
