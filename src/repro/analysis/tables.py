"""Plain-text table renderers for benchmark and example output."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


def render_kv_table(
    title: str,
    rows: Sequence[Tuple[str, object]],
    paper: Optional[Dict[str, object]] = None,
) -> str:
    """Render label/value rows, optionally with a paper-reported column."""
    lines = [title, "-" * len(title)]
    width = max((len(label) for label, _ in rows), default=10) + 2
    if paper:
        lines.append(f"{'':{width}}{'measured':>12}  {'paper':>12}")
    for label, value in rows:
        if paper and label in paper:
            lines.append(f"{label:{width}}{value!s:>12}  {paper[label]!s:>12}")
        else:
            lines.append(f"{label:{width}}{value!s:>12}")
    return "\n".join(lines)


def render_matrix(
    title: str,
    column_names: Sequence[str],
    rows: Sequence[Tuple[str, Sequence[object]]],
) -> str:
    """Render a labeled matrix (rows of equal length)."""
    lines = [title, "-" * len(title)]
    label_width = max((len(label) for label, _ in rows), default=8) + 2
    header = " " * label_width + "".join(f"{name:>12}" for name in column_names)
    lines.append(header)
    for label, values in rows:
        lines.append(
            f"{label:{label_width}}" + "".join(f"{value!s:>12}" for value in values)
        )
    return "\n".join(lines)
