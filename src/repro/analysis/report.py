"""The full paper-vs-measured report (EXPERIMENTS.md generator).

Runs the complete experiment battery at a configurable scale and
renders a Markdown comparison of every table and figure against the
paper's reported values. Deterministic for a given seed. Used by
``scripts/generate_experiments_md.py`` and ``python -m repro report``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.core.experiments import (
    BASELINE_EXPERIMENTS,
    DDOS_EXPERIMENTS,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner import DiskCache, RunFailure
from repro.workloads.ditl import (
    DitlConfig,
    fraction_at_least,
    generate_ditl_counts,
    per_letter_cdf,
)
from repro.workloads.nl_trace import (
    NlTraceConfig,
    close_query_fraction,
    generate_nl_trace,
    interarrival_medians,
)

PAPER_MISS = {
    "60": "0.0%", "1800": "32.6%", "3600": "32.9%",
    "86400": "30.9%", "3600-10m": "28.5%",
}
PAPER_FAIL = {
    "E": "8.5%", "F": "19.0%", "H": "40.3%", "I": "~63%",
    "D": "no visible change", "G": "~28%",
}
PAPER_AMP = {"F": "3.5x", "H": "8.2x", "I": "8.1x"}
PAPER_SOFTWARE = {
    ("bind", False): "3", ("bind", True): "12",
    ("unbound", False): "5–6", ("unbound", True): "46",
}


def build_report(
    baseline_probes: int = 600,
    ddos_probes: int = 400,
    seed: int = 42,
    jobs: Optional[int] = None,
    cache: Optional["DiskCache"] = None,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    timeline_path: Optional[str] = None,
    timeline_interval: float = 60.0,
    include_defense: bool = False,
    keep_going: bool = False,
    failure_ledger: Optional[List["RunFailure"]] = None,
) -> str:
    """Run everything and return the Markdown comparison report.

    The baseline and DDoS batteries — the expensive part — are fanned out
    over ``jobs`` worker processes (default: all cores) in one batch, and
    individual runs are skipped entirely when ``cache`` already holds
    them. The rendered report is identical for any ``jobs``/cache state.

    ``trace_path``/``metrics_path`` enable tracing/metrics on every
    baseline and DDoS run and write the combined telemetry as JSONL, with
    a ``run`` key (``baseline-1800``, ``ddos-H``) distinguishing rows.
    ``timeline_path`` arms the flight recorder (sampling every
    ``timeline_interval`` sim seconds) the same way, exports every run's
    timeline, and appends a flight-recorder section plotting
    client-visible reliability against the authoritative-side series.

    ``include_defense`` appends the beyond-the-paper layered-defense
    grid (``repro.core.experiments.defense_study``); off by default so
    the stock report stays byte-identical to previous versions.

    ``keep_going`` routes through to the executor: a run that exhausts
    its retry ladder no longer aborts the report — the sections that
    depended on it are replaced by an omission note, every other section
    renders from the runs that survived, and a failure-ledger section
    (plus ``failure_ledger``, when a list is passed in) records exactly
    what was lost.
    """
    from repro.obs import ObsSpec
    from repro.runner import (
        RunFailure,
        RunFailureError,
        baseline_request,
        cache_dump_request,
        ddos_request,
        glue_request,
        probe_case_request,
        run_many,
        software_request,
    )

    obs = None
    if (
        trace_path is not None
        or metrics_path is not None
        or timeline_path is not None
    ):
        from repro.obs import TimelineSpec

        obs = ObsSpec(
            trace=trace_path is not None,
            metrics=metrics_path is not None,
            timeline=(
                TimelineSpec(interval=timeline_interval)
                if timeline_path is not None
                else None
            ),
        )

    # Real wall-clock on purpose: the report footer tells the operator
    # how long the battery took; CI diffs exclude the footer line.
    started = time.time()  # repro-lint: allow[determinism]
    lines: List[str] = []
    out = lines.append
    failures: List[RunFailure] = []

    @contextmanager
    def section(title: str) -> Iterator[None]:
        """Render one report section, failure-tolerantly.

        Under ``keep_going`` a section that trips over a
        :class:`RunFailure` placeholder (or a nested battery that raised
        :exc:`RunFailureError`) is rolled back to its heading plus an
        omission note, so one poisoned run costs its sections, not the
        report.
        """
        mark = len(lines)
        try:
            yield
        except Exception as error:
            if not keep_going:
                raise
            if isinstance(error, RunFailureError):
                failures.extend(error.failures)
            del lines[mark:]
            out(f"## {title}")
            out("")
            out(
                "_Section omitted under keep-going: it depends on runs "
                "that failed after retries (see the failure ledger "
                "below)._"
            )
            out("")

    # Fan the full independent-run battery out in a single batch so the
    # worker pool stays busy across experiment families.
    software_cells = [
        (software, attack)
        for software in ("bind", "unbound")
        for attack in (False, True)
    ]
    requests = (
        [
            baseline_request(
                spec, probe_count=baseline_probes, seed=seed, obs=obs
            )
            for spec in BASELINE_EXPERIMENTS.values()
        ]
        + [
            ddos_request(spec, probe_count=ddos_probes, seed=seed, obs=obs)
            for spec in DDOS_EXPERIMENTS.values()
        ]
        + [glue_request(probe_count=400, seed=seed, rounds=3)]
        + [cache_dump_request(software) for software in ("bind", "unbound")]
        + [
            software_request(software, attack, seed=seed)
            for software, attack in software_cells
        ]
        + [probe_case_request(seed=11)]
    )
    battery_results = run_many(
        requests, jobs=jobs, cache=cache, keep_going=keep_going
    )
    failures.extend(
        result for result in battery_results if isinstance(result, RunFailure)
    )
    battery = iter(battery_results)
    baselines = {key: next(battery) for key in BASELINE_EXPERIMENTS}
    ddos = {key: next(battery) for key in DDOS_EXPERIMENTS}
    glue = next(battery)
    cache_dumps = {software: next(battery) for software in ("bind", "unbound")}
    software_results = {cell: next(battery) for cell in software_cells}
    probe = next(battery)

    if obs is not None:
        from repro.obs import export_metrics, export_spans, export_timeline

        # Failed runs have no telemetry to export; their ledger entry is
        # the record of what is missing from the JSONL outputs.
        telemetry = [
            (
                f"baseline-{key}",
                result.spans,
                result.metric_snapshots,
                result.timeline_points,
            )
            for key, result in baselines.items()
            if not isinstance(result, RunFailure)
        ] + [
            (
                f"ddos-{key}",
                result.testbed.spans,
                result.testbed.metric_snapshots,
                result.timeline_points,
            )
            for key, result in ddos.items()
            if not isinstance(result, RunFailure)
        ]
        if trace_path is not None:
            with open(trace_path, "w", encoding="utf-8") as stream:
                for run, spans, _, _ in telemetry:
                    export_spans(spans, stream, run=run)
        if metrics_path is not None:
            with open(metrics_path, "w", encoding="utf-8") as stream:
                for run, _, snapshots, _ in telemetry:
                    export_metrics(snapshots, stream, run=run)
        if timeline_path is not None:
            with open(timeline_path, "w", encoding="utf-8") as stream:
                for run, _, _, points in telemetry:
                    export_timeline(points, stream, run=run)

    out("# EXPERIMENTS — paper vs measured")
    out("")
    out(
        "Generated by `repro.analysis.report.build_report` "
        f"(seed {seed}; baselines at {baseline_probes} probes, DDoS runs at "
        f"{ddos_probes}; the paper used ~9k probes / ~15k VPs). Absolute "
        "counts scale with population; the comparison targets are "
        "fractions, multipliers, and orderings."
    )
    out("")

    # ------------------------------------------------------------------
    with section("Caching baseline (§3) — Tables 1–3, Figures 3, 13"):
        out("## Caching baseline (§3) — Tables 1–3, Figures 3, 13")
        out("")
        out("| experiment | paper miss rate | measured miss rate |")
        out("|---|---|---|")
        for key, result in baselines.items():
            out(f"| TTL {key} | {PAPER_MISS[key]} | {result.miss_rate:.1%} |")
        out("")

        base = baselines["1800"]
        dataset = base.dataset
        out("Table 1 ratios (TTL 1800 column):")
        out("")
        out("| quantity | paper | measured |")
        out("|---|---|---|")
        out(
            f"| probes answering | 95.3% | {dataset.probes_valid / dataset.probes:.1%} |"
        )
        out(f"| queries answered | 95.4% | {dataset.answers / dataset.queries:.1%} |")
        out(
            "| valid among answers | 99.6% | "
            f"{dataset.answers_valid / max(1, dataset.answers):.1%} |"
        )
        out(f"| VPs per probe | 1.67 | {dataset.vps / dataset.probes:.2f} |")
        out("")

        table2 = base.table2
        table2_day = baselines["86400"].table2
        out("Table 2 manipulation/fragmentation markers:")
        out("")
        out("| quantity | paper | measured |")
        out("|---|---|---|")
        out(
            "| warm-up TTL altered, TTL 1800 | ~2% | "
            f"{table2.warmup_ttl_altered / max(1, table2.warmup):.1%} |"
        )
        out(
            "| warm-up TTL altered, TTL 86400 | ~30% | "
            f"{table2_day.warmup_ttl_altered / max(1, table2_day.warmup):.1%} |"
        )
        out(
            "| CCdec (fragmentation), TTL 86400 | ~7.8% of CC | "
            f"{table2_day.cc_decreasing / max(1, table2_day.cc):.1%} |"
        )
        out("")

        table3 = base.table3
        out("Table 3 miss attribution (TTL 1800):")
        out("")
        out("| quantity | paper | measured |")
        out("|---|---|---|")
        out(
            "| public R1 share of AC | 48.7% | "
            f"{table3.public_r1 / max(1, table3.ac_total):.1%} |"
        )
        out(
            "| Google R1 share of AC | 39.3% | "
            f"{table3.google_r1 / max(1, table3.ac_total):.1%} |"
        )
        out(
            "| Google Rn within non-public AC | 9.5% | "
            f"{table3.google_rn / max(1, table3.non_public_r1):.1%} |"
        )
        out("")

    # ------------------------------------------------------------------
    with section("DDoS experiments (§5–§6) — Table 4, Figures 6–12, 14, 15"):
        out("## DDoS experiments (§5–§6) — Table 4, Figures 6–12, 14, 15")
        out("")
        out(
            "| exp | loss | TTL | paper failures (attack) | measured | "
            "measured amplification (paper) |"
        )
        out("|---|---|---|---|---|---|")
        for key, result in ddos.items():
            spec = result.spec
            amplification = (
                f"{result.amplification():.1f}x ({PAPER_AMP[key]})"
                if key in PAPER_AMP
                else f"{result.amplification():.1f}x"
            )
            out(
                f"| {key} | {spec.loss_fraction:.0%} {spec.servers} | {spec.ttl} | "
                f"{PAPER_FAIL.get(key, '-')} | "
                f"{result.failure_fraction_during_attack():.1%} | {amplification} |"
            )
        out("")

        series_a = ddos["A"].outcomes_by_round()
        cache_only = series_a[3]
        expired = series_a[9]
        out("Figure 6–12 checkpoints:")
        out("")
        out("| quantity | paper | measured |")
        out("|---|---|---|")
        out(
            "| served during cache-only full outage (Fig 6a) | 35–70% | "
            f"{cache_only['ok'] / sum(cache_only.values()):.0%} |"
        )
        out(
            "| served after caches expire (Fig 6a) | ~0.2% (serve-stale) | "
            f"{expired['ok'] / sum(expired.values()):.1%} |"
        )
        h_latency = {row.round_index: row for row in ddos["H"].latency_series()}
        i_latency = {row.round_index: row for row in ddos["I"].latency_series()}
        out(
            "| latency mid-attack, 30-min TTL (H) vs none (I) | ~390 ms vs "
            "~1300 ms (§5.5) | "
            f"mean {h_latency[8].mean_ms:.0f} ms / median {h_latency[8].median_ms:.0f} ms "
            f"vs mean {i_latency[8].mean_ms:.0f} ms / median "
            f"{i_latency[8].median_ms:.0f} ms |"
        )
        per_probe = {row.round_index: row for row in ddos["I"].per_probe()}
        out(
            "| Fig 11 Rn-per-probe median, normal→attack | 1→2 | "
            f"{per_probe[3].rn_median:.0f}→{per_probe[8].rn_median:.0f} |"
        )
        out(
            "| Fig 11 queries-per-probe p90, normal→attack | 3→18 | "
            f"{per_probe[3].queries_p90:.0f}→{per_probe[8].queries_p90:.0f} |"
        )
        unique_rn = ddos["F"].unique_rn()
        pre_mean = sum(unique_rn[r] for r in range(1, 6)) / 5
        mid_mean = sum(unique_rn[r] for r in range(6, 12)) / 6
        out(
            "| Fig 12 unique Rn growth under attack (F) | grows | "
            f"{pre_mean:.0f}→{mid_mean:.0f} per round |"
        )
        out("")

    # ------------------------------------------------------------------
    if timeline_path is not None:
        with section("Flight recorder — client reliability vs authoritative load"):
            from repro.analysis.figures import sparkline

            out("## Flight recorder — client reliability vs authoritative load")
            out("")
            out(
                "Sim-time telemetry timelines sampled every "
                f"{timeline_interval:.0f} s by the flight recorder "
                f"(exported per run to `{timeline_path}`; render with "
                "`repro timeline`). Each sparkline spans the full run, "
                "attack window marked under the axis; client-visible "
                "reliability is plotted against the authoritative-side "
                "offered/served series that drive it."
            )
            out("")
            for key in ("A", "H"):
                result = ddos[key]
                if isinstance(result, RunFailure):
                    raise RunFailureError([result])
                points = result.timeline_points
                if not points:
                    continue
                start, end = result.spec.attack_window
                axis = "".join(
                    "*" if start <= point.time < end else "-"
                    for point in points
                )
                out(f"Experiment {key} ({result.spec.describe()}):")
                out("")
                out("```")
                for name in (
                    "client_ok_ratio",
                    "offered_qps",
                    "served_qps",
                    "sketch.entropy_bits",
                ):
                    values = [point.values.get(name, 0.0) for point in points]
                    out(f"{name:>20} {sparkline(values, width=len(points))}")
                out(f"{'attack window':>20} {axis}")
                out("```")
                out("")

    # ------------------------------------------------------------------
    with section("Glue vs authoritative TTL (Appendix A) — Tables 5–6"):
        out("## Glue vs authoritative TTL (Appendix A) — Tables 5–6")
        out("")
        out("| quantity | paper | measured |")
        out("|---|---|---|")
        out(
            "| NS answers with child TTL | 94.4% | "
            f"{glue.ns_buckets.child_fraction:.1%} |"
        )
        out(
            "| A answers with child TTL | 95.0% | "
            f"{glue.a_buckets.child_fraction:.1%} |"
        )
        for software in ("bind", "unbound"):
            dump = cache_dumps[software]
            out(
                f"| {software} caches child NS TTL (3600 vs parent 172800) | "
                f"yes (~3595) | "
                f"{'yes' if dump.stored_child_value else 'NO'} ({dump.ns_cached_ttl}) |"
            )
        out("")

    # ------------------------------------------------------------------
    with section("Software retries (Appendix E) — Figure 16"):
        out("## Software retries (Appendix E) — Figure 16")
        out("")
        out("| software | condition | paper total queries | measured |")
        out("|---|---|---|---|")
        for software in ("bind", "unbound"):
            for attack in (False, True):
                result = software_results[(software, attack)]
                condition = "authoritatives dead" if attack else "normal"
                out(
                    f"| {software} | {condition} | "
                    f"{PAPER_SOFTWARE[(software, attack)]} | "
                    f"{result.total} (root {result.queries_root}, tld "
                    f"{result.queries_tld}, target {result.queries_target}) |"
                )
        out("")

    # ------------------------------------------------------------------
    with section("Single-probe drill-down (Appendix F) — Table 7, Figure 17"):
        out("## Single-probe drill-down (Appendix F) — Table 7, Figure 17")
        out("")
        summary = probe.amplification_summary()
        normal_rows = [row for row in probe.rows if not row.during_attack]
        attack_rows = [row for row in probe.rows if row.during_attack]
        out("| quantity | paper | measured |")
        out("|---|---|---|")
        out(
            "| topology | 3 R1, 8 Rn, 2 AT | "
            f"{len(probe.r1_addresses)} R1, {len(probe.rn_addresses)} Rn, "
            f"{len(probe.at_addresses)} AT |"
        )
        out(
            "| auth queries per interval, normal | 3–6 | "
            f"{min(row.auth_queries for row in normal_rows)}–"
            f"{max(row.auth_queries for row in normal_rows)} |"
        )
        out(
            "| auth queries per interval, attack | 11–29 | "
            f"{min(row.auth_queries for row in attack_rows)}–"
            f"{max(row.auth_queries for row in attack_rows)} |"
        )
        out(
            "| client answers during attack | 2 of 3 | "
            f"{sum(row.client_answers for row in attack_rows) / len(attack_rows):.1f}"
            " of 3 |"
        )
        normal_rate = summary["normal_queries_per_client_query"]
        attack_rate = summary["attack_queries_per_client_query"]
        out(
            "| amplification per client query | ~4–10x | "
            f"{attack_rate / max(0.01, normal_rate):.1f}x |"
        )
        out("")

    # ------------------------------------------------------------------
    out("## Production-zone caching (§4) — Figures 4–5")
    out("")
    trace = generate_nl_trace(NlTraceConfig(recursive_count=2000, seed=seed))
    medians = interarrival_medians(trace)
    early = sum(1 for value in medians.values() if value < 3400) / len(medians)
    counts = generate_ditl_counts(DitlConfig(recursive_count=20000, seed=seed))
    cdfs = per_letter_cdf(counts)
    out("| quantity | paper | measured |")
    out("|---|---|---|")
    out(
        f"| .nl queries with Δt < 10 s | 28% | {close_query_fraction(trace):.0%} |"
    )
    out(f"| .nl resolvers refreshing early | 22% | {early:.0%} |")
    out(
        f"| root recursives sending 1 DS query/day | 87% | {cdfs['ALL'][0]:.0%} |"
    )
    out(
        "| F-root recursives sending ≥5 | ~5% | "
        f"{fraction_at_least(counts, 'F', 5):.1%} |"
    )
    out(
        "| H-root recursives sending ≥5 | >10% | "
        f"{fraction_at_least(counts, 'H', 5):.1%} |"
    )
    out("")

    # ------------------------------------------------------------------
    if include_defense:
        from repro.core.experiments.defense_study import run_defense_study

        study = run_defense_study(
            probe_count=min(120, ddos_probes),
            seed=seed,
            jobs=jobs,
            cache=cache,
            keep_going=keep_going,
        )
        failures.extend(study.failures)
        out("## Layered authoritative defenses (beyond the paper)")
        out("")
        out(
            "Emergent-loss analogue of Table 4: a direct flood against "
            f"authoritatives with {study.capacity:.0f} q/s service capacity "
            "each, defenses layered on one at a time. Cells show legit-VP "
            "reliability during the attack (and the fraction of attack "
            "queries that survived every layer). Offered-load ratios 2x / "
            "4x / 10x correspond to the paper's 50% / 75% / 90% "
            "configured-loss experiments."
        )
        out("")
        for line in study.markdown():
            out(line)
        out("")

    # ------------------------------------------------------------------
    if failures:
        out("## Failure ledger")
        out("")
        out(
            f"{len(failures)} run(s) exhausted the executor's retry "
            "ladder under keep-going; the sections above that depended "
            "on them carry omission notes, and the telemetry exports "
            "skip them."
        )
        out("")
        out("| request | kind | error | attempts |")
        out("|---|---|---|---|")
        for failure in failures:
            out(
                f"| #{failure.index} | {failure.kind} | "
                f"{failure.error_type}: {failure.message} | "
                f"{failure.attempts} |"
            )
        out("")
    if failure_ledger is not None:
        failure_ledger.extend(failures)

    elapsed = time.time() - started  # repro-lint: allow[determinism]
    out(f"_Full battery regenerated in {elapsed:.0f} s of wall-clock time._")
    out("")
    return "\n".join(lines)
