"""Network emulation: addresses, latency/loss, DDoS schedules, transport.

The emulated network is a star: any registered address can send a datagram
to any other. Each packet independently suffers (a) baseline loss, (b)
attack loss if the destination is under a scheduled DDoS window — the same
random inbound drop the paper applies with iptables — and (c) one-way
latency from the latency model. Anycast addresses fan out to per-source
catchment instances.
"""

from repro.netem.address import AddressAllocator
from repro.netem.attack import AttackSchedule, AttackWindow
from repro.netem.link import (
    ConstantLatency,
    LatencyModel,
    PairwiseLatency,
    PerHostLatency,
)
from repro.netem.topology import Host
from repro.netem.transport import Network, Packet

__all__ = [
    "AddressAllocator",
    "AttackSchedule",
    "AttackWindow",
    "ConstantLatency",
    "Host",
    "LatencyModel",
    "Network",
    "Packet",
    "PairwiseLatency",
    "PerHostLatency",
]
