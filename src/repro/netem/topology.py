"""Host base class: an addressed participant on the emulated network."""

from __future__ import annotations


from repro.dnscore.message import Message
from repro.netem.transport import Network, Packet
from repro.simcore.simulator import Simulator


class Host:
    """A network endpoint with one address and a receive hook.

    Subclasses (authoritative servers, recursives, stubs) override
    :meth:`on_packet`. Construction registers the host on the network.
    """

    def __init__(self, sim: Simulator, network: Network, address: str, name: str = "") -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.name = name or address
        network.register(address, self.on_packet)

    def send(self, dst: str, message: Message, transport: str = "udp") -> bool:
        """Send a datagram (or TCP exchange) from this host's address."""
        return self.network.send(self.address, dst, message, transport)

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} @{self.address}>"
