"""DDoS attack schedules: windows of inbound packet loss at targets.

This reproduces the paper's emulation exactly (§5.1): during an attack
window, each packet *arriving at* a target address is dropped
independently with the configured probability — random drop, unbiased
toward any source, applied before the server sees the query.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class AttackWindow:
    """One attack: a set of targets, a time window, and a loss fraction.

    ``queue_delay`` optionally models router-buffer queueing at the
    target: surviving inbound packets gain an exponentially-distributed
    extra delay with this mean (seconds). The paper's emulation models
    loss only and names queueing latency as future work (§5.1); this is
    that extension, off by default so the baseline reproduction matches
    the paper.
    """

    __slots__ = ("targets", "start", "end", "loss_fraction", "queue_delay", "label")

    def __init__(
        self,
        targets: Sequence[str],
        start: float,
        end: float,
        loss_fraction: float,
        label: str = "ddos",
        queue_delay: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_fraction <= 1.0:
            raise ValueError(f"loss fraction out of range: {loss_fraction}")
        if end <= start:
            raise ValueError("attack window must have positive duration")
        if queue_delay < 0:
            raise ValueError(f"queue delay must be non-negative: {queue_delay}")
        self.targets = frozenset(targets)
        self.start = start
        self.end = end
        self.loss_fraction = loss_fraction
        self.queue_delay = queue_delay
        self.label = label

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def __repr__(self) -> str:
        return (
            f"<AttackWindow {self.label} [{self.start}, {self.end}) "
            f"loss={self.loss_fraction:.0%} targets={len(self.targets)}>"
        )


class AttackSchedule:
    """A collection of attack windows consulted per inbound packet."""

    def __init__(self, windows: Optional[Iterable[AttackWindow]] = None) -> None:
        self.windows: List[AttackWindow] = list(windows or [])
        self._by_target: Dict[str, List[AttackWindow]] = {}
        for window in self.windows:
            self._index(window)

    def _index(self, window: AttackWindow) -> None:
        for target in window.targets:
            self._by_target.setdefault(target, []).append(window)

    def add(self, window: AttackWindow) -> None:
        self.windows.append(window)
        self._index(window)

    def inbound_loss(self, dst: str, now: float) -> float:
        """Drop probability for a packet arriving at ``dst`` at ``now``.

        Overlapping windows combine as independent drops:
        1 - prod(1 - p_i).
        """
        windows = self._by_target.get(dst)
        if not windows:
            return 0.0
        survive = 1.0
        for window in windows:
            if window.active(now):
                survive *= 1.0 - window.loss_fraction
        return 1.0 - survive

    def inbound_queue_delay(self, dst: str, now: float) -> float:
        """Mean extra queueing delay for survivors arriving at ``dst``.

        Overlapping windows add their delays (queues in series).
        """
        windows = self._by_target.get(dst)
        if not windows:
            return 0.0
        return sum(
            window.queue_delay for window in windows if window.active(now)
        )

    def any_active(self, now: float) -> bool:
        return any(window.active(now) for window in self.windows)

    def __repr__(self) -> str:
        return f"<AttackSchedule windows={len(self.windows)}>"


# ---------------------------------------------------------------------------
# Reconciling the axiomatic drop model with the emergent one.
# ---------------------------------------------------------------------------
# This module drops a *configured* fraction of inbound packets — the
# paper's iptables emulation. The finite-capacity service model
# (repro.defense.capacity) instead drops whatever exceeds the server's
# rate: a steady offered load R against capacity C saturates the bounded
# queue and sheds the excess, so the loss fraction converges to
# 1 - C/R for R > C. These helpers translate between the two, and the
# calibration test pins the translation: a flood tuned with
# ``equivalent_flood_qps`` reproduces the paper's Table 4 loss levels
# within tolerance.


def equivalent_loss_fraction(offered_qps: float, qps_capacity: float) -> float:
    """The steady-state emergent drop fraction for a given offered load."""
    if qps_capacity <= 0:
        raise ValueError(f"capacity must be positive: {qps_capacity}")
    if offered_qps <= qps_capacity:
        return 0.0
    return 1.0 - qps_capacity / offered_qps


def equivalent_flood_qps(loss_fraction: float, qps_capacity: float) -> float:
    """Total offered qps that saturates ``qps_capacity`` to the given
    loss level (the inverse of :func:`equivalent_loss_fraction`)."""
    if not 0.0 <= loss_fraction < 1.0:
        raise ValueError(f"loss fraction out of range: {loss_fraction}")
    if qps_capacity <= 0:
        raise ValueError(f"capacity must be positive: {qps_capacity}")
    return qps_capacity / (1.0 - loss_fraction)
