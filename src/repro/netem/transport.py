"""Datagram transport over the simulator: the emulated UDP fabric.

Every registered address owns a receive handler. :meth:`Network.send`
applies baseline loss, the attack schedule's inbound loss at the
destination, resolves anycast catchments, optionally round-trips the
message through the RFC 1035 wire codec, and schedules delivery after the
latency model's one-way delay.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional

from repro.dnscore.message import Message
from repro.dnscore.wire import from_wire, to_wire
from repro.netem.attack import AttackSchedule
from repro.netem.link import ConstantLatency, LatencyModel
from repro.simcore.rng import RandomStreams
from repro.simcore.simulator import Simulator

ReceiveHandler = Callable[["Packet"], None]


class Packet:
    """One datagram (or TCP segment stream) in flight."""

    __slots__ = ("src", "dst", "message", "sent_at", "transport")

    def __init__(
        self,
        src: str,
        dst: str,
        message: Message,
        sent_at: float,
        transport: str = "udp",
    ) -> None:
        self.src = src
        self.dst = dst
        self.message = message
        self.sent_at = sent_at
        self.transport = transport

    def __repr__(self) -> str:
        return (
            f"<Packet {self.src} -> {self.dst} [{self.transport}] "
            f"{self.message!r}>"
        )


class NetworkCounters:
    """Aggregate transport statistics, exposed for tests and benches."""

    __slots__ = ("sent", "delivered", "dropped_attack", "dropped_baseline")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_attack = 0
        self.dropped_baseline = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_attack": self.dropped_attack,
            "dropped_baseline": self.dropped_baseline,
        }


class Network:
    """The emulated datagram network."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        latency: Optional[LatencyModel] = None,
        attacks: Optional[AttackSchedule] = None,
        baseline_loss: float = 0.0,
        wire_format: bool = False,
        tracer=None,
    ) -> None:
        if not 0.0 <= baseline_loss < 1.0:
            raise ValueError(f"baseline loss out of range: {baseline_loss}")
        self.sim = sim
        self._trace = tracer
        self.latency = latency or ConstantLatency()
        self.attacks = attacks or AttackSchedule()
        self.baseline_loss = baseline_loss
        self.wire_format = wire_format
        self.counters = NetworkCounters()
        self._handlers: Dict[str, ReceiveHandler] = {}
        self._anycast: Dict[str, List[str]] = {}
        self._taps: Dict[str, List[ReceiveHandler]] = {}
        self._loss_rng = streams.stream("net.loss")
        self._latency_rng = streams.stream("net.latency")
        self._anycast_rng = streams.stream("net.anycast")

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, address: str, handler: ReceiveHandler) -> None:
        """Bind ``handler`` to ``address``; one handler per address."""
        if address in self._handlers:
            raise ValueError(f"address {address} already registered")
        self._handlers[address] = handler

    def unregister(self, address: str) -> None:
        self._handlers.pop(address, None)

    def register_anycast(self, address: str, instances: List[str]) -> None:
        """Declare ``address`` as anycast over already-registered
        ``instances``. Catchment is stable per source (hash-based)."""
        if not instances:
            raise ValueError("anycast group needs at least one instance")
        for instance in instances:
            if instance not in self._handlers:
                raise ValueError(f"anycast instance {instance} not registered")
        self._anycast[address] = list(instances)

    def is_registered(self, address: str) -> bool:
        return address in self._handlers or address in self._anycast

    def update_anycast(self, address: str, instances: List[str]) -> None:
        """Change an anycast group's live instances (route withdrawal /
        re-announcement). Catchments re-hash over the new set — the BGP
        shift the root operators performed during the 2015 events."""
        if address not in self._anycast:
            raise ValueError(f"{address} is not an anycast group")
        if not instances:
            raise ValueError("anycast group needs at least one instance")
        for instance in instances:
            if instance not in self._handlers:
                raise ValueError(f"anycast instance {instance} not registered")
        self._anycast[address] = list(instances)

    def anycast_catchment(self, src: str, address: str) -> str:
        """Which instance ``src`` currently lands on (for analysis)."""
        if address not in self._anycast:
            raise ValueError(f"{address} is not an anycast group")
        return self._resolve_instance(src, address)

    def register_tap(self, address: str, tap: ReceiveHandler) -> None:
        """Observe every packet *offered* to ``address``, before loss.

        This is the paper's tcpdump-in-front-of-iptables vantage: Figure
        10's offered-load series counts queries before the attack drops
        them. Multiple taps per address are allowed.
        """
        self._taps.setdefault(address, []).append(tap)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _resolve_instance(self, src: str, dst: str) -> str:
        instances = self._anycast.get(dst)
        if instances is None:
            return dst
        # Stable catchment: the same source always lands on the same
        # instance, as BGP catchments are stable in practice (§2.2).
        # crc32 rather than hash() so runs are reproducible regardless of
        # PYTHONHASHSEED.
        index = zlib.crc32(f"{src}|{dst}".encode("ascii")) % len(instances)
        return instances[index]

    def send(
        self, src: str, dst: str, message: Message, transport: str = "udp"
    ) -> bool:
        """Inject a packet. Returns True if delivery was scheduled.

        The attack schedule is evaluated against the *anycast instance*
        that actually receives the packet, and at (send time + latency),
        approximating arrival-time filtering at the last-hop router.

        ``transport="tcp"`` models a DNS-over-TCP exchange: the message
        arrives one extra round trip later (handshake), and the loss
        gauntlet is run twice (SYN and data segment both cross the
        congested inbound path).
        """
        if transport not in ("udp", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.counters.sent += 1
        instance = self._resolve_instance(src, dst)
        taps = self._taps.get(instance)
        if taps:
            packet = Packet(src, dst, message, self.sim.now, transport)
            for tap in taps:
                tap(packet)
        handler = self._handlers.get(instance)
        if handler is None:
            # Unroutable destinations silently blackhole, like real UDP.
            self.counters.dropped_baseline += 1
            return False

        loss_trials = 2 if transport == "tcp" else 1
        for _ in range(loss_trials):
            if self.baseline_loss and self._loss_rng.random() < self.baseline_loss:
                self.counters.dropped_baseline += 1
                if self._trace is not None and message.trace_id is not None:
                    self._trace.emit(
                        message.trace_id,
                        "drop_baseline",
                        "net",
                        detail=f"{src}->{dst}",
                    )
                return False

        one_way = self.latency.one_way(src, instance, self._latency_rng)
        delay = one_way * (3 if transport == "tcp" else 1)
        arrival = self.sim.now + delay
        attack_loss = self.attacks.inbound_loss(instance, arrival)
        for _ in range(loss_trials):
            if attack_loss and self._loss_rng.random() < attack_loss:
                self.counters.dropped_attack += 1
                if self._trace is not None and message.trace_id is not None:
                    self._trace.emit(
                        message.trace_id,
                        "drop_attack",
                        "net",
                        detail=f"{src}->{instance}",
                    )
                return False
        # Survivors of an attack with queueing modeled wait in the
        # target's full buffers (paper §5.1's future-work extension).
        queue_mean = self.attacks.inbound_queue_delay(instance, arrival)
        if queue_mean > 0:
            delay += self._latency_rng.expovariate(1.0 / queue_mean)

        payload = message
        if self.wire_format:
            payload = from_wire(to_wire(message))
            # The trace id is simulation metadata, not wire data; carry it
            # across the codec round-trip so traced lifecycles survive
            # wire-format runs.
            payload.trace_id = message.trace_id
        packet = Packet(src, dst, payload, self.sim.now, transport)
        self.sim.call_later(delay, self._deliver, handler, packet)
        return True

    def _deliver(self, handler: ReceiveHandler, packet: Packet) -> None:
        self.counters.delivered += 1
        handler(packet)
