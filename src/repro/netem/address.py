"""Sequential IPv4 address allocation for simulated hosts.

Addresses are plain strings. The allocator hands out unique addresses
inside a /8 per role prefix so logs stay human-readable (probes in
10/8, recursives in 100/8, authoritatives in 192/8, and so on).
"""

from __future__ import annotations

import ipaddress
from typing import Dict


class AddressAllocator:
    """Allocates unique IPv4 addresses from named pools."""

    def __init__(self) -> None:
        self._cursors: Dict[str, int] = {}
        self._pools: Dict[str, ipaddress.IPv4Network] = {}
        self._allocated: set = set()

    def add_pool(self, name: str, cidr: str) -> None:
        """Declare a pool, e.g. ``add_pool("probes", "10.0.0.0/8")``."""
        network = ipaddress.IPv4Network(cidr)
        self._pools[name] = network
        self._cursors.setdefault(name, 1)

    def allocate(self, pool: str) -> str:
        """Next unused address from ``pool``."""
        if pool not in self._pools:
            raise KeyError(f"unknown address pool {pool!r}")
        network = self._pools[pool]
        cursor = self._cursors[pool]
        if cursor >= network.num_addresses - 1:
            raise RuntimeError(f"address pool {pool!r} exhausted")
        address = str(network.network_address + cursor)
        self._cursors[pool] = cursor + 1
        self._allocated.add(address)
        return address

    def allocated_count(self) -> int:
        return len(self._allocated)


def default_allocator() -> AddressAllocator:
    """The pool layout every experiment uses."""
    allocator = AddressAllocator()
    allocator.add_pool("probes", "10.0.0.0/8")
    allocator.add_pool("recursives", "100.64.0.0/10")
    allocator.add_pool("public", "8.0.0.0/8")
    allocator.add_pool("authoritatives", "192.0.0.0/8")
    allocator.add_pool("anycast", "198.18.0.0/15")
    # Attacker-controlled sources (repro.attackload): real attacker
    # hosts, spoofed-source pools, and the NXNS authoritative. Keeping
    # them in their own /8 keeps logs readable and gives the defense
    # layer's legit-vs-attacker accounting an unambiguous ground truth.
    allocator.add_pool("attackers", "203.0.0.0/8")
    return allocator
