"""Latency models for the emulated network.

The paper's observations put client→recursive latency at a few
milliseconds and recursive→authoritative latency in the tens of
milliseconds; :class:`PerHostLatency` reproduces that by assigning each
host a base one-way delay and summing endpoints per packet, with small
multiplicative jitter.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


class LatencyModel:
    """Interface: one-way packet delay in seconds for (src, dst)."""

    def one_way(self, src: str, dst: str, rng: random.Random) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every packet takes exactly ``delay`` seconds (useful in tests)."""

    def __init__(self, delay: float = 0.01) -> None:
        if delay < 0:
            raise ValueError("latency must be non-negative")
        self.delay = delay

    def one_way(self, src: str, dst: str, rng: random.Random) -> float:
        return self.delay


class PerHostLatency(LatencyModel):
    """Per-host base delays summed per packet, with jitter.

    Hosts without an explicit base delay get ``default_base``. Jitter is a
    uniform multiplier in [1, 1 + jitter], modelling queueing noise without
    modelling full queues (the paper argues loss, not delay, dominates
    during DDoS).
    """

    def __init__(self, default_base: float = 0.01, jitter: float = 0.2) -> None:
        self.default_base = default_base
        self.jitter = jitter
        self._base: Dict[str, float] = {}

    def set_base(self, address: str, base: float) -> None:
        """Assign a one-way base delay contribution for ``address``."""
        if base < 0:
            raise ValueError("base delay must be non-negative")
        self._base[address] = base

    def base_of(self, address: str) -> float:
        return self._base.get(address, self.default_base)

    def one_way(self, src: str, dst: str, rng: random.Random) -> float:
        base = self.base_of(src) + self.base_of(dst)
        if self.jitter <= 0:
            return base
        return base * (1.0 + rng.random() * self.jitter)


class PairwiseLatency(LatencyModel):
    """Explicit per-pair delays, falling back to a default.

    Used by the single-probe case study (paper Appendix F) where the
    topology is small and fixed.
    """

    def __init__(self, default: float = 0.02) -> None:
        self.default = default
        self._pairs: Dict[Tuple[str, str], float] = {}

    def set_pair(self, src: str, dst: str, delay: float, symmetric: bool = True) -> None:
        self._pairs[(src, dst)] = delay
        if symmetric:
            self._pairs[(dst, src)] = delay

    def one_way(self, src: str, dst: str, rng: random.Random) -> float:
        return self._pairs.get((src, dst), self.default)


def draw_client_base(rng: random.Random) -> float:
    """One-way base for a client/probe: ~1–10 ms, long-ish tail."""
    return min(0.050, rng.lognormvariate(-5.8, 0.6))


def draw_recursive_base(rng: random.Random) -> float:
    """One-way base for an ISP recursive: ~2–15 ms."""
    return min(0.080, rng.lognormvariate(-5.3, 0.6))


def draw_authoritative_base(rng: random.Random) -> float:
    """One-way base for an authoritative: ~10–40 ms from most clients
    (the paper's authoritatives were in one Frankfurt datacenter)."""
    return min(0.120, rng.lognormvariate(-4.2, 0.5))
