"""The authoritative DNS server process.

One server may serve several zones (a root server serves ".", the
`cachetest.nl` servers serve only their zone). For each query it selects
the most specific served zone, runs the zone lookup, and answers with the
appropriate sections and flags. A small constant processing delay models
server think time.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.dnscore.message import Message, make_response
from repro.dnscore.name import Name
from repro.dnscore.rrtypes import Opcode, Rcode
from repro.dnscore.zone import LookupStatus, Zone
from repro.netem.topology import Host
from repro.netem.transport import Network, Packet
from repro.servers.querylog import QueryLog
from repro.simcore.simulator import Simulator


class AuthoritativeServer(Host):
    """Serves one or more zones over the emulated network."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        zones: Iterable[Zone],
        name: str = "",
        query_log: Optional[QueryLog] = None,
        processing_delay: float = 0.0005,
        enabled: bool = True,
        udp_payload_limit: int = 512,
        tracer=None,
        defense=None,
    ) -> None:
        super().__init__(sim, network, address, name=name)
        self._trace = tracer
        self.zones: List[Zone] = list(zones)
        self.query_log = query_log
        self.processing_delay = processing_delay
        self.enabled = enabled
        # Responses too large for a plain-DNS UDP datagram are truncated
        # (TC bit, empty sections) so clients retry over TCP. 0 disables.
        self.udp_payload_limit = udp_payload_limit
        # Upper bound this server honors for EDNS0-advertised payloads
        # (the DNS-flag-day recommendation).
        self.edns_payload_limit = 1232
        # Optional repro.defense pipeline consulted before serving; None
        # (the default everywhere but defense experiments) changes no
        # code path.
        self.defense = defense
        self.queries_received = 0
        self.responses_sent = 0
        self.truncated_responses = 0
        self.slipped_responses = 0

    # ------------------------------------------------------------------
    # Zone selection
    # ------------------------------------------------------------------
    def zone_for(self, qname: Name) -> Optional[Zone]:
        """The most specific served zone containing ``qname``."""
        best: Optional[Zone] = None
        for zone in self.zones:
            if not qname.is_subdomain_of(zone.origin):
                continue
            if best is None or len(zone.origin) > len(best.origin):
                best = zone
        return best

    def add_zone(self, zone: Zone) -> None:
        self.zones.append(zone)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        message = packet.message
        if message.is_response or message.question is None:
            return
        if message.opcode != Opcode.QUERY:
            response = make_response(message, rcode=Rcode.NOTIMP)
            self._respond(packet.src, response)
            return
        if self.defense is not None:
            action, delay = self.defense.admit(
                packet.src, packet.transport, self.sim.now
            )
            if action != "serve":
                self._defense_reject(packet, action)
                return
            if delay > 0:
                capacity = self.defense.capacity
                if (
                    self._trace is not None
                    and message.trace_id is not None
                    and capacity is not None
                    and delay * capacity.rate > 1.0 + 1e-9
                ):
                    self._trace.emit(
                        message.trace_id,
                        "queued",
                        self.name,
                        detail=f"{delay * 1000.0:.1f}ms",
                    )
                self.sim.call_later(delay, self._serve, packet)
                return
        self._serve(packet)

    def _defense_reject(self, packet: Packet, action: str) -> None:
        """A query stopped by a defense layer: drop it, or SLIP it.

        SLIP sends a truncated (TC=1) empty response in place of the
        real one; a well-behaved client retries over TCP, which the RRL
        layer never limits. Drops are silent — to the client side they
        are indistinguishable from the network losing the packet.
        """
        message = packet.message
        if action == "slip":
            self.slipped_responses += 1
            if self._trace is not None and message.trace_id is not None:
                self._trace.emit(message.trace_id, "slip", self.name)
            response = make_response(message, rcode=Rcode.NOERROR)
            response.tc = True
            response.trace_id = message.trace_id
            self._respond(packet.src, response, packet.transport)
            return
        if self._trace is not None and message.trace_id is not None:
            span_kind = {
                "drop_filtered": "filtered",
                "drop_rrl": "rate_limited",
                "drop_capacity": "drop_capacity",
            }.get(action, action)
            self._trace.emit(message.trace_id, span_kind, self.name)

    def _serve(self, packet: Packet) -> None:
        message = packet.message
        self.queries_received += 1
        question = message.question
        if self._trace is not None and message.trace_id is not None:
            self._trace.emit(
                message.trace_id,
                "auth_query",
                self.name,
                detail=f"{question.qname} {question.qtype.name}",
            )
        if self.query_log is not None:
            self.query_log.record(
                self.sim.now, packet.src, question.qname, question.qtype, self.name
            )
        if not self.enabled:
            # A disabled server is administratively down: queries blackhole,
            # used by tests to distinguish "down" from "100% attack loss".
            return

        zone = self.zone_for(question.qname)
        if zone is None:
            response = make_response(message, rcode=Rcode.REFUSED)
            response.trace_id = message.trace_id
            self._respond(packet.src, response, packet.transport)
            return

        result = zone.lookup(question.qname, question.qtype)
        edns = (
            self.edns_payload_limit if message.edns_payload is not None else None
        )
        if result.status == LookupStatus.OUT_OF_ZONE:
            response = make_response(
                message, rcode=Rcode.REFUSED, edns_payload=edns
            )
        else:
            response = make_response(
                message,
                rcode=result.rcode,
                aa=result.aa,
                answers=result.answers,
                authority=result.authority,
                additional=result.additional,
                edns_payload=edns,
            )
        response = self._truncate_if_needed(
            response, packet.transport, message.edns_payload
        )
        response.trace_id = message.trace_id
        self._respond(packet.src, response, packet.transport)

    def _truncate_if_needed(
        self,
        response: Message,
        transport: str,
        advertised: Optional[int] = None,
    ) -> Message:
        """Truncate oversized UDP responses (TC bit, emptied sections).

        With EDNS0 the effective limit is the smaller of the client's
        advertised payload and this server's own cap; without it, the
        classic 512 bytes.
        """
        if transport != "udp" or self.udp_payload_limit <= 0:
            return response
        from repro.dnscore.wire import to_wire, upper_bound_size

        limit = self.udp_payload_limit
        if advertised is not None:
            limit = max(limit, min(advertised, self.edns_payload_limit))
        # Cheap upper bound first (compression only shrinks a message);
        # encode for the exact size only when the bound exceeds the limit.
        if upper_bound_size(response) <= limit:
            return response
        if len(to_wire(response)) <= limit:
            return response
        self.truncated_responses += 1
        truncated = make_response(
            Message(
                response.msg_id,
                response.question,
                rd=response.rd,
            ),
            rcode=response.rcode,
            aa=response.aa,
            edns_payload=response.edns_payload,
        )
        truncated.tc = True
        return truncated

    def _respond(self, dst: str, response: Message, transport: str = "udp") -> None:
        self.responses_sent += 1
        if self.processing_delay > 0:
            self.sim.call_later(
                self.processing_delay, self.send, dst, response, transport
            )
        else:
            self.send(dst, response, transport)
