"""Server-side query logging.

The paper's Figures 10–12 are built from queries observed at the
authoritatives *before* attack drops — we log at delivery (packets that
survived the drop are what the server answers) and separately count
offered load at the transport, matching the paper's tcpdump-at-the-server
vantage combined with its note that it measures queries "before they are
dropped" for offered-load analysis. The log keeps raw rows; analysis code
bins them per round/qtype/source.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType


class QueryLogEntry:
    """One observed query."""

    __slots__ = ("time", "src", "qname", "qtype", "server")

    def __init__(
        self, time: float, src: str, qname: Name, qtype: RRType, server: str
    ) -> None:
        self.time = time
        self.src = src
        self.qname = qname
        self.qtype = qtype
        self.server = server

    def __repr__(self) -> str:
        return (
            f"<Query t={self.time:.3f} {self.src} -> {self.server} "
            f"{self.qname} {self.qtype}>"
        )


class QueryLog:
    """Accumulates query observations across one or more servers."""

    def __init__(self) -> None:
        self.entries: List[QueryLogEntry] = []

    def record(
        self, time: float, src: str, qname: Name, qtype: RRType, server: str
    ) -> None:
        self.entries.append(QueryLogEntry(time, src, qname, qtype, server))

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Aggregations used by the paper's figures
    # ------------------------------------------------------------------
    def count_by_round(
        self,
        round_seconds: float,
        classify: Callable[[QueryLogEntry], str],
    ) -> Dict[int, Dict[str, int]]:
        """Histogram: round index -> label -> count (Figure 10)."""
        result: Dict[int, Dict[str, int]] = {}
        for entry in self.entries:
            round_index = int(entry.time // round_seconds)
            bucket = result.setdefault(round_index, {})
            label = classify(entry)
            bucket[label] = bucket.get(label, 0) + 1
        return result

    def unique_sources_by_round(
        self, round_seconds: float
    ) -> Dict[int, int]:
        """Unique querying addresses per round (Figure 12)."""
        seen: Dict[int, Set[str]] = {}
        for entry in self.entries:
            round_index = int(entry.time // round_seconds)
            seen.setdefault(round_index, set()).add(entry.src)
        return {index: len(sources) for index, sources in seen.items()}

    def per_server_counts(self) -> Dict[str, int]:
        """Queries per receiving server (offered-load collector)."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.server] = counts.get(entry.server, 0) + 1
        return counts

    def per_source_counts(
        self,
        predicate: Optional[Callable[[QueryLogEntry], bool]] = None,
    ) -> Dict[str, int]:
        """Queries per source address (Figure 5-style counting)."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            if predicate is not None and not predicate(entry):
                continue
            counts[entry.src] = counts.get(entry.src, 0) + 1
        return counts

    def filtered(
        self, predicate: Callable[[QueryLogEntry], bool]
    ) -> Iterable[QueryLogEntry]:
        return (entry for entry in self.entries if predicate(entry))


def classify_query_kind(
    entry: QueryLogEntry,
    target_zone: Name,
    ns_names: Iterable[Name],
) -> str:
    """Label a query the way Figure 10 does.

    Returns one of ``NS``, ``A-for-NS``, ``AAAA-for-NS``, ``AAAA-for-PID``,
    or ``other``; probe-id queries are AAAA lookups for leaf names under
    the target zone that are not nameserver names.
    """
    ns_set = set(ns_names)
    if entry.qtype == RRType.NS and entry.qname == target_zone:
        return "NS"
    if entry.qname in ns_set:
        if entry.qtype == RRType.A:
            return "A-for-NS"
        if entry.qtype == RRType.AAAA:
            return "AAAA-for-NS"
        return "other"
    if entry.qtype == RRType.AAAA and entry.qname.is_subdomain_of(target_zone):
        return "AAAA-for-PID"
    return "other"
