"""Zone-tree construction for the experiments' DNS hierarchies.

The paper's testbed hangs ``cachetest.nl`` under ``.nl`` under the root
(and ``cachetest.net`` under ``.net`` for the software study). This module
builds that tree from declarative :class:`ZoneSpec` rows: each zone gets
its SOA, apex NS RRset, in-bailiwick nameserver A records, and the parent
zone gets the delegation NS + glue (possibly with a *different* TTL — the
referral-vs-answer precedence question of Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.dnscore.name import Name
from repro.dnscore.records import AAAA, NS, SOA, A, ResourceRecord
from repro.dnscore.rrtypes import RRType
from repro.dnscore.zone import Zone


@dataclass
class ZoneSpec:
    """Declarative description of one zone in the tree.

    ``nameservers`` maps nameserver host names to IPv4 addresses. TTLs:
    ``ns_ttl`` / ``a_ttl`` are what the zone itself publishes (the
    authoritative answer); ``delegation_ttl`` is what the parent publishes
    in referrals (the glue). The paper's Appendix A sets these apart to
    test which one recursives honor.
    """

    origin: str
    nameservers: Dict[str, str] = field(default_factory=dict)
    ns_ttl: int = 172800
    a_ttl: int = 172800
    delegation_ttl: Optional[int] = None
    negative_ttl: int = 3600
    soa_ttl: int = 86400
    serial: int = 1

    def origin_name(self) -> Name:
        return Name.from_text(self.origin)


def build_hierarchy(specs: Sequence[ZoneSpec]) -> Dict[Name, Zone]:
    """Build all zones and wire parent→child delegations with glue.

    Parents are located among the given specs by longest-suffix match;
    a spec without a parent in the list is simply not delegated (the root
    never is).
    """
    zones: Dict[Name, Zone] = {}
    spec_by_origin: Dict[Name, ZoneSpec] = {}

    for spec in specs:
        origin = spec.origin_name()
        if origin in zones:
            raise ValueError(f"duplicate zone {origin}")
        primary = _primary_ns_name(spec)
        soa = SOA(
            mname=primary,
            rname=Name.from_text(f"hostmaster.{spec.origin}")
            if not origin.is_root
            else Name.from_text("hostmaster.root-servers.test"),
            serial=spec.serial,
            minimum=spec.negative_ttl,
        )
        zone = Zone(origin, soa, soa_ttl=spec.soa_ttl)
        for host_text, address in spec.nameservers.items():
            host = Name.from_text(host_text)
            zone.add(origin, spec.ns_ttl, NS(host))
            if host.is_subdomain_of(origin):
                zone.add(host, spec.a_ttl, A(address))
        zones[origin] = zone
        spec_by_origin[origin] = spec

    # Delegations: each zone hangs off the closest enclosing zone present.
    for origin, spec in spec_by_origin.items():
        parent = _closest_parent(origin, zones)
        if parent is None:
            continue
        parent_zone = zones[parent]
        delegation_ttl = (
            spec.delegation_ttl if spec.delegation_ttl is not None else spec.ns_ttl
        )
        for host_text, address in spec.nameservers.items():
            host = Name.from_text(host_text)
            parent_zone.add(origin, delegation_ttl, NS(host))
            # Glue is needed when the host sits at/below the cut; we store
            # it unconditionally, as parents commonly carry it.
            parent_zone.add(host, delegation_ttl, A(address))
    return zones


def _primary_ns_name(spec: ZoneSpec) -> Name:
    if spec.nameservers:
        return Name.from_text(next(iter(spec.nameservers)))
    return Name.from_text(f"ns.{spec.origin}" if spec.origin != "." else "ns.test")


def _closest_parent(origin: Name, zones: Dict[Name, Zone]) -> Optional[Name]:
    if origin.is_root:
        return None
    candidate = origin.parent()
    while True:
        if candidate in zones:
            return candidate
        if candidate.is_root:
            return None
        candidate = candidate.parent()


def attach_probe_synthesizer(
    zone: Zone,
    prefix: str,
    answer_ttl: int,
    parse_probe_id: Optional[Callable[[str], Optional[int]]] = None,
) -> None:
    """Make ``zone`` answer ``{probeid}.<origin>`` AAAA queries.

    The answer encodes (current zone serial, probe id, configured TTL)
    in the rdata, exactly like the paper's instrumented zone (§3.2), so
    client-side classification can tell cached from fresh answers.
    """

    def default_parser(label: str) -> Optional[int]:
        try:
            return int(label)
        except ValueError:
            return None

    parser = parse_probe_id or default_parser

    def synthesize(qname: Name, qtype: RRType) -> Optional[List[ResourceRecord]]:
        labels = qname.relativize(zone.origin)
        if len(labels) != 1:
            return None
        probe_id = parser(labels[0])
        if probe_id is None:
            return None
        if qtype != RRType.AAAA:
            return []  # name exists, no data of this type
        rdata = AAAA.from_fields(prefix, zone.serial & 0xFFF, probe_id, answer_ttl)
        return [ResourceRecord(qname, answer_ttl, rdata)]

    zone.synthesizer = synthesize


# The paper's instrumentation prefix (§3.2).
PROBE_ANSWER_PREFIX = "fd0f:3897:faf7:a375::"
