"""Secondary (slave) zone replication: SOA refresh / retry / expire.

Nameserver replication (RFC 2182, cited by the paper's §2.2) usually
means secondaries that copy the zone from a primary and keep serving it
while the primary is unreachable — up to the SOA ``expire`` interval,
after which they must stop answering authoritatively. This module
models that lifecycle:

* every ``refresh`` seconds the replica checks the primary's serial and
  copies the zone when it advanced;
* failed checks retry every ``retry`` seconds;
* after ``expire`` seconds without a successful check the replica goes
  stale and its server answers SERVFAIL (``enabled`` semantics are the
  operator's choice; we model the RFC's "discard the zone").

Reachability is pluggable so experiments can wire it to the attack
schedule (a DDoS on the primary also blocks zone transfers).
"""

from __future__ import annotations

import copy
from typing import Callable, Optional

from repro.dnscore.name import Name
from repro.dnscore.rrtypes import RRType
from repro.dnscore.zone import LookupResult, Zone
from repro.simcore.simulator import Simulator

ReachabilityCheck = Callable[[], bool]


class ZoneReplica:
    """A secondary's view of a primary zone."""

    def __init__(
        self,
        sim: Simulator,
        primary: Zone,
        reachable: Optional[ReachabilityCheck] = None,
        transfer_delay: float = 0.05,
    ) -> None:
        self.sim = sim
        self.primary = primary
        self.reachable = reachable or (lambda: True)
        self.transfer_delay = transfer_delay
        self.zone: Zone = self._snapshot()
        self.last_success = sim.now
        self.transfers = 0
        self.failed_checks = 0
        self._running = False

    # ------------------------------------------------------------------
    # Transfer mechanics
    # ------------------------------------------------------------------
    def _snapshot(self) -> Zone:
        """Copy the primary's current contents (an AXFR)."""
        replica = copy.deepcopy(self.primary)
        return replica

    @property
    def serial(self) -> int:
        return self.zone.serial

    @property
    def expired(self) -> bool:
        """True once the SOA expire interval passed without contact."""
        expire = self.zone.soa_record.rdata.expire
        return self.sim.now - self.last_success > expire

    def check_now(self) -> bool:
        """One SOA check (+ transfer if the primary moved). Returns
        success (the primary was reachable)."""
        if not self.reachable():
            self.failed_checks += 1
            return False
        self.last_success = self.sim.now
        if self.primary.serial != self.zone.serial:
            self.zone = self._snapshot()
            self.transfers += 1
        return True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def start(self, duration: float) -> None:
        """Schedule the refresh/retry loop for ``duration`` seconds."""
        if self._running:
            raise RuntimeError("replica already started")
        self._running = True
        self.sim.call_later(self._next_interval(True), self._tick, duration)

    def _next_interval(self, success: bool) -> float:
        soa = self.zone.soa_record.rdata
        return float(soa.refresh if success else soa.retry)

    def _tick(self, duration: float) -> None:
        success = self.check_now()
        interval = self._next_interval(success)
        if self.sim.now + interval <= duration:
            self.sim.call_later(interval, self._tick, duration)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def lookup(self, qname: Name, qtype: RRType) -> Optional[LookupResult]:
        """Answer from the replica, or None once the zone expired
        (callers turn None into SERVFAIL, per RFC 1035 §5)."""
        if self.expired:
            return None
        return self.zone.lookup(qname, qtype)


class SecondaryAuthoritativeServer:
    """An authoritative server backed by a :class:`ZoneReplica`.

    Wraps the regular server but answers SERVFAIL once the replica
    expires, modeling RFC 2182 secondaries through a primary outage.
    """

    def __init__(self, server, replica: ZoneReplica) -> None:
        from repro.servers.authoritative import AuthoritativeServer

        if not isinstance(server, AuthoritativeServer):
            raise TypeError("server must be an AuthoritativeServer")
        self.server = server
        self.replica = replica
        server.zones = [replica.zone]
        self._install_expiry_hook()

    def _install_expiry_hook(self) -> None:
        server = self.server
        replica = self.replica
        original_zone_for = server.zone_for

        def zone_for(qname):
            if replica.expired:
                return None  # REFUSED/SERVFAIL path: zone discarded
            # Serve whatever snapshot the replica currently holds.
            server.zones = [replica.zone]
            return original_zone_for(qname)

        server.zone_for = zone_for
