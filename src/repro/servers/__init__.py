"""Authoritative DNS servers and their instrumentation."""

from repro.servers.authoritative import AuthoritativeServer
from repro.servers.hierarchy import ZoneSpec, build_hierarchy
from repro.servers.querylog import QueryLog, QueryLogEntry
from repro.servers.secondary import SecondaryAuthoritativeServer, ZoneReplica

__all__ = [
    "AuthoritativeServer",
    "QueryLog",
    "QueryLogEntry",
    "SecondaryAuthoritativeServer",
    "ZoneReplica",
    "ZoneSpec",
    "build_hierarchy",
]
