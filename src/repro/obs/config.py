"""Observability configuration and wiring.

:class:`ObsSpec` is the user-facing switch: a tiny frozen dataclass that
rides on :class:`repro.runner.executor.RunRequest` (it must be hashable
and canonicalizable for the disk-cache key) and on ``TestbedConfig``.

:class:`Observability` is the wired form the testbed builds from a spec:
the tracer, registry, flight recorder, and profiling flag, each
``None``/``False`` when disabled so components can capture the disabled
state once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineRecorder, TimelineSpec
from repro.obs.trace import Tracer


@dataclass(frozen=True)
class ObsSpec:
    """Which observability layers to enable for a run."""

    trace: bool = False
    metrics: bool = False
    profile: bool = False
    # Flight-recorder timeline sampling (repro.obs.timeline); None = off.
    # A nested frozen spec, so it canonicalizes into the cache key like
    # every other field.
    timeline: Optional[TimelineSpec] = None

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics or self.profile or (
            self.timeline is not None
        )


class Observability:
    """Live observability plumbing for one testbed."""

    __slots__ = ("spec", "tracer", "registry", "recorder", "sim")

    def __init__(
        self,
        spec: ObsSpec,
        sim,
        tracer: Optional[Tracer],
        registry: Optional[MetricsRegistry],
        recorder: Optional[TimelineRecorder] = None,
    ) -> None:
        self.spec = spec
        self.sim = sim
        self.tracer = tracer
        self.registry = registry
        self.recorder = recorder

    @classmethod
    def build(cls, spec: Optional[ObsSpec], sim) -> "Observability":
        """Wire up the requested layers; everything off for ``spec=None``."""
        if spec is None:
            spec = ObsSpec()
        tracer = Tracer(sim) if spec.trace else None
        # The flight recorder samples through the registry (instruments
        # plus pull collectors), so a timeline-only run still gets one;
        # per-round snapshots stay gated on ``spec.metrics``.
        registry = (
            MetricsRegistry()
            if (spec.metrics or spec.timeline is not None)
            else None
        )
        recorder = (
            TimelineRecorder(spec.timeline, sim, registry)
            if spec.timeline is not None
            else None
        )
        if spec.profile:
            sim.enable_profiling()
        return cls(spec, sim, tracer, registry, recorder)

    @property
    def spans(self):
        """Collected span events (empty list when tracing is off)."""
        return self.tracer.events if self.tracer is not None else []

    @property
    def metric_snapshots(self):
        """Collected metric snapshots (empty list when metrics are off)."""
        return self.registry.snapshots if self.registry is not None else []

    @property
    def timeline_points(self):
        """Collected timeline points (empty list when the recorder is off)."""
        return self.recorder.points if self.recorder is not None else []

    def profile_summary(self) -> Optional[dict]:
        """The simulator's profile as plain data, or ``None``."""
        profile = getattr(self.sim, "profile", None)
        return profile.summary() if profile is not None else None
