"""Metrics registry: counters, gauges, histograms, and pull collectors.

Components obtain instruments from a :class:`MetricsRegistry` at wiring
time (get-or-create, keyed by name) and update them with plain attribute
arithmetic — no locks, no string formatting, no dict lookups on the hot
path. :meth:`MetricsRegistry.snapshot` flattens everything into a
:class:`~repro.obs.records.MetricsSnapshot` of ``name -> number`` pairs;
the testbed takes one snapshot per probing round plus a final one, so
parallel/cached runner results carry the full telemetry series.

Like the tracer, the registry is ``None`` when metrics are disabled and
every component guards on that once at construction time.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.obs.records import MetricsSnapshot

Number = Union[int, float]


class Counter:
    """Monotonically increasing count. Update via ``counter.value += n``."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A level that goes up and down; tracks its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max_value = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount
        if self.value > self.max_value:
            self.max_value = self.value

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value} max={self.max_value}>"


class Histogram:
    """Fixed-bound bucketed distribution (cumulative style, plus sum/count)."""

    __slots__ = ("name", "bounds", "buckets", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        # One bucket per bound plus the +Inf overflow bucket.
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: Number) -> None:
        # ``bisect_left`` puts a value that equals a bound *in* that
        # bound's bucket: bucket ``i`` counts values in the half-open
        # interval ``(bounds[i-1], bounds[i]]`` (with bucket 0 covering
        # ``(-inf, bounds[0]]`` and the last bucket ``(bounds[-1], inf)``).
        # This is the Prometheus-style ``le`` (less-or-equal) convention
        # the snapshot keys advertise, and the quantile estimator below
        # relies on it.
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def quantile(self, fraction: float) -> float:
        """Estimate a quantile from the bucket counts.

        Walks the cumulative distribution to the bucket containing the
        requested rank, then interpolates linearly inside it (bucket
        ``i`` spans ``(bounds[i-1], bounds[i]]``; the first bucket's
        lower edge is taken as 0 for the non-negative quantities we
        histogram, and the overflow bucket reports its lower bound — the
        estimate cannot exceed what the buckets resolve).
        """
        if self.count == 0:
            return 0.0
        rank = fraction * self.count
        cumulative = 0
        for index, filled in enumerate(self.buckets):
            if filled == 0:
                continue
            if cumulative + filled >= rank:
                if index >= len(self.bounds):
                    return float(self.bounds[-1]) if self.bounds else 0.0
                upper = float(self.bounds[index])
                lower = float(self.bounds[index - 1]) if index > 0 else 0.0
                inside = (rank - cumulative) / filled
                return lower + (upper - lower) * min(1.0, max(0.0, inside))
            cumulative += filled
        return float(self.bounds[-1]) if self.bounds else 0.0

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} sum={self.total:g}>"


class CounterFamily:
    """A set of counters sharing a name, distinguished by a label tuple.

    Used where the label space is data-dependent, e.g. the stub outcome
    counters labelled ``(status, round_index)``. Flattened into snapshot
    keys as ``name.label1.label2``.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: Dict[Tuple, int] = {}

    def inc(self, labels: Tuple, amount: Number = 1) -> None:
        values = self.values
        values[labels] = values.get(labels, 0) + amount

    def __repr__(self) -> str:
        return f"<CounterFamily {self.name} series={len(self.values)}>"


class MetricsRegistry:
    """Component-facing registry plus snapshot machinery."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._families: Dict[str, CounterFamily] = {}
        self._collectors: List[Tuple[str, Callable[[], Union[Number, Dict]]]] = []
        self.snapshots: List[MetricsSnapshot] = []

    # -- instrument registration (get-or-create, so re-wiring is safe) --
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def family(self, name: str) -> CounterFamily:
        instrument = self._families.get(name)
        if instrument is None:
            instrument = self._families[name] = CounterFamily(name)
        return instrument

    def register_collector(
        self, name: str, collect: Callable[[], Union[Number, Dict]]
    ) -> None:
        """Register a pull-style source sampled at snapshot time.

        ``collect`` returns either a number (stored under ``name``) or a
        dict of suffix -> number (stored under ``name.suffix``). Used for
        state that already lives on a component, e.g. the network counters
        or per-server query-log sizes.
        """
        self._collectors.append((name, collect))

    def value(self, name: str) -> Number:
        """Current value of a counter or gauge by name (0 when absent).

        Read-side convenience for consumers that did not keep the
        instrument handle — the executor telemetry assertions in tests
        and the chaos smoke script.
        """
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge.value
        return 0

    # -- snapshotting --
    def read_values(self) -> Dict[str, float]:
        """Flatten every instrument and collector into ``name -> number``.

        The read side shared by :meth:`snapshot` (per-round metrics) and
        the flight recorder (sim-time timeline sampling); reading mutates
        nothing, so both consumers can interleave freely.
        """
        values: Dict[str, float] = {}
        for name, counter in self._counters.items():
            values[name] = counter.value
        for name, gauge in self._gauges.items():
            values[name] = gauge.value
            values[name + ".max"] = gauge.max_value
        for name, histogram in self._histograms.items():
            values[name + ".count"] = histogram.count
            values[name + ".sum"] = histogram.total
            for bound, filled in zip(histogram.bounds, histogram.buckets):
                values[f"{name}.le.{bound:g}"] = filled
            values[name + ".le.inf"] = histogram.buckets[-1]
            # Estimated quantiles from the cumulative buckets: coarse
            # (bucket-resolution) but monotone and cheap, and they make
            # latency drift visible without post-processing the buckets.
            for label, fraction in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                values[f"{name}.{label}"] = round(
                    histogram.quantile(fraction), 9
                )
        for name, fam in self._families.items():
            for labels, count in fam.values.items():
                key = ".".join([name, *(str(part) for part in labels)])
                values[key] = count
        for name, collect in self._collectors:
            sample = collect()
            if isinstance(sample, dict):
                for suffix, number in sample.items():
                    values[f"{name}.{suffix}"] = number
            else:
                values[name] = sample
        return values

    def snapshot(self, time: float, round_index: int) -> MetricsSnapshot:
        """Flatten every instrument into a snapshot and append it."""
        snap = MetricsSnapshot(time, round_index, self.read_values())
        self.snapshots.append(snap)
        return snap
