"""Observability: query-lifecycle tracing, metrics, timelines, profiling.

Four independent layers, all zero-cost when disabled:

- :class:`Tracer` — per-query span events (``repro ddos H --trace out.jsonl``)
- :class:`MetricsRegistry` — counters/gauges/histograms snapshotted per round
- :class:`TimelineRecorder` — the flight recorder: sim-time telemetry
  timelines with sketch-based per-source accounting
  (``repro ddos H --timeline out.jsonl``)
- simulator profiling — see :meth:`repro.simcore.Simulator.enable_profiling`

:class:`ObsSpec` selects layers per run and travels on runner requests.
"""

from repro.obs.config import Observability, ObsSpec
from repro.obs.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.records import (
    SPAN_KINDS,
    TERMINAL_KINDS,
    MetricsSnapshot,
    SpanEvent,
    TimelinePoint,
)
from repro.obs.sketch import CountMinSketch, SourceSketch, SpaceSaving
from repro.obs.spanio import (
    SpanFormatError,
    export_metrics,
    export_spans,
    export_timeline,
    import_metrics,
    import_spans,
    import_timeline,
    summarize_spans,
    validate_span_chains,
    validate_timeline,
)
from repro.obs.timeline import (
    DEFAULT_SERIES,
    TimelineRecorder,
    TimelineSpec,
    render_table,
    render_timeline,
    render_timeline_csv,
)
from repro.obs.trace import Tracer

__all__ = [
    "CountMinSketch",
    "Counter",
    "CounterFamily",
    "DEFAULT_SERIES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observability",
    "ObsSpec",
    "SPAN_KINDS",
    "SourceSketch",
    "SpaceSaving",
    "SpanEvent",
    "SpanFormatError",
    "TERMINAL_KINDS",
    "TimelinePoint",
    "TimelineRecorder",
    "TimelineSpec",
    "Tracer",
    "export_metrics",
    "export_spans",
    "export_timeline",
    "import_metrics",
    "import_spans",
    "import_timeline",
    "render_table",
    "render_timeline",
    "render_timeline_csv",
    "summarize_spans",
    "validate_span_chains",
    "validate_timeline",
]
