"""Observability: query-lifecycle tracing, metrics, and profiling.

Three independent layers, all zero-cost when disabled:

- :class:`Tracer` — per-query span events (``repro ddos H --trace out.jsonl``)
- :class:`MetricsRegistry` — counters/gauges/histograms snapshotted per round
- simulator profiling — see :meth:`repro.simcore.Simulator.enable_profiling`

:class:`ObsSpec` selects layers per run and travels on runner requests.
"""

from repro.obs.config import Observability, ObsSpec
from repro.obs.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.records import (
    SPAN_KINDS,
    TERMINAL_KINDS,
    MetricsSnapshot,
    SpanEvent,
)
from repro.obs.spanio import (
    SpanFormatError,
    export_metrics,
    export_spans,
    import_metrics,
    import_spans,
    summarize_spans,
    validate_span_chains,
)
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observability",
    "ObsSpec",
    "SPAN_KINDS",
    "SpanEvent",
    "SpanFormatError",
    "TERMINAL_KINDS",
    "Tracer",
    "export_metrics",
    "export_spans",
    "import_metrics",
    "import_spans",
    "summarize_spans",
    "validate_span_chains",
]
