"""Typed observability records: span events and metric snapshots.

Both record types follow the same conventions as the hot-path rows in
:mod:`repro.servers.querylog`: ``__slots__`` (they are created per query
event in traced runs), a stable one-line ``repr`` for debugging, and an
``as_dict`` method feeding the JSONL exporters in :mod:`repro.obs.spanio`.
"""

from __future__ import annotations

from typing import Any, Dict

# ---------------------------------------------------------------------------
# Span taxonomy
# ---------------------------------------------------------------------------
# Lifecycle start (exactly one per trace, always first):
SPAN_ISSUE = "issue"
# Intermediate hops:
SPAN_CACHE_HIT = "cache_hit"
SPAN_CACHE_MISS = "cache_miss"
SPAN_NEGCACHE_HIT = "negcache_hit"
SPAN_SERVFAIL_CACHED = "servfail_cached"
SPAN_COALESCED = "coalesced"
SPAN_CNAME = "cname"
SPAN_FORWARD = "forward"
SPAN_POOL_DISPATCH = "pool_dispatch"
SPAN_SEND = "send"
SPAN_REFERRAL = "referral"
SPAN_RETRY = "retry"
SPAN_TIMEOUT = "timeout"
SPAN_DROP_ATTACK = "drop_attack"
SPAN_DROP_BASELINE = "drop_baseline"
SPAN_AUTH_QUERY = "auth_query"
SPAN_STALE = "stale"
SPAN_GIVE_UP = "give_up"
SPAN_CANCELLED = "cancelled"
# Defense-layer decisions at a defended authoritative (repro.defense).
# All intermediate: a query that dies at a defense layer looks, to the
# client side, like a network drop — the chain still terminates at the
# stub (timeout/retry path), so completeness validation is unchanged.
SPAN_FILTERED = "filtered"
SPAN_RATE_LIMITED = "rate_limited"
SPAN_SLIP = "slip"
SPAN_QUEUED = "queued"
SPAN_DROP_CAPACITY = "drop_capacity"
# Terminal outcomes (exactly one per trace, at the stub):
SPAN_ANSWER = "answer"
SPAN_SERVFAIL = "servfail"
SPAN_NXDOMAIN = "nxdomain"
SPAN_NODATA = "nodata"
SPAN_NO_ANSWER = "no_answer"

#: Span kinds that terminate a stub query's lifecycle. Every complete
#: trace contains exactly one of these, emitted by the stub resolver.
TERMINAL_KINDS = frozenset(
    {SPAN_ANSWER, SPAN_SERVFAIL, SPAN_NXDOMAIN, SPAN_NODATA, SPAN_NO_ANSWER}
)

#: Every span kind the tracer may emit (the JSONL schema's closed set).
SPAN_KINDS = frozenset(
    {
        SPAN_ISSUE,
        SPAN_CACHE_HIT,
        SPAN_CACHE_MISS,
        SPAN_NEGCACHE_HIT,
        SPAN_SERVFAIL_CACHED,
        SPAN_COALESCED,
        SPAN_CNAME,
        SPAN_FORWARD,
        SPAN_POOL_DISPATCH,
        SPAN_SEND,
        SPAN_REFERRAL,
        SPAN_RETRY,
        SPAN_TIMEOUT,
        SPAN_DROP_ATTACK,
        SPAN_DROP_BASELINE,
        SPAN_AUTH_QUERY,
        SPAN_STALE,
        SPAN_GIVE_UP,
        SPAN_CANCELLED,
        SPAN_FILTERED,
        SPAN_RATE_LIMITED,
        SPAN_SLIP,
        SPAN_QUEUED,
        SPAN_DROP_CAPACITY,
    }
    | TERMINAL_KINDS
)


class SpanEvent:
    """One step in a traced query's lifecycle.

    ``trace_id`` ties the span to the stub query that started the chain,
    ``site`` names the component that emitted it (e.g. ``rec0``, ``net``,
    ``a.ns.example.com``), ``vp`` is set on the ``issue`` span to the
    vantage point (``p<probe>:<resolver>``), and ``detail`` carries
    kind-specific context such as the upstream server or attempt number.
    """

    __slots__ = ("trace_id", "time", "kind", "site", "vp", "detail")

    def __init__(
        self,
        trace_id: int,
        time: float,
        kind: str,
        site: str,
        vp: str = "",
        detail: str = "",
    ) -> None:
        self.trace_id = trace_id
        self.time = time
        self.kind = kind
        self.site = site
        self.vp = vp
        self.detail = detail

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL exporter."""
        row: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "time": round(self.time, 6),
            "kind": self.kind,
            "site": self.site,
        }
        if self.vp:
            row["vp"] = self.vp
        if self.detail:
            row["detail"] = self.detail
        return row

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpanEvent):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.time == other.time
            and self.kind == other.kind
            and self.site == other.site
            and self.vp == other.vp
            and self.detail == other.detail
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.time, self.kind, self.site))

    def __repr__(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        vp = f" vp={self.vp}" if self.vp else ""
        return (
            f"<Span t={self.time:.6f} #{self.trace_id} {self.kind} "
            f"@{self.site}{vp}{extra}>"
        )


class TimelinePoint:
    """One flight-recorder sample on the sim-time cadence.

    ``index`` counts samples from 0 in recording order; ``values`` maps
    flat series names (``offered_qps``, ``cache_hit_ratio``,
    ``sketch.entropy_bits``) to numbers. Points are plain data — like
    :class:`MetricsSnapshot` they pickle through ``TestbedSnapshot`` and
    the disk cache, so parallel and cached runs carry full timelines.
    """

    __slots__ = ("time", "index", "values")

    def __init__(self, time: float, index: int, values: Dict[str, float]) -> None:
        self.time = time
        self.index = index
        self.values = values

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": round(self.time, 6),
            "index": self.index,
            "values": self.values,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimelinePoint):
            return NotImplemented
        return (
            self.time == other.time
            and self.index == other.index
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.time, self.index))

    def __repr__(self) -> str:
        return (
            f"<TimelinePoint t={self.time:.6f} #{self.index} "
            f"series={len(self.values)}>"
        )


class MetricsSnapshot:
    """A flattened point-in-time reading of every registered metric.

    ``values`` maps flat metric names (``stub.outcome.ok.3``) to numbers.
    Snapshots are plain data so they pickle through ``TestbedSnapshot``
    and the disk cache without dragging live components along.
    """

    __slots__ = ("time", "round_index", "values")

    def __init__(self, time: float, round_index: int, values: Dict[str, float]) -> None:
        self.time = time
        self.round_index = round_index
        self.values = values

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": round(self.time, 6),
            "round_index": self.round_index,
            "values": self.values,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return (
            self.time == other.time
            and self.round_index == other.round_index
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash((self.time, self.round_index))

    def __repr__(self) -> str:
        return (
            f"<MetricsSnapshot t={self.time:.6f} round={self.round_index} "
            f"metrics={len(self.values)}>"
        )
