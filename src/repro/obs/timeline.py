"""The flight recorder: streaming sim-time telemetry timelines.

Per-round metric snapshots (PR 2) only see the world at probing-round
boundaries — everything between probes, which is where the paper's
cache/retry/loss interactions actually play out, is invisible. The
flight recorder samples the metrics registry (instruments plus pull
collectors, including the per-source sketches from
:mod:`repro.obs.sketch`) on a configurable *sim-time* cadence,
independent of probing rounds, driven by a self-rescheduling simulator
timer. Each sample is distilled into a typed
:class:`~repro.obs.records.TimelinePoint` whose series cover both
cumulative totals (exactly reconcilable against the final metrics
snapshot and the offered query log) and interval rates/ratios (the
rolling view online detection needs).

Sampling cadence vs. event cost: one tick costs one registry read
(``O(instruments + collector state)``) and one kernel event, so a 60 s
cadence over a 3-hour run adds ~180 events to the millions the
experiments process — negligible. The per-*packet* cost lives elsewhere:
the sketch tap adds ``O(depth)`` counter updates per offered query, and
only when ``TimelineSpec.sketch`` is on. With no ``TimelineSpec`` at
all, nothing is scheduled, no collector runs, and the hot path is
byte-for-byte the PR 2 None-sink code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.records import TimelinePoint

#: Series rendered by ``repro timeline`` when no filter is given.
DEFAULT_SERIES = (
    "offered_qps",
    "served_qps",
    "dropped_qps",
    "client_ok_ratio",
    "cache_hit_ratio",
    "queue_depth",
)


@dataclass(frozen=True)
class TimelineSpec:
    """Flight-recorder configuration (rides ``ObsSpec`` into the cache key).

    ``interval`` is the sim-time sampling cadence in seconds. ``sketch``
    arms the per-source sketches at the measurement-zone authoritatives;
    ``sketch_epsilon``/``sketch_delta`` size the count-min guarantee
    (estimate within ``epsilon * N`` with probability ``1 - delta``) and
    ``sketch_topk`` the space-saving heavy-hitter capacity.
    """

    interval: float = 60.0
    sketch: bool = True
    sketch_epsilon: float = 0.01
    sketch_delta: float = 0.01
    sketch_topk: int = 16


class TimelineRecorder:
    """Samples the registry into :class:`TimelinePoint` rows at sim-time.

    Wired by :class:`~repro.obs.config.Observability` when the spec
    carries a :class:`TimelineSpec`; ``None`` otherwise, so components
    and the testbed guard once at construction (the same discipline as
    the tracer and registry).
    """

    __slots__ = ("spec", "sim", "registry", "points", "_prev", "_armed")

    def __init__(self, spec: TimelineSpec, sim, registry) -> None:
        self.spec = spec
        self.sim = sim
        self.registry = registry
        self.points: List[TimelinePoint] = []
        # Previous cumulative reading for interval rates; carries the
        # last computed ratios forward across empty intervals.
        self._prev: Dict[str, float] = {}
        self._armed = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, until: float) -> None:
        """Arm the self-rescheduling sampler to cover ``[0, until]``.

        Samples land at ``interval, 2*interval, ...`` and exactly at
        ``until`` (the experiment's duration + grace), so the final point
        reads the same world state as the final metrics snapshot —
        that's what makes the timeline reconcile exactly. Idempotent;
        the first arming wins.
        """
        if self._armed:
            return
        self._armed = True
        remaining = until - self.sim.now
        if remaining <= 0:
            return
        self.sim.call_later(min(self.spec.interval, remaining), self._tick, until)

    def _tick(self, until: float) -> None:
        self.sample()
        remaining = until - self.sim.now
        if remaining > 1e-9:
            self.sim.call_later(
                min(self.spec.interval, remaining), self._tick, until
            )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self) -> TimelinePoint:
        """Read the registry now and append one derived timeline point."""
        raw = self.registry.read_values()
        point = TimelinePoint(
            self.sim.now, len(self.points), self._derive(self.sim.now, raw)
        )
        self.points.append(point)
        return point

    def _derive(self, now: float, raw: Dict[str, float]) -> Dict[str, float]:
        """Distill a flat registry reading into the typed series."""
        prev = self._prev
        values: Dict[str, float] = {}

        offered = _sum_prefix(raw, "auth.offered.")
        served = _sum_prefix(raw, "auth.served.")
        dropped_attack = raw.get("net.dropped_attack", 0)
        dropped_baseline = raw.get("net.dropped_baseline", 0)
        dropped = dropped_attack + dropped_baseline
        outcomes = _stub_outcomes(raw)
        answered = sum(outcomes.values())
        ok = outcomes.get("ok", 0)
        cache_hits = (
            raw.get("recursive.cache_hits", 0)
            + raw.get("recursive.negcache_hits", 0)
            + raw.get("forwarder.cache_hits", 0)
        )
        cache_lookups = (
            cache_hits
            + raw.get("recursive.cache_misses", 0)
            + raw.get("forwarder.upstream_queries", 0)
        )
        retries = raw.get("recursive.upstream_timeouts", 0) + raw.get(
            "forwarder.timeouts", 0
        )

        values["offered_total"] = offered
        values["served_total"] = served
        values["dropped_attack_total"] = dropped_attack
        values["dropped_baseline_total"] = dropped_baseline
        values["client_ok_total"] = ok
        values["client_answered_total"] = answered
        values["retry_total"] = retries
        # ``live`` (non-cancelled pending events) is a property of the
        # simulation state and identical across queue backends; ``dead``
        # is lazy-deletion bookkeeping and backend-specific, so it stays
        # out of the timeline to keep exports backend-invariant.
        values["queue_depth"] = raw.get("queue.live", 0)

        span = now - prev.get("time", 0.0)
        if span > 0:
            values["offered_qps"] = _rate(offered, prev.get("offered_total"), span)
            values["served_qps"] = _rate(served, prev.get("served_total"), span)
            values["dropped_qps"] = _rate(
                dropped,
                _maybe_sum(
                    prev.get("dropped_attack_total"),
                    prev.get("dropped_baseline_total"),
                ),
                span,
            )
            values["retry_qps"] = _rate(retries, prev.get("retry_total"), span)
        else:
            values["offered_qps"] = 0.0
            values["served_qps"] = 0.0
            values["dropped_qps"] = 0.0
            values["retry_qps"] = 0.0

        values["cache_hit_ratio"] = _interval_ratio(
            cache_hits,
            cache_lookups,
            prev.get("_cache_hits"),
            prev.get("_cache_lookups"),
            prev.get("cache_hit_ratio"),
        )
        values["client_ok_ratio"] = _interval_ratio(
            ok,
            answered,
            prev.get("client_ok_total"),
            prev.get("client_answered_total"),
            prev.get("client_ok_ratio"),
        )

        # Defense/attack/sketch collectors pass through under their own
        # prefixes when those subsystems are wired.
        for key, number in raw.items():
            if key.startswith(("defense.", "attack.", "sketch.")):
                values[key] = number

        self._prev = dict(values)
        self._prev["time"] = now
        self._prev["_cache_hits"] = cache_hits
        self._prev["_cache_lookups"] = cache_lookups
        return values


def _sum_prefix(raw: Dict[str, float], prefix: str) -> float:
    return sum(number for key, number in raw.items() if key.startswith(prefix))


def _stub_outcomes(raw: Dict[str, float]) -> Dict[str, float]:
    """Total ``stub.outcome.<outcome>.<round>`` counts by outcome."""
    outcomes: Dict[str, float] = {}
    for key, number in raw.items():
        if key.startswith("stub.outcome."):
            outcome = key.split(".")[2]
            outcomes[outcome] = outcomes.get(outcome, 0) + number
    return outcomes


def _maybe_sum(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None or b is None:
        return None
    return a + b


def _rate(current: float, previous: Optional[float], span: float) -> float:
    delta = current - (previous if previous is not None else 0.0)
    return round(delta / span, 6)


def _interval_ratio(
    numerator: float,
    denominator: float,
    prev_numerator: Optional[float],
    prev_denominator: Optional[float],
    carry: Optional[float],
) -> float:
    """Ratio over the last interval, carrying forward when it was empty."""
    num = numerator - (prev_numerator if prev_numerator is not None else 0.0)
    den = denominator - (
        prev_denominator if prev_denominator is not None else 0.0
    )
    if den <= 0:
        return carry if carry is not None else 0.0
    return round(num / den, 6)


# ---------------------------------------------------------------------------
# Rendering (shared with the per-hop breakdown in spanio.summarize_spans)
# ---------------------------------------------------------------------------
def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    aligns: Optional[Sequence[str]] = None,
) -> str:
    """Fixed-width text table: headers, a rule, one line per row.

    ``aligns`` holds ``"l"``/``"r"`` per column (default: first column
    left, the rest right — the shape every numeric summary here uses).
    """
    if aligns is None:
        aligns = ["l"] + ["r"] * (len(headers) - 1)
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for cell, width, align in zip(cells, widths, aligns):
            parts.append(cell.ljust(width) if align == "l" else cell.rjust(width))
        return "  ".join(parts).rstrip()

    lines = [fmt(headers), "  ".join("-" * width for width in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _format_value(number: float) -> str:
    if isinstance(number, float) and not number.is_integer():
        return f"{number:.3f}"
    return f"{number:g}"


def select_series(
    points: Sequence[TimelinePoint], series: Optional[Sequence[str]] = None
) -> List[str]:
    """The series names to render: requested ones, or the defaults that
    exist in the data plus any sketch series."""
    available: Dict[str, bool] = {}
    for point in points:
        for key in point.values:
            available[key] = True
    if series:
        missing = [name for name in series if name not in available]
        if missing:
            raise KeyError(
                f"series not in timeline: {', '.join(sorted(missing))} "
                f"(available: {', '.join(sorted(available))})"
            )
        return list(series)
    chosen = [name for name in DEFAULT_SERIES if name in available]
    chosen.extend(
        sorted(name for name in available if name.startswith("sketch."))
    )
    return chosen


def render_timeline(
    points: Sequence[TimelinePoint],
    series: Optional[Sequence[str]] = None,
    attack_window: Optional[Tuple[float, float]] = None,
    title: Optional[str] = None,
) -> str:
    """Text rendering: one row per sample, one column per series.

    Samples inside ``attack_window`` carry a ``*`` marker (the paper's
    attack-shading convention from the round tables).
    """
    names = select_series(points, series)
    headers = ["t(s)", *names] + (["atk"] if attack_window else [])
    rows = []
    for point in points:
        row = [f"{point.time:.0f}"]
        row.extend(
            _format_value(point.values[name]) if name in point.values else "-"
            for name in names
        )
        if attack_window is not None:
            start, end = attack_window
            row.append("*" if start <= point.time < end else "")
        rows.append(row)
    table = render_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def render_timeline_csv(
    points: Sequence[TimelinePoint], series: Optional[Sequence[str]] = None
) -> str:
    """CSV rendering with a ``time,index,<series...>`` header."""
    names = select_series(points, series)
    lines = [",".join(["time", "index", *names])]
    for point in points:
        cells = [f"{point.time:g}", str(point.index)]
        cells.extend(
            _format_value(point.values[name]) if name in point.values else ""
            for name in names
        )
        lines.append(",".join(cells))
    return "\n".join(lines)
