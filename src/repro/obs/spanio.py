"""JSONL import/export, schema validation, and summaries for span traces.

The span JSONL schema (one object per line)::

    {"trace_id": 17, "time": 1203.5, "kind": "issue", "site": "stub",
     "vp": "p3:rec0", "detail": "", "run": "ddos:H"}

``vp``/``detail``/``run`` are optional. ``kind`` must come from
:data:`repro.obs.records.SPAN_KINDS`. Completeness (the acceptance
criterion for traced runs): every trace id has exactly one ``issue`` span,
it is the earliest span of the trace, and exactly one terminal outcome
span from :data:`repro.obs.records.TERMINAL_KINDS` follows it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO

from repro.obs.records import (
    SPAN_AUTH_QUERY,
    SPAN_FORWARD,
    SPAN_ISSUE,
    SPAN_KINDS,
    SPAN_SEND,
    TERMINAL_KINDS,
    MetricsSnapshot,
    SpanEvent,
    TimelinePoint,
)
from repro.obs.timeline import render_table


class SpanFormatError(ValueError):
    """Raised when a JSONL span trace fails schema or completeness checks."""


def export_spans(
    spans: Iterable[SpanEvent], stream: TextIO, run: Optional[str] = None
) -> int:
    """Write spans as JSONL; returns the number of rows written."""
    count = 0
    for span in spans:
        row = span.as_dict()
        if run is not None:
            row["run"] = run
        stream.write(json.dumps(row, separators=(",", ":")) + "\n")
        count += 1
    return count


def import_spans(stream: TextIO) -> List[SpanEvent]:
    """Read JSONL spans back, validating each row against the schema."""
    spans: List[SpanEvent] = []
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SpanFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
        spans.append(_span_from_row(row, lineno))
    return spans


def _span_from_row(row: Dict[str, Any], lineno: int) -> SpanEvent:
    if not isinstance(row, dict):
        raise SpanFormatError(f"line {lineno}: expected an object")
    for field, kinds in (("trace_id", int), ("time", (int, float)), ("kind", str), ("site", str)):
        if field not in row:
            raise SpanFormatError(f"line {lineno}: missing field {field!r}")
        if not isinstance(row[field], kinds) or isinstance(row[field], bool):
            raise SpanFormatError(
                f"line {lineno}: field {field!r} has wrong type "
                f"{type(row[field]).__name__}"
            )
    if row["kind"] not in SPAN_KINDS:
        raise SpanFormatError(f"line {lineno}: unknown span kind {row['kind']!r}")
    return SpanEvent(
        row["trace_id"],
        float(row["time"]),
        row["kind"],
        row["site"],
        vp=row.get("vp", ""),
        detail=row.get("detail", ""),
    )


def validate_span_chains(spans: Sequence[SpanEvent]) -> Dict[int, List[SpanEvent]]:
    """Check completeness of every trace; returns spans grouped by trace id.

    Raises :class:`SpanFormatError` for orphan spans (no ``issue``),
    missing terminals, duplicated issue/terminal spans, or spans timed
    before their trace's issue.
    """
    chains: Dict[int, List[SpanEvent]] = {}
    for span in spans:
        chains.setdefault(span.trace_id, []).append(span)
    for trace_id, chain in chains.items():
        chain.sort(key=lambda span: span.time)
        issues = [span for span in chain if span.kind == SPAN_ISSUE]
        terminals = [span for span in chain if span.kind in TERMINAL_KINDS]
        if not issues:
            raise SpanFormatError(f"trace {trace_id}: orphan spans (no issue span)")
        if len(issues) > 1:
            raise SpanFormatError(f"trace {trace_id}: {len(issues)} issue spans")
        if not terminals:
            raise SpanFormatError(f"trace {trace_id}: no terminal outcome span")
        if len(terminals) > 1:
            raise SpanFormatError(
                f"trace {trace_id}: {len(terminals)} terminal spans "
                f"({[span.kind for span in terminals]})"
            )
        if chain[0].kind != SPAN_ISSUE:
            raise SpanFormatError(
                f"trace {trace_id}: span {chain[0].kind!r} precedes the issue span"
            )
    return chains


def summarize_spans(spans: Sequence[SpanEvent], top_n: int = 10) -> str:
    """Render the ``trace-summary`` report: slowest lifecycles + outcome table.

    The latency of a lifecycle is terminal time minus issue time. Traces
    whose terminal is ``no_answer`` may have trailing spans (recursives
    keep retrying after the stub gives up); those retries still count
    toward the trace's span total but not its latency.
    """
    chains = validate_span_chains(spans)
    rows = []
    outcome_stats: Dict[str, List[int]] = {}
    for trace_id, chain in sorted(chains.items()):
        issue = chain[0]
        terminal = next(span for span in chain if span.kind in TERMINAL_KINDS)
        latency = terminal.time - issue.time
        rows.append((latency, trace_id, issue, terminal, len(chain)))
        outcome_stats.setdefault(terminal.kind, []).append(len(chain))

    lines = [f"traces: {len(rows)}   spans: {len(spans)}", ""]
    lines.append(f"slowest {min(top_n, len(rows))} query lifecycles:")
    lines.append(
        f"{'latency':>10} {'trace':>7} {'vp':<14} {'outcome':<10} {'spans':>5}"
    )
    for latency, trace_id, issue, terminal, n_spans in sorted(
        rows, key=lambda row: (-row[0], row[1])
    )[:top_n]:
        lines.append(
            f"{latency:>9.3f}s {trace_id:>7} {issue.vp:<14} "
            f"{terminal.kind:<10} {n_spans:>5}"
        )
    lines.append("")
    lines.append("spans per lifecycle by outcome:")
    lines.append(
        f"{'outcome':<10} {'traces':>7} {'min':>5} {'mean':>7} {'max':>5}"
    )
    for outcome in sorted(outcome_stats):
        counts = outcome_stats[outcome]
        lines.append(
            f"{outcome:<10} {len(counts):>7} {min(counts):>5} "
            f"{sum(counts) / len(counts):>7.1f} {max(counts):>5}"
        )
    lines.append("")
    lines.append("per-hop latency (first occurrence of each hop per trace):")
    lines.append(_per_hop_breakdown(chains))
    return "\n".join(lines)


#: Hop labels in pipeline order, for stable table ordering.
_HOP_ORDER = (
    "stub->forwarder",
    "stub->recursive",
    "forwarder->recursive",
    "recursive->auth",
    "auth->answer",
    "stub->answer",
)


def _per_hop_breakdown(chains: Dict[int, List[SpanEvent]]) -> str:
    """Latency per resolution hop, from first-occurrence span times.

    A chain contributes a hop only when both of its endpoints exist
    *before the terminal*: forwarder-fronted VPs contribute
    ``stub->forwarder``, direct-recursive VPs ``stub->recursive``, and
    chains answered from cache (no ``send``) only the end-to-end row.
    Spans after the terminal (recursives retrying past the stub's
    give-up) are excluded, matching the latency convention above.
    """
    hops: Dict[str, List[float]] = {}

    def record(hop: str, delta: float) -> None:
        hops.setdefault(hop, []).append(delta)

    for chain in chains.values():
        issue_time = chain[0].time
        first: Dict[str, float] = {}
        terminal_time = None
        for span in chain:
            if span.kind in TERMINAL_KINDS:
                terminal_time = span.time
                break
            if span.kind in (SPAN_FORWARD, SPAN_SEND, SPAN_AUTH_QUERY):
                first.setdefault(span.kind, span.time)
        if terminal_time is None:
            continue
        forward = first.get(SPAN_FORWARD)
        send = first.get(SPAN_SEND)
        auth = first.get(SPAN_AUTH_QUERY)
        if forward is not None:
            record("stub->forwarder", forward - issue_time)
            if send is not None:
                record("forwarder->recursive", send - forward)
        elif send is not None:
            record("stub->recursive", send - issue_time)
        if send is not None and auth is not None:
            record("recursive->auth", auth - send)
        if auth is not None:
            record("auth->answer", terminal_time - auth)
        record("stub->answer", terminal_time - issue_time)

    rows = []
    for hop in _HOP_ORDER:
        deltas = hops.get(hop)
        if not deltas:
            continue
        rows.append(
            [
                hop,
                str(len(deltas)),
                f"{min(deltas) * 1e3:.1f}",
                f"{sum(deltas) / len(deltas) * 1e3:.1f}",
                f"{max(deltas) * 1e3:.1f}",
            ]
        )
    if not rows:
        return "(no complete hops)"
    return render_table(
        ["hop", "traces", "min ms", "mean ms", "max ms"], rows
    )


def export_metrics(
    snapshots: Iterable[MetricsSnapshot], stream: TextIO, run: Optional[str] = None
) -> int:
    """Write metric snapshots as JSONL; returns the number of rows."""
    count = 0
    for snap in snapshots:
        row = snap.as_dict()
        if run is not None:
            row["run"] = run
        stream.write(json.dumps(row, separators=(",", ":"), sort_keys=True) + "\n")
        count += 1
    return count


def import_metrics(stream: TextIO) -> List[MetricsSnapshot]:
    """Read metric snapshots back from JSONL."""
    snapshots: List[MetricsSnapshot] = []
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SpanFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
        if "time" not in row or "round_index" not in row or "values" not in row:
            raise SpanFormatError(f"line {lineno}: not a metrics snapshot row")
        snapshots.append(
            MetricsSnapshot(float(row["time"]), int(row["round_index"]), row["values"])
        )
    return snapshots


# ---------------------------------------------------------------------------
# Timeline JSONL (flight-recorder points)
# ---------------------------------------------------------------------------
# Schema, one object per line::
#
#     {"time": 3600.0, "index": 59, "values": {"offered_qps": 12.4, ...},
#      "run": "ddos-H"}
#
# ``run`` is optional and distinguishes interleaved timelines in one
# file (the report export). Within a run, indexes are contiguous from 0
# and times strictly increase; every value is a number.


def export_timeline(
    points: Iterable[TimelinePoint], stream: TextIO, run: Optional[str] = None
) -> int:
    """Write timeline points as JSONL; returns the number of rows."""
    count = 0
    for point in points:
        row = point.as_dict()
        if run is not None:
            row["run"] = run
        stream.write(json.dumps(row, separators=(",", ":"), sort_keys=True) + "\n")
        count += 1
    return count


def import_timeline(stream: TextIO) -> Dict[str, List[TimelinePoint]]:
    """Read timeline JSONL back, grouped by ``run`` label (\"\" if absent).

    Each row is schema-checked; call :func:`validate_timeline` on each
    group for the series-level invariants.
    """
    by_run: Dict[str, List[TimelinePoint]] = {}
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SpanFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(row, dict):
            raise SpanFormatError(f"line {lineno}: expected an object")
        for field, kinds in (("time", (int, float)), ("index", int)):
            if field not in row:
                raise SpanFormatError(f"line {lineno}: missing field {field!r}")
            if not isinstance(row[field], kinds) or isinstance(row[field], bool):
                raise SpanFormatError(
                    f"line {lineno}: field {field!r} has wrong type "
                    f"{type(row[field]).__name__}"
                )
        values = row.get("values")
        if not isinstance(values, dict):
            raise SpanFormatError(f"line {lineno}: missing or non-object 'values'")
        for key, number in values.items():
            if not isinstance(number, (int, float)) or isinstance(number, bool):
                raise SpanFormatError(
                    f"line {lineno}: series {key!r} is not a number"
                )
        by_run.setdefault(str(row.get("run", "")), []).append(
            TimelinePoint(float(row["time"]), row["index"], values)
        )
    return by_run


def validate_timeline(points: Sequence[TimelinePoint]) -> None:
    """Check one run's series invariants (contiguous indexes, monotone time).

    Raises :class:`SpanFormatError` on the first violation. Cumulative
    ``*_total`` series must also be monotone non-decreasing — they are
    integrals of the run, and a decrease means the exporter mixed runs
    or re-sampled out of order.
    """
    previous: Optional[TimelinePoint] = None
    for position, point in enumerate(points):
        if point.index != position:
            raise SpanFormatError(
                f"timeline point {position}: index {point.index} is not "
                f"contiguous"
            )
        if previous is not None:
            if point.time <= previous.time:
                raise SpanFormatError(
                    f"timeline point {position}: time {point.time} does not "
                    f"increase past {previous.time}"
                )
            for key, number in point.values.items():
                if key.endswith("_total") and key in previous.values:
                    if number < previous.values[key]:
                        raise SpanFormatError(
                            f"timeline point {position}: cumulative series "
                            f"{key!r} decreased ({previous.values[key]} -> "
                            f"{number})"
                        )
        previous = point
