"""Streaming sketches for per-source accounting at the authoritatives.

Three small, deterministic stream summaries sized for the flight
recorder's per-packet hot path (one :meth:`SourceSketch.update` per
offered query at a measurement-zone server):

- :class:`CountMinSketch` — per-key frequency estimates with the classic
  one-sided guarantee ``true <= estimate <= true + epsilon * N`` (with
  probability ``1 - delta``), in ``O(depth)`` per update.
- :class:`SpaceSaving` — Metwally-style heavy-hitter tracking: at most
  ``capacity`` monitored keys, every key with true count above
  ``N / capacity`` is guaranteed to be monitored, and each monitored
  count overestimates by at most its recorded ``error``.
- :class:`SourceSketch` — the composite the testbed wires in front of
  the authoritatives: count-min + space-saving + a linear-counting
  distinct estimator, summarised into flat numeric series (total load,
  distinct sources, source entropy, heavy-hitter shares) for the
  timeline's pull collector.

All hashing uses :func:`zlib.crc32` with per-row salts, never Python's
``hash`` — estimates must not depend on ``PYTHONHASHSEED``, and the
determinism lint rule enforces as much. Every structure is plain data
(ints and lists) so sketches pickle through ``TestbedSnapshot`` and the
disk cache.
"""

from __future__ import annotations

import math
# Data-structure use only (space-saving eviction order), not event
# scheduling — the flight recorder's timers all go through the simulator.
from heapq import heapify, heappop, heappush  # repro-lint: allow[event-loop]
from typing import Dict, List, Tuple
from zlib import crc32


class CountMinSketch:
    """Conservative frequency estimates over a key stream.

    ``width`` is ``ceil(e / epsilon)`` and ``depth`` is
    ``ceil(ln(1 / delta))``: an estimate exceeds the true count by more
    than ``epsilon * N`` (``N`` = total stream weight) with probability
    at most ``delta``. Estimates never undercount.
    """

    __slots__ = ("epsilon", "delta", "width", "depth", "total", "_rows", "_salts")

    def __init__(self, epsilon: float = 0.01, delta: float = 0.01) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon!r}")
        if not 0.0 < delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {delta!r}")
        self.epsilon = epsilon
        self.delta = delta
        self.width = math.ceil(math.e / epsilon)
        self.depth = math.ceil(math.log(1.0 / delta))
        self.total = 0
        self._rows: List[List[int]] = [
            [0] * self.width for _ in range(self.depth)
        ]
        # Independent hash functions per row: crc32 seeded per row (the
        # seed is itself a crc32 of a row label, so rows stay decorrelated
        # without concatenating a salt onto every key).
        self._salts: Tuple[int, ...] = tuple(
            crc32(f"cms-row-{index}:".encode("ascii"))
            for index in range(self.depth)
        )

    def update(self, key: str, amount: int = 1) -> None:
        data = key.encode("utf-8", "surrogateescape")
        width = self.width
        for salt, row in zip(self._salts, self._rows):
            row[crc32(data, salt) % width] += amount
        self.total += amount

    def estimate(self, key: str) -> int:
        data = key.encode("utf-8", "surrogateescape")
        width = self.width
        return min(
            row[crc32(data, salt) % width]
            for salt, row in zip(self._salts, self._rows)
        )

    def error_bound(self) -> float:
        """The additive bound ``epsilon * N`` at the current stream size."""
        return self.epsilon * self.total

    def __repr__(self) -> str:
        return (
            f"<CountMinSketch {self.depth}x{self.width} "
            f"eps={self.epsilon:g} N={self.total}>"
        )


class SpaceSaving:
    """Top-k heavy hitters with bounded overestimation.

    Keeps at most ``capacity`` ``key -> [count, error]`` entries. A new
    key arriving at a full table evicts the minimum-count entry and
    inherits its count (recorded as ``error``), so a monitored count
    overestimates the true count by at most that entry's ``error``.
    When the stream holds at most ``capacity`` distinct keys, every
    count is exact (``error`` 0).
    """

    __slots__ = ("capacity", "total", "_entries", "_minheap")

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.total = 0
        self._entries: Dict[str, List[int]] = {}
        # Lazy min-heap of (count, error, key) snapshots. Every entry
        # modification pushes a fresh snapshot; eviction pops stale ones
        # (counts only grow, so a snapshot matching the live entry IS the
        # live state). Bounded by periodic compaction in update().
        self._minheap: List[Tuple[int, int, str]] = []

    def update(self, key: str, amount: int = 1) -> None:
        self.total += amount
        entries = self._entries
        heap = self._minheap
        entry = entries.get(key)
        if entry is not None:
            entry[0] += amount
            heappush(heap, (entry[0], entry[1], key))
            return
        if len(entries) < self.capacity:
            entries[key] = [amount, 0]
            heappush(heap, (amount, 0, key))
            return
        # Evict the minimum-(count, error, key) entry — the tie-break
        # keeps the summary independent of dict insertion history. Pop
        # past snapshots that no longer match a live entry.
        while True:
            count, error, victim = heap[0]
            live = entries.get(victim)
            if live is not None and live[0] == count and live[1] == error:
                break
            heappop(heap)
        floor = count
        heappop(heap)
        del entries[victim]
        entries[key] = [floor + amount, floor]
        heappush(heap, (floor + amount, floor, key))
        if len(heap) > 8 * self.capacity:
            # Compact: rebuild from the live entries only.
            self._minheap = [
                (entry[0], entry[1], live_key)
                for live_key, entry in entries.items()
            ]
            heapify(self._minheap)

    def top(self, n: int) -> List[Tuple[str, int, int]]:
        """The ``n`` largest ``(key, count, error)`` rows, deterministically
        ordered by (-count, error, key)."""
        entries = self._entries
        ranked = sorted(
            entries.items(), key=lambda item: (-item[1][0], item[1][1], item[0])
        )
        return [(key, entry[0], entry[1]) for key, entry in ranked[:n]]

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<SpaceSaving {len(self._entries)}/{self.capacity} "
            f"N={self.total}>"
        )


class SourceSketch:
    """Composite per-source accounting for one run's offered load.

    ``update(src)`` is the hot-path entry (one call per offered query at
    a measurement-zone authoritative): one count-min update, one
    space-saving update, and one bit set in the linear-counting bitmap.
    ``summary()`` is pull-only — it is sampled by the flight recorder on
    its sim-time cadence and never touches the hot path.
    """

    __slots__ = ("cms", "heavy", "_bitmap", "_bitmap_bits", "total")

    #: Linear-counting register size (bits). 8192 keeps the standard-error
    #: of the distinct estimate under ~2% for the populations we simulate.
    BITMAP_BITS = 8192

    def __init__(
        self,
        epsilon: float = 0.01,
        delta: float = 0.01,
        topk: int = 16,
    ) -> None:
        self.cms = CountMinSketch(epsilon=epsilon, delta=delta)
        self.heavy = SpaceSaving(capacity=topk)
        self._bitmap_bits = self.BITMAP_BITS
        self._bitmap = bytearray(self._bitmap_bits // 8)
        self.total = 0

    def update(self, src: str, amount: int = 1) -> None:
        self.total += amount
        self.cms.update(src, amount)
        self.heavy.update(src, amount)
        bit = crc32(src.encode("utf-8", "surrogateescape")) % self._bitmap_bits
        self._bitmap[bit >> 3] |= 1 << (bit & 7)

    # -- pull-side estimates -------------------------------------------
    def distinct(self) -> float:
        """Linear-counting estimate of distinct sources seen so far."""
        zeros = sum(
            8 - bin(byte).count("1") for byte in self._bitmap
        )
        if zeros == 0:
            # Register saturated; the estimate diverges. Report the
            # register size as the (now unreliable) floor.
            return float(self._bitmap_bits)
        m = float(self._bitmap_bits)
        return m * math.log(m / zeros)

    def entropy_bits(self) -> float:
        """Rolling estimate of the source distribution's Shannon entropy.

        Heavy hitters contribute their estimated probabilities exactly;
        the residual mass (total minus monitored counts) is spread
        uniformly over the remaining distinct sources. Under a flood the
        top source dominates and entropy collapses toward 0; under the
        legitimate population it approaches ``log2(distinct)``.
        """
        total = self.total
        if total <= 0:
            return 0.0
        entropy = 0.0
        monitored = 0
        for _key, count, _error in self.heavy.top(self.heavy.capacity):
            monitored += count
            p = count / total
            if p > 0.0:
                entropy -= p * math.log2(p)
        residual = total - monitored
        if residual > 0:
            tail_keys = max(1.0, self.distinct() - len(self.heavy))
            p = residual / total / tail_keys
            if p > 0.0:
                entropy -= residual / total * math.log2(p)
        return entropy

    def summary(self) -> Dict[str, float]:
        """Flat numeric series for the timeline's ``sketch`` collector.

        ``topk_share`` is the *guaranteed* heavy-hitter mass — monitored
        counts minus their overestimation errors — because the raw
        monitored counts always sum to the full stream total (evictions
        inherit the victim's count), which would make the raw share a
        constant 1.
        """
        total = self.total
        top = self.heavy.top(self.heavy.capacity)
        top1 = top[0][1] if top else 0
        topk_mass = sum(max(0, count - error) for _key, count, error in top)
        return {
            "total": total,
            "distinct": round(self.distinct(), 3),
            "entropy_bits": round(self.entropy_bits(), 6),
            "top1_share": round(top1 / total, 6) if total else 0.0,
            "topk_share": round(topk_mass / total, 6) if total else 0.0,
        }

    def heavy_hitters(self, n: int = 10) -> List[Tuple[str, int, int]]:
        """The top ``n`` sources as ``(src, estimated_count, error)``.

        Space-saving nominates the keys; the reported count is the
        smaller of its count and the count-min estimate. Both
        overestimate the true count, so the minimum still does — and it
        inherits the count-min guarantee: within ``epsilon * N`` of the
        true count (w.h.p.), even when the space-saving table is
        churning because the stream holds more than ``topk`` sources.
        """
        return [
            (key, min(count, self.cms.estimate(key)), error)
            for key, count, error in self.heavy.top(n)
        ]

    def __repr__(self) -> str:
        return f"<SourceSketch N={self.total} monitored={len(self.heavy)}>"
