"""Query-lifecycle tracer.

A :class:`Tracer` is the single sink for span events in a traced run.
Components hold either a ``Tracer`` or ``None`` — resolved once at wiring
time — and guard every emission site with ``if tracer is not None``, so
untraced runs pay nothing beyond the attribute load (the zero-cost
contract; see DESIGN.md §8).

Trace ids are small integers handed out by :meth:`Tracer.new_trace` when a
stub issues a query. The id rides on :attr:`repro.dnscore.message.Message.
trace_id` through every hop, including the wire-format round-trip in
:class:`repro.netem.transport.Network`.
"""

from __future__ import annotations

from typing import List

from repro.obs.records import SpanEvent


class Tracer:
    """Collects :class:`SpanEvent` rows stamped with simulator time."""

    __slots__ = ("sim", "events", "_next_id")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.events: List[SpanEvent] = []
        self._next_id = 0

    def new_trace(self) -> int:
        """Allocate a fresh trace id for a stub query."""
        trace_id = self._next_id
        self._next_id = trace_id + 1
        return trace_id

    def emit(
        self, trace_id: int, kind: str, site: str, vp: str = "", detail: str = ""
    ) -> None:
        """Record one span, stamped with the current simulated time."""
        self.events.append(
            SpanEvent(trace_id, self.sim.now, kind, site, vp=vp, detail=detail)
        )
