"""The recursive-resolution lifecycle as a transition table.

This is the machine `RecursiveResolver` drives for every
``_ResolutionTask`` (``Rn`` in the paper's Figure 1). The states mirror
the phases the paper's §6 retry analysis reasons about:

* ``START`` → ``LOOKUP``: consult caches and locate the deepest usable
  zone cut (transient — every ``LOOKUP`` action synchronously emits the
  next event).
* ``QUERYING``: one retry round against a server set. The
  ``round_open``-guarded self-loop is the paper's retry amplification:
  it fires at most ``total_budget`` times inside the resolution
  deadline (annotated ``sends=1, bound="round_budget"`` so the verifier
  can bound worst-case query counts, §6/Figure 16).
* ``CHASING``: waiting on nameserver-address sub-resolutions (the
  AAAA-for-NS chatter of Figure 10 happens in child tasks spawned
  here and by referrals).
* The ``can_requery_parent`` exits model BIND's go-back-to-the-parents
  behavior; the ``stale_on_failure`` exits are RFC 8767 serve-stale,
  the paper's §5.3 defense.

Guards read task/simulator state only; actions delegate to
``_ResolutionTask`` methods. Payload conventions (``event_payload``):
``CACHE_HIT``/``NEG_HIT`` carry a finished ``Outcome``; ``CNAME``
carries the CNAME RRset; ``HAVE_SERVERS`` the address list;
``NEED_GLUE`` a ``(cut, missing_targets)`` pair; ``ANSWER`` a prepared
``Outcome``; ``NXDOMAIN``/``NODATA`` the upstream message; ``REFERRAL``
a ``(message, ns_records, cut)`` triple.

Response classification (rcode checks, referral lameness, caching the
received records) happens in the task *before* dispatch — those effects
are state-independent in real resolvers, so they stay out of the table.
The TC→TCP fallback likewise rides outside: it is response-triggered
(one TCP repeat per truncated UDP answer), so it cannot amplify beyond
the row-annotated UDP budgets the verifier bounds.
"""

from __future__ import annotations

from typing import Any

from repro.fsm.machine import Machine, State, Transition

# States ---------------------------------------------------------------
START = "START"
LOOKUP = "LOOKUP"
QUERYING = "QUERYING"
CHASING = "CHASING"
DONE = "DONE"

# Events ---------------------------------------------------------------
BEGIN = "begin"
HARD_DEADLINE = "hard_deadline"
CACHE_HIT = "cache_hit"
NEG_HIT = "neg_hit"
CNAME = "cname"
HAVE_SERVERS = "have_servers"
NEED_GLUE = "need_glue"
EXHAUSTED = "exhausted"
TRY = "try"
TIMEOUT = "timeout"
LAME = "lame"
ANSWER = "answer"
NXDOMAIN = "nxdomain"
NODATA = "nodata"
REFERRAL = "referral"
SUB_OK = "sub_ok"
SUB_FAIL = "sub_fail"
STALE_TIMER = "stale_timer"


# Guards ---------------------------------------------------------------
def _round_open(task: Any) -> bool:
    """More attempts allowed: inside the deadline and the round budget."""
    return (
        task.r.sim.now < task.deadline
        and task.round_attempt < task.round_budget
    )


def _can_requery_parent(task: Any) -> bool:
    """BIND-style post-failure parent re-query is available."""
    policy = task.r.config.retry
    cut = task.current_cut
    return (
        policy.requery_parent_on_failure
        and cut is not None
        and not cut.is_root
        and cut not in task.requeried_cuts
        and task.r.sim.now < task.hard_deadline
    )


def _cname_ok(task: Any) -> bool:
    return task.cname_depth <= task.r.config.max_cname_depth


def _fresh_glue(task: Any) -> bool:
    """At least one missing NS target has not been chased yet."""
    _cut, missing = task.event_payload
    return any(
        target not in task.sub_targets_tried for target in missing
    )


def _stale_usable(task: Any) -> bool:
    """An expired-but-in-window entry exists (no cache-stats side effects)."""
    entry = task.r.cache.peek(task.qname, task.qtype)
    return entry is not None and entry.is_usable_stale(
        task.r.sim.now, task.r.config.cache.stale_window
    )


def _stale_on_failure(task: Any) -> bool:
    """Serve-stale is configured and stale data is on hand (RFC 8767)."""
    return task.r.config.serve_stale and _stale_usable(task)


def _subs_outstanding(task: Any) -> bool:
    return task.subresolutions > 0


GUARDS = {
    "round_open": _round_open,
    "can_requery_parent": _can_requery_parent,
    "cname_ok": _cname_ok,
    "fresh_glue": _fresh_glue,
    "stale_on_failure": _stale_on_failure,
    "stale_now": _stale_usable,
    "subs_outstanding": _subs_outstanding,
}

ACTIONS = {
    "step": lambda task: task._step(),
    "finish": lambda task: task._finish(task.event_payload),
    "follow_cname": lambda task: task._follow_cname(task.event_payload),
    "fail_cname_loop": lambda task: task._fail_cname_loop(),
    "begin_round": lambda task: task._begin_round(task.event_payload),
    "send_attempt": lambda task: task._send_attempt(),
    "requery_parent": lambda task: task._requery_parent(),
    "chase_glue": lambda task: task._chase_glue(task.event_payload),
    "accept_referral": lambda task: task._accept_referral(task.event_payload),
    "finish_answer": lambda task: task._finish_answer(task.event_payload),
    "finish_nxdomain": lambda task: task._finish_nxdomain(task.event_payload),
    "finish_nodata": lambda task: task._finish_nodata(task.event_payload),
    "finish_stale": lambda task: task._finish_stale(),
    "finish_servfail": lambda task: task._finish_servfail(),
    "count_sub_failure": lambda task: task._count_sub_failure(),
    "sub_chase_failed": lambda task: task._sub_chase_failed(),
}

#: The failure tail shared by every way a server set can be exhausted:
#: re-query the parents if the profile allows it, else serve stale if
#: allowed, else SERVFAIL. Spelled out per event so the graph shows each
#: exhaustion path explicitly.
def _exhaust_rows(state: str, event: str) -> tuple:
    return (
        Transition(state, event, LOOKUP, guard="can_requery_parent",
                   action="requery_parent"),
        Transition(state, event, DONE, guard="stale_on_failure",
                   action="finish_stale"),
        Transition(state, event, DONE, action="finish_servfail"),
    )


#: Retry rows: attempt another send while the round is open, then fall
#: into the exhaustion tail. Shared by the round-opening TRY and the
#: in-round TIMEOUT / lame-response events; ``state`` self-loops so a
#: late retry from CHASING does not masquerade as an active round.
def _retry_rows(state: str, event: str) -> tuple:
    return (
        Transition(state, event, state, guard="round_open",
                   action="send_attempt", sends=1, bound="round_budget"),
    ) + _exhaust_rows(state, event)


RESOLUTION_MACHINE = Machine(
    name="resolution",
    start=START,
    states=(
        State(START),
        State(LOOKUP),
        State(QUERYING),
        State(CHASING),
        State(DONE, terminal=True),
    ),
    events=(
        BEGIN,
        HARD_DEADLINE,
        CACHE_HIT,
        NEG_HIT,
        CNAME,
        HAVE_SERVERS,
        NEED_GLUE,
        EXHAUSTED,
        TRY,
        TIMEOUT,
        LAME,
        ANSWER,
        NXDOMAIN,
        NODATA,
        REFERRAL,
        SUB_OK,
        SUB_FAIL,
        STALE_TIMER,
    ),
    transitions=(
        Transition(START, BEGIN, LOOKUP, action="step"),
        # ----- LOOKUP: cache consultation and server location ---------
        Transition(LOOKUP, HARD_DEADLINE, DONE, guard="stale_on_failure",
                   action="finish_stale"),
        Transition(LOOKUP, HARD_DEADLINE, DONE, action="finish_servfail"),
        Transition(LOOKUP, CACHE_HIT, DONE, action="finish"),
        Transition(LOOKUP, NEG_HIT, DONE, action="finish"),
        Transition(LOOKUP, CNAME, LOOKUP, guard="cname_ok",
                   action="follow_cname"),
        Transition(LOOKUP, CNAME, DONE, action="fail_cname_loop"),
        Transition(LOOKUP, HAVE_SERVERS, QUERYING, action="begin_round"),
        Transition(LOOKUP, NEED_GLUE, CHASING, guard="fresh_glue",
                   action="chase_glue"),
    )
    + _exhaust_rows(LOOKUP, NEED_GLUE)
    + _exhaust_rows(LOOKUP, EXHAUSTED)
    + (
        # ----- QUERYING: one retry round against a server set ---------
        *_retry_rows(QUERYING, TRY),
        *_retry_rows(QUERYING, TIMEOUT),
        *_retry_rows(QUERYING, LAME),
        Transition(QUERYING, ANSWER, DONE, action="finish_answer"),
        Transition(QUERYING, NXDOMAIN, DONE, action="finish_nxdomain"),
        Transition(QUERYING, NODATA, DONE, action="finish_nodata"),
        Transition(QUERYING, CNAME, LOOKUP, guard="cname_ok",
                   action="follow_cname"),
        Transition(QUERYING, CNAME, DONE, action="fail_cname_loop"),
        Transition(QUERYING, REFERRAL, LOOKUP, action="accept_referral"),
        # Sub-resolutions finishing while a round already runs on other
        # addresses change nothing (the emitter keeps the counter).
        Transition(QUERYING, SUB_OK, QUERYING),
        Transition(QUERYING, SUB_FAIL, QUERYING),
        # RFC 8767 client-response timer: answer stale early rather than
        # making the client wait out the whole retry schedule.
        Transition(QUERYING, STALE_TIMER, DONE, guard="stale_now",
                   action="finish_stale"),
        Transition(QUERYING, STALE_TIMER, QUERYING),
        # ----- CHASING: waiting on NS-address sub-resolutions ----------
        Transition(CHASING, SUB_OK, LOOKUP, action="step"),
        Transition(CHASING, SUB_FAIL, CHASING, guard="subs_outstanding",
                   action="count_sub_failure"),
        Transition(CHASING, SUB_FAIL, LOOKUP, action="sub_chase_failed"),
        Transition(CHASING, STALE_TIMER, DONE, guard="stale_now",
                   action="finish_stale"),
        Transition(CHASING, STALE_TIMER, CHASING),
        # Upstream events can still reach a chasing task — a query sent
        # before the chase began (e.g. a TC→TCP fallback repeat) may yet
        # answer or time out. Handling mirrors QUERYING, but retries
        # self-loop in CHASING: no round is active here.
        *_retry_rows(CHASING, TIMEOUT),
        *_retry_rows(CHASING, LAME),
        Transition(CHASING, ANSWER, DONE, action="finish_answer"),
        Transition(CHASING, NXDOMAIN, DONE, action="finish_nxdomain"),
        Transition(CHASING, NODATA, DONE, action="finish_nodata"),
        Transition(CHASING, CNAME, LOOKUP, guard="cname_ok",
                   action="follow_cname"),
        Transition(CHASING, CNAME, DONE, action="fail_cname_loop"),
        Transition(CHASING, REFERRAL, LOOKUP, action="accept_referral"),
    ),
    guards=GUARDS,
    actions=ACTIONS,
)

COMPILED_RESOLUTION = RESOLUTION_MACHINE.compile()
