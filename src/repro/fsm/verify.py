"""Static model checking of the shipped transition tables.

``repro verify`` runs these checks on every machine in
:func:`repro.fsm.profiles.shipped_profiles` *without running the
simulator* — the tables are pure data, so their safety properties are
decidable by graph walks:

* **structure** — every row's states/events/guards/actions resolve, and
  terminal states have no outgoing rows.
* **reachability** — every declared state is reachable from START.
* **liveness** — every reachable state can still reach a terminal
  state (no resolution can wedge forever by construction).
* **determinism** — rows are matched first-passing-guard in table
  order, so a row after an unguarded row can never fire (shadowed), a
  repeated guard on the same ``(state, event)`` is dead, and a pair
  whose rows are all guarded needs an ``ignores`` entry or it can
  strand a dispatch in :class:`~repro.fsm.machine.StuckMachineError`.
* **bounded amplification** — every query-emitting row (``sends > 0``)
  that sits on a cycle must name the policy budget that caps it
  (``bound=...``), or retries could amplify without limit.

On top of the graph checks, :func:`worst_case_bound` computes each
profile's worst-case per-client-query count against the target zone by
walking the retry schedule (timeout chain × budget × deadline windows ×
task fan-out) and cross-checks it against the paper's §6 / Figure 16
measurements; a bound drifting outside the calibration band is itself a
finding, so behavioral regressions in the tables gate CI the same way
lint findings do.

Findings reuse the ``repro.lint`` record/baseline machinery: the same
``(rule, file, message)`` identity, the same JSON shapes, the same
empty-baseline policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.fsm.machine import Machine, Transition
from repro.fsm.profiles import VerifyProfile, shipped_profiles
from repro.lint.findings import Finding
from repro.resolvers.retry import RetryPolicy

#: Computed worst-case bounds must land within this band around the
#: paper's measured per-client-query counts (§6). The simulator's
#: profiles are calibrated abstractions, not packet traces, so the band
#: is a factor of two — wide enough for modeling slack, tight enough to
#: catch a broken retry table (an unbounded loop blows straight past it).
CALIBRATION_BAND = (0.5, 2.0)


def _finding(machine_name: str, rule: str, message: str) -> Finding:
    return Finding(rule=rule, file=f"fsm:{machine_name}", line=0, message=message)


# ----------------------------------------------------------------------
# Graph checks
# ----------------------------------------------------------------------
def _successors(machine: Machine) -> Dict[str, Set[str]]:
    adjacency: Dict[str, Set[str]] = {name: set() for name in machine.state_names()}
    for row in machine.transitions:
        if row.state in adjacency:
            adjacency[row.state].add(row.target)
    return adjacency


def _reach(adjacency: Dict[str, Set[str]], roots: Iterable[str]) -> Set[str]:
    seen: Set[str] = set()
    frontier = [root for root in roots if root in adjacency]
    while frontier:
        state = frontier.pop()
        if state in seen:
            continue
        seen.add(state)
        frontier.extend(adjacency.get(state, ()))
    return seen


def _predecessors(machine: Machine) -> Dict[str, Set[str]]:
    reverse: Dict[str, Set[str]] = {name: set() for name in machine.state_names()}
    for row in machine.transitions:
        if row.target in reverse:
            reverse[row.target].add(row.state)
    return reverse


def verify_machine(machine: Machine) -> List[Finding]:
    """All graph findings for one machine (empty list = verified)."""
    findings: List[Finding] = []
    for error in machine.structural_errors():
        findings.append(_finding(machine.name, "fsm-structure", error))
    if findings:
        # Name resolution failed; the walks below would chase ghosts.
        return findings

    names = set(machine.state_names())
    terminals = machine.terminal_names()

    # Terminal states accept no events; an outgoing row is dead by
    # construction (dispatch() returns before reading the table).
    for row in machine.transitions:
        if row.state in terminals:
            findings.append(
                _finding(
                    machine.name,
                    "fsm-structure",
                    f"terminal state `{row.state}` has outgoing row "
                    f"`{row.label()}`",
                )
            )

    # Reachability: every declared state is reachable from START.
    adjacency = _successors(machine)
    reachable = _reach(adjacency, [machine.start])
    for name in sorted(names - reachable):
        findings.append(
            _finding(
                machine.name,
                "fsm-unreachable",
                f"state `{name}` is unreachable from `{machine.start}`",
            )
        )

    # Liveness: every reachable state can still reach a terminal.
    if not terminals:
        findings.append(
            _finding(machine.name, "fsm-liveness", "no terminal state declared")
        )
    else:
        co_reachable = _reach(_predecessors(machine), terminals)
        for name in sorted(reachable - co_reachable):
            findings.append(
                _finding(
                    machine.name,
                    "fsm-liveness",
                    f"state `{name}` cannot reach a terminal state",
                )
            )

    # Determinism: first-match semantics make later rows dead once an
    # unguarded (or identically-guarded) row precedes them; all-guarded
    # pairs need an ignores entry to be total.
    rows_by_pair: Dict[Tuple[str, str], List[Transition]] = {}
    for row in machine.transitions:
        rows_by_pair.setdefault((row.state, row.event), []).append(row)
    for (state, event), rows in sorted(rows_by_pair.items()):
        closed_by: Optional[Transition] = None
        guards_seen: Set[str] = set()
        for row in rows:
            if closed_by is not None:
                findings.append(
                    _finding(
                        machine.name,
                        "fsm-shadowed",
                        f"row `{state}--{row.label()}` can never fire: "
                        f"shadowed by unguarded `{closed_by.label()}`",
                    )
                )
                continue
            if row.guard is None:
                closed_by = row
            elif row.guard in guards_seen:
                findings.append(
                    _finding(
                        machine.name,
                        "fsm-shadowed",
                        f"row `{state}--{row.label()}` repeats guard "
                        f"`{row.guard}` for the same (state, event)",
                    )
                )
            else:
                guards_seen.add(row.guard)
        if (
            closed_by is None
            and state not in terminals
            and (state, event) not in machine.ignores
        ):
            findings.append(
                _finding(
                    machine.name,
                    "fsm-incomplete",
                    f"({state}, {event}): every row is guarded and no "
                    f"ignores entry exists — a dispatch can strand when "
                    f"all guards fail",
                )
            )

    # Unused events are table rot: they document behavior nothing emits.
    used_events = {row.event for row in machine.transitions}
    used_events.update(event for _state, event in machine.ignores)
    for event in machine.events:
        if event not in used_events:
            findings.append(
                _finding(
                    machine.name,
                    "fsm-structure",
                    f"event `{event}` is declared but no row handles it",
                )
            )
    # Same for registered guards/actions nothing references.
    used_guards = {row.guard for row in machine.transitions if row.guard}
    used_actions = {row.action for row in machine.transitions if row.action}
    for guard in sorted(set(machine.guards) - used_guards):
        findings.append(
            _finding(
                machine.name,
                "fsm-structure",
                f"guard `{guard}` is registered but unused",
            )
        )
    for action in sorted(set(machine.actions) - used_actions):
        findings.append(
            _finding(
                machine.name,
                "fsm-structure",
                f"action `{action}` is registered but unused",
            )
        )

    # Bounded amplification: a query-emitting row on a cycle must carry
    # the name of the budget that caps how often it can fire.
    reach_from: Dict[str, Set[str]] = {
        name: _reach(adjacency, adjacency[name]) for name in names
    }
    for row in machine.transitions:
        if row.sends <= 0:
            continue
        on_cycle = row.state in reach_from[row.target] or row.state == row.target
        if on_cycle and row.bound is None:
            findings.append(
                _finding(
                    machine.name,
                    "fsm-unbounded",
                    f"query-emitting row `{row.state}--{row.label()}` sits "
                    f"on a cycle but names no budget (bound=...)",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Worst-case amplification bounds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowBound:
    """One serial retry window: how many sends fit before it closes."""

    window: float
    attempts: int
    elapsed: float


@dataclass(frozen=True)
class ProfileBound:
    """The computed worst case for one shipped profile."""

    profile: str
    machine: str
    servers: int
    budget: int
    tasks: int
    task_breakdown: str
    windows: Tuple[WindowBound, ...]
    queries: int
    paper_attack_queries: Optional[float]

    @property
    def ratio(self) -> Optional[float]:
        if not self.paper_attack_queries:
            return None
        return self.queries / self.paper_attack_queries

    @property
    def within_band(self) -> Optional[bool]:
        ratio = self.ratio
        if ratio is None:
            return None
        low, high = CALIBRATION_BAND
        return low <= ratio <= high

    def as_dict(self) -> dict:
        return {
            "profile": self.profile,
            "machine": self.machine,
            "servers": self.servers,
            "budget": self.budget,
            "tasks": self.tasks,
            "task_breakdown": self.task_breakdown,
            "windows": [
                {
                    "window": round(w.window, 6),
                    "attempts": w.attempts,
                    "elapsed": round(w.elapsed, 6),
                }
                for w in self.windows
            ],
            "worst_case_queries": self.queries,
            "paper_attack_queries": self.paper_attack_queries,
            "ratio": None if self.ratio is None else round(self.ratio, 3),
            "within_band": self.within_band,
        }

    def render(self) -> str:
        per_window = " + ".join(str(w.attempts) for w in self.windows)
        text = (
            f"{self.profile}: worst case {self.queries} target-zone "
            f"queries per client query ({per_window} per task x "
            f"{self.tasks} task(s))"
        )
        if self.paper_attack_queries is not None:
            verdict = "within band" if self.within_band else "OUT OF BAND"
            text += (
                f"; paper measured ~{self.paper_attack_queries:.0f} "
                f"under full failure -> {verdict}"
            )
        return text


def serial_attempts(
    policy: RetryPolicy, window: float, budget: int
) -> Tuple[int, float]:
    """Walk one serial timeout chain: sends that start inside ``window``.

    Mirrors the round loop the QUERYING self-loop executes: each attempt
    is sent if the clock is still inside the window and the budget has
    room, then the clock advances by that attempt's timeout.
    """
    count = 0
    elapsed = 0.0
    while elapsed < window and count < budget:
        elapsed += policy.timeout_for_attempt(count)
        count += 1
    return count, elapsed


def worst_case_bound(profile: VerifyProfile) -> ProfileBound:
    """Worst-case target-zone queries for one client query.

    The adversarial case is the paper's: every target authoritative is
    unreachable, so every attempt times out and the schedule runs to
    its deadline. The first window is the resolution deadline; when the
    policy re-queries the parents on failure (BIND), a second round
    opens with ``min(0.5 x deadline, hard stop - elapsed)`` remaining —
    exactly the deadline arithmetic ``_requery_parent`` applies.
    """
    policy = profile.policy
    budget = policy.total_budget(profile.servers)
    deadline = policy.resolution_deadline
    first_attempts, first_elapsed = serial_attempts(policy, deadline, budget)
    windows = [WindowBound(deadline, first_attempts, first_elapsed)]
    if policy.requery_parent_on_failure:
        hard_stop = 1.6 * deadline
        second_window = min(0.5 * deadline, hard_stop - first_elapsed)
        if second_window > 0:
            second_attempts, second_elapsed = serial_attempts(
                policy, second_window, budget
            )
            windows.append(
                WindowBound(second_window, second_attempts, second_elapsed)
            )
    per_task = sum(w.attempts for w in windows)
    return ProfileBound(
        profile=profile.name,
        machine=profile.machine.name,
        servers=profile.servers,
        budget=budget,
        tasks=profile.tasks,
        task_breakdown=profile.task_breakdown,
        windows=tuple(windows),
        queries=per_task * profile.tasks,
        paper_attack_queries=profile.paper_attack_queries,
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def verify_profiles(
    profiles: Optional[Sequence[VerifyProfile]] = None,
) -> Tuple[List[Finding], List[ProfileBound]]:
    """Model-check every shipped profile; returns (findings, bounds)."""
    selected = list(profiles) if profiles is not None else list(shipped_profiles())
    findings: List[Finding] = []
    checked: Set[str] = set()
    for profile in selected:
        if profile.machine.name not in checked:
            checked.add(profile.machine.name)
            findings.extend(verify_machine(profile.machine))
    bounds = [worst_case_bound(profile) for profile in selected]
    for bound in bounds:
        if bound.within_band is False:
            low, high = CALIBRATION_BAND
            findings.append(
                _finding(
                    bound.profile,
                    "fsm-calibration",
                    f"worst-case bound {bound.queries} is outside "
                    f"[{low}x, {high}x] of the paper's "
                    f"{bound.paper_attack_queries:.0f} queries (§6)",
                )
            )
    return findings, bounds
