"""The ``repro verify`` subcommand.

Canonical invocation, from the repository root::

    PYTHONPATH=src python -m repro verify

Model-checks every shipped transition table (reachability, liveness,
determinism, bounded amplification) and cross-checks the computed
worst-case retry bounds against the paper's §6 measurements — all
statically, without running the simulator. Exit status mirrors
``repro lint``: 0 when clean (or baselined), 1 on new findings or
stale baseline entries, 2 for usage errors. ``--format json`` emits
the machine-readable report; ``--output`` writes it to a file
regardless of exit status (the CI artifact); ``--dot DIR`` writes one
Graphviz render per profile and exits.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional, Sequence

from repro.fsm.profiles import shipped_profiles
from repro.lint.baseline import Baseline, BaselineError
from repro.lint.findings import sort_findings


def default_baseline_path() -> pathlib.Path:
    """``verify-baseline.json`` at the repo root (next to the lint one)."""
    import repro

    package = pathlib.Path(repro.__file__).resolve().parent
    return package.parent.parent / "verify-baseline.json"


def add_verify_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="fmt",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file (default: verify-baseline.json at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="also write the JSON report here (written even on failure)",
    )
    parser.add_argument(
        "--dot",
        metavar="DIR",
        help="write one Graphviz .dot render per profile to DIR and exit",
    )


def _write_dots(directory: pathlib.Path) -> int:
    from repro.fsm.dot import machine_to_dot
    from repro.fsm.verify import worst_case_bound

    directory.mkdir(parents=True, exist_ok=True)
    for profile in shipped_profiles():
        bound = worst_case_bound(profile)
        policy = profile.policy
        caption = [
            f"profile: {profile.name} ({profile.machine.name} machine)",
            (
                f"timeouts {policy.initial_timeout}s x{policy.backoff} "
                f"(cap {policy.max_timeout}s), budget {bound.budget} over "
                f"{profile.servers} servers, deadline "
                f"{policy.resolution_deadline}s"
            ),
            (
                f"verified worst case: {bound.queries} target-zone "
                f"queries per client query"
            ),
        ]
        path = directory / f"{profile.name}.dot"
        path.write_text(
            machine_to_dot(
                profile.machine, title=profile.name, caption=caption
            ),
            encoding="utf-8",
        )
        print(f"wrote {path}")
    return 0


def run_verify(args: argparse.Namespace) -> int:
    if args.dot:
        return _write_dots(pathlib.Path(args.dot))

    from repro.fsm.verify import verify_profiles

    profiles = shipped_profiles()
    findings, bounds = verify_profiles(profiles)

    baseline_path = pathlib.Path(
        args.baseline if args.baseline else default_baseline_path()
    )
    if args.write_baseline:
        Baseline(findings).save(
            baseline_path,
            comment=(
                "Grandfathered repro-verify findings. Policy: fix the "
                "tables instead of adding entries; this file should stay "
                "empty."
            ),
        )
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"repro verify: {exc}", file=sys.stderr)
            return 2
    new, suppressed, stale = baseline.filter(findings)
    new = sort_findings(new)

    machines = []
    seen = set()
    for profile in profiles:
        machine = profile.machine
        if machine.name in seen:
            continue
        seen.add(machine.name)
        machines.append(
            {
                "name": machine.name,
                "states": len(machine.states),
                "events": len(machine.events),
                "transitions": len(machine.transitions),
            }
        )
    report = {
        "machines": machines,
        "profiles": [bound.as_dict() for bound in bounds],
        "findings": [finding.as_dict() for finding in new],
        "baselined": [finding.as_dict() for finding in suppressed],
        "stale_baseline_entries": [entry.as_dict() for entry in stale],
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")

    if args.fmt == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.render())
        for entry in stale:
            print(
                f"stale baseline entry (fixed? remove it): "
                f"[{entry.rule}] {entry.file}: {entry.message}"
            )
        for bound in bounds:
            print(bound.render())
        summary = (
            f"repro verify: {len(machines)} machine(s), "
            f"{len(bounds)} profile(s), {len(new)} finding(s)"
        )
        if suppressed:
            summary += f", {len(suppressed)} baselined"
        print(summary)

    return 1 if new or stale else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.fsm.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro verify", description=__doc__.splitlines()[0]
    )
    add_verify_arguments(parser)
    return run_verify(parser.parse_args(list(argv) if argv is not None else None))


if __name__ == "__main__":
    sys.exit(main())
